//! Quickstart: build the paper's Fig. 1 world and print every table.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::workload::fig1_full_records;
use medledger::{ConsensusKind, SystemConfig};

fn main() {
    let scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 1_000,
        },
        seed: "quickstart".into(),
        peer_key_capacity: 64,
        ..Default::default()
    })
    .expect("scenario builds");
    let (patient, doctor, researcher) = (scn.patient, scn.doctor, scn.researcher);

    println!("== Full medical records (Fig. 1, top) ==");
    println!("{}", fig1_full_records().to_pretty());

    println!("== D1 — Patient's local source ==");
    println!(
        "{}",
        scn.ledger
            .reader(patient)
            .source("D1")
            .expect("D1")
            .to_pretty()
    );

    println!("== D2 — Researcher's local source ==");
    println!(
        "{}",
        scn.ledger
            .reader(researcher)
            .source("D2")
            .expect("D2")
            .to_pretty()
    );

    println!("== D3 — Doctor's local source ==");
    println!(
        "{}",
        scn.ledger
            .reader(doctor)
            .source("D3")
            .expect("D3")
            .to_pretty()
    );

    println!("== D13 / D31 — shared between Patient and Doctor ==");
    println!(
        "{}",
        scn.ledger
            .reader(patient)
            .read(SHARE_PD)
            .expect("read")
            .to_pretty()
    );

    println!("== D23 / D32 — shared between Researcher and Doctor ==");
    println!(
        "{}",
        scn.ledger
            .reader(researcher)
            .read(SHARE_RD)
            .expect("read")
            .to_pretty()
    );

    println!("== Fig. 3 metadata rows on the sharing contract ==");
    for table_id in [SHARE_PD, SHARE_RD] {
        let m = scn.ledger.share_meta(table_id).expect("meta");
        println!(
            "  {table_id}: peers={}, authority={}, version={}, last_update={} ms",
            m.peers.len(),
            m.authority,
            m.version,
            m.last_update_ms
        );
        for (attr, writers) in &m.write_permission {
            let w: Vec<String> = writers.iter().map(|a| a.short()).collect();
            println!("    write[{attr}] = {{{}}}", w.join(", "));
        }
    }

    scn.ledger.check_consistency().expect("consistent");
    println!("\nAll shared tables consistent across peers ✓");
    println!(
        "Chain height {}, {} consensus messages exchanged.",
        scn.ledger.chain().height(),
        scn.ledger.stats().consensus_msgs
    );
}
