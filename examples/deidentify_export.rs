//! Research export with de-identification — the paper's future-work
//! plan ("use some de-identification technology to protect patient data"),
//! implemented: generate a cohort, de-identify it, check k-anonymity, and
//! show what the researcher-facing share exposes vs. the full records.
//!
//! ```sh
//! cargo run --example deidentify_export
//! ```

use medledger::core::exposure::{
    all_attrs, exposure_report, paper_fine_grained_design, paper_profiles, total_interference,
    SharingDesign,
};
use medledger::workload::{deidentify, is_k_anonymous, DeidentConfig, EhrGenerator};

fn main() {
    let mut gen = EhrGenerator::new("export-2026");
    let cohort = gen.full_records(200);
    println!(
        "Generated a cohort of {} full records ({} attributes).",
        cohort.len(),
        cohort.schema().arity()
    );

    // De-identify: pseudonymize ids, generalize addresses, suppress
    // free-text clinical data.
    let config = DeidentConfig::default();
    let released = deidentify(&cohort, &config).expect("deidentify");
    println!("\nFirst rows of the released table:");
    let preview_rows: Vec<_> = released.sorted_rows().into_iter().take(3).collect();
    for row in preview_rows {
        println!("  {row:?}");
    }

    // k-anonymity over the remaining quasi-identifier.
    for k in [2, 5, 10, 25] {
        let ok = is_k_anonymous(&released, &["address"], k).expect("check");
        println!(
            "k-anonymity with k={k:>2} on generalized address: {}",
            if ok { "HOLDS" } else { "violated" }
        );
    }
    let raw_ok = is_k_anonymous(&cohort, &["address"], 5).expect("check");
    println!("(raw city-level addresses are 5-anonymous: {raw_ok})");

    // Exposure: the paper's fine-grained design vs whole-record sharing.
    println!("\nAttribute exposure (E9):");
    let profiles = paper_profiles();
    let fine = exposure_report(&paper_fine_grained_design(), &profiles);
    let whole = exposure_report(
        &SharingDesign::whole_record(&["Patient", "Researcher", "Doctor"], &all_attrs()),
        &profiles,
    );
    println!(
        "  {:<12} {:>28} {:>28}",
        "stakeholder", "fine-grained (exp/int/miss)", "whole-record (exp/int/miss)"
    );
    for (f, w) in fine.iter().zip(&whole) {
        println!(
            "  {:<12} {:>14}/{}/{} {:>20}/{}/{}",
            f.name, f.exposed, f.interference, f.missing, w.exposed, w.interference, w.missing
        );
    }
    println!(
        "  total interference: fine-grained = {}, whole-record = {}",
        total_interference(&fine),
        total_interference(&whole)
    );
}
