//! A larger deployment: one hospital (Doctor), many patients — synthetic
//! records, a mixed update stream driven through the **ticketed commit
//! pipeline** (`LedgerService`): updates are submitted non-blocking in
//! rounds, each wave commits every admitted member in one block and one
//! scheduled PBFT round (same-table submissions composed, denials
//! receipted individually), and tickets resolve to typed outcomes.
//!
//! ```sh
//! cargo run --example hospital_network
//! ```

use medledger::bx::LensSpec;
use medledger::engine::{CommitTicket, LedgerService};
use medledger::relational::Predicate;
use medledger::workload::{EhrGenerator, UpdateStream};
use medledger::{CommitError, MedLedger, PeerId, Value};

const N_PATIENTS: usize = 8;

/// Drives waves until everything in flight resolves, then reports each
/// ticket's outcome.
fn drain_round(
    service: &mut LedgerService,
    in_flight: &mut Vec<(usize, &'static str, CommitTicket)>,
    committed: &mut usize,
    denied: &mut usize,
) {
    if in_flight.is_empty() {
        return;
    }
    let report = service.tick().expect("wave commits");
    println!(
        "  wave {}: {} member(s), {} ticket(s) resolved",
        report.wave, report.members, report.resolved
    );
    while service.has_work() {
        service.tick().expect("follow-up wave");
    }
    for (i, actor, ticket) in in_flight.drain(..) {
        match service.take(ticket).expect("resolved") {
            Ok(outcome) => {
                *committed += 1;
                println!(
                    "  [{}] {} updated {} (v{}), visible in {} ms",
                    i,
                    actor,
                    outcome.report.table_id,
                    outcome.version(),
                    outcome.visibility_latency_ms()
                );
            }
            Err(e) if e.is_no_change() => {}
            Err(CommitError::PermissionDenied { reason, receipt }) => {
                *denied += 1;
                println!(
                    "  [{i}] update denied: {reason} (reverted receipt on chain: {})",
                    receipt.is_some()
                );
            }
            Err(e) => {
                *denied += 1;
                println!("  [{i}] update failed: {e}");
            }
        }
    }
}

fn main() {
    let mut ledger = MedLedger::builder()
        .seed("hospital")
        .pbft(500)
        .peer_key_capacity(512)
        .build()
        .expect("ledger boots");

    // The hospital's doctor holds the full records of all patients.
    let doctor = ledger.add_peer("Doctor").expect("add doctor");
    let mut gen = EhrGenerator::new("hospital");
    let full = gen.full_records(N_PATIENTS);
    let d3 = full
        .project(
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ],
            &["patient_id"],
        )
        .expect("D3 projection");
    ledger
        .session(doctor)
        .load_source("D3", d3)
        .expect("add D3");

    // One share per patient: the patient-facing slice of their own row.
    let mut patients: Vec<(i64, PeerId)> = Vec::new();
    for row in full.sorted_rows() {
        let pid = row[0].as_int().expect("patient id");
        let patient = ledger
            .add_peer(&format!("Patient-{pid}"))
            .expect("add patient");
        patients.push((pid, patient));
        // The patient's local D1: their own row (a0-a4).
        let d1 = full
            .select(&Predicate::eq("patient_id", Value::Int(pid)))
            .expect("select")
            .project(
                &[
                    "patient_id",
                    "medication_name",
                    "clinical_data",
                    "address",
                    "dosage",
                ],
                &["patient_id"],
            )
            .expect("project");
        ledger
            .session(patient)
            .load_source("D1", d1)
            .expect("add D1");

        let patient_lens = LensSpec::project(
            &["patient_id", "medication_name", "clinical_data", "dosage"],
            &["patient_id"],
        );
        let doctor_lens = LensSpec::select(Predicate::eq("patient_id", Value::Int(pid)))
            .compose(patient_lens.clone());
        ledger
            .session(doctor)
            .share(format!("share-{pid}"))
            .bind("D3", doctor_lens)
            .with(patient, "D1", patient_lens)
            .writers("patient_id", &[doctor])
            .writers("medication_name", &[doctor])
            .writers("dosage", &[doctor])
            .writers("clinical_data", &[patient, doctor])
            .create()
            .expect("create share");
    }
    println!(
        "Hospital network up: 1 doctor, {N_PATIENTS} patients, {} shares, chain height {}.",
        N_PATIENTS,
        ledger.chain().height()
    );

    // Mixed workload through the ticketed pipeline: the doctor adjusts
    // dosages, patients amend their clinical data. Updates are submitted
    // non-blocking in rounds of four; each wave commits every admitted
    // member in ONE block + ONE scheduled PBFT round (same-table
    // submissions compose into a combined member instead of conflicting).
    let mut service = LedgerService::new(ledger);
    let pids: Vec<i64> = patients.iter().map(|(pid, _)| *pid).collect();
    let mut stream = UpdateStream::new("hospital-updates", pids, 0.1);
    let mut committed = 0;
    let mut denied = 0;
    let mut in_flight: Vec<(usize, &'static str, CommitTicket)> = Vec::new();
    for i in 0..24 {
        let u = stream.next_update();
        let pid = match u.target.as_int() {
            Some(p) => p,
            None => continue, // mechanism updates don't apply here
        };
        let share = format!("share-{pid}");
        let patient = patients
            .iter()
            .find(|(p, _)| *p == pid)
            .expect("known patient")
            .1;
        let doctor_turn = i % 3 != 0;
        let (actor, actor_name, attr) = if doctor_turn {
            (doctor, "Doctor", "dosage")
        } else {
            (patient, "Patient", "clinical_data")
        };
        let ticket = service
            .submit(actor, &share)
            .set(vec![Value::Int(pid)], attr, u.new_value.clone())
            .submit()
            .expect("non-empty submission");
        in_flight.push((i, actor_name, ticket));

        // Every fourth submission, drive the pipeline: one or more waves
        // commit everything queued so far.
        if in_flight.len() == 4 {
            drain_round(&mut service, &mut in_flight, &mut committed, &mut denied);
        }
    }
    drain_round(&mut service, &mut in_flight, &mut committed, &mut denied);

    service.ledger().check_consistency().expect("consistent");
    println!(
        "Pipeline: {} waves; {} cascades re-entered.",
        service.waves(),
        service.cascades().len()
    );
    let ledger = service.into_ledger();
    let stats = ledger.stats();
    println!("\n{committed} updates committed, {denied} denied.");
    println!(
        "Chain: {} blocks, {} txs ({} reverted), {} KiB stored per node.",
        stats.blocks,
        stats.txs,
        stats.reverted_txs,
        ledger.chain().storage_bytes() / 1024
    );
    println!(
        "Consensus traffic: {} messages / {} KiB; p2p data plane: {} transfers / {} KiB.",
        stats.consensus_msgs,
        stats.consensus_bytes / 1024,
        stats.p2p_transfers,
        stats.p2p_bytes / 1024
    );

    // Audit one patient's share history.
    let sample = format!("share-{}", patients[0].0);
    println!("\nAudit of `{sample}`:");
    for e in ledger.audit(&sample) {
        println!(
            "  height {:>3}  {:<16} by {}",
            e.height,
            e.method.as_deref().unwrap_or(e.kind),
            e.sender.short()
        );
    }
    println!("\nAll shared tables consistent ✓");
}
