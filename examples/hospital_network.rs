//! A larger deployment: one hospital (Doctor), many patients, one
//! researcher — synthetic records, a mixed update stream, and an audit.
//!
//! ```sh
//! cargo run --example hospital_network
//! ```

use medledger::bx::LensSpec;
use medledger::core::agreement::SharingAgreement;
use medledger::core::{ConsensusKind, System, SystemConfig};
use medledger::relational::{Predicate, Value, WriteOp};
use medledger::workload::{EhrGenerator, UpdateStream};

const N_PATIENTS: usize = 8;

fn main() {
    let mut system = System::bootstrap(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 500,
        },
        seed: "hospital".into(),
        peer_key_capacity: 512,
        ..Default::default()
    })
    .expect("bootstrap");

    // The hospital's doctor holds the full records of all patients.
    let _ = system.add_peer("Doctor").expect("add doctor");
    let mut gen = EhrGenerator::new("hospital");
    let full = gen.full_records(N_PATIENTS);
    let d3 = full
        .project(
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ],
            &["patient_id"],
        )
        .expect("D3 projection");
    system
        .peer_mut("Doctor")
        .expect("peer")
        .add_source_table("D3", d3)
        .expect("add D3");

    // One share per patient: the patient-facing slice of their own row.
    let mut patient_ids = Vec::new();
    for row in full.sorted_rows() {
        let pid = row[0].as_int().expect("patient id");
        patient_ids.push(pid);
        let name = format!("Patient-{pid}");
        let account = system.add_peer(&name).expect("add patient");
        // The patient's local D1: their own row (a0-a4).
        let d1 = full
            .select(&Predicate::eq("patient_id", Value::Int(pid)))
            .expect("select")
            .project(
                &["patient_id", "medication_name", "clinical_data", "address", "dosage"],
                &["patient_id"],
            )
            .expect("project");
        system
            .peer_mut(&name)
            .expect("peer")
            .add_source_table("D1", d1)
            .expect("add D1");

        let patient_lens = LensSpec::project(
            &["patient_id", "medication_name", "clinical_data", "dosage"],
            &["patient_id"],
        );
        let doctor_lens = LensSpec::select(Predicate::eq("patient_id", Value::Int(pid)))
            .compose(patient_lens.clone());
        let doctor_account = system.account_of("Doctor").expect("doctor");
        let share = SharingAgreement::builder(format!("share-{pid}"))
            .bind(account, "D1", patient_lens)
            .bind(doctor_account, "D3", doctor_lens)
            .allow_write("patient_id", &[doctor_account])
            .allow_write("medication_name", &[doctor_account])
            .allow_write("dosage", &[doctor_account])
            .allow_write("clinical_data", &[account, doctor_account])
            .authority(doctor_account)
            .build();
        system.create_share(&share).expect("create share");
    }
    println!(
        "Hospital network up: 1 doctor, {N_PATIENTS} patients, {} shares, chain height {}.",
        N_PATIENTS,
        system.chain().height()
    );

    // Mixed workload: the doctor adjusts dosages, patients amend their
    // clinical data.
    let mut stream = UpdateStream::new("hospital-updates", patient_ids.clone(), 0.1);
    let mut committed = 0;
    let mut denied = 0;
    for i in 0..24 {
        let u = stream.next_update();
        let pid = match u.target.as_int() {
            Some(p) => p,
            None => continue, // mechanism updates don't apply here
        };
        let share = format!("share-{pid}");
        let doctor_turn = i % 3 != 0;
        let result = if doctor_turn {
            system
                .peer_mut("Doctor")
                .expect("peer")
                .write_shared(
                    &share,
                    WriteOp::Update {
                        key: vec![Value::Int(pid)],
                        assignments: vec![("dosage".into(), u.new_value.clone())],
                    },
                )
                .and_then(|_| {
                    let d = system.account_of("Doctor").expect("doctor");
                    system.propagate_update(d, &share)
                })
        } else {
            let name = format!("Patient-{pid}");
            system
                .peer_mut(&name)
                .expect("peer")
                .write_shared(
                    &share,
                    WriteOp::Update {
                        key: vec![Value::Int(pid)],
                        assignments: vec![("clinical_data".into(), u.new_value.clone())],
                    },
                )
                .and_then(|_| {
                    let a = system.account_of(&name).expect("account");
                    system.propagate_update(a, &share)
                })
        };
        match result {
            Ok(report) => {
                committed += 1;
                println!(
                    "  [{}] {} updated {} (v{}), visible in {} ms",
                    i,
                    if doctor_turn { "Doctor" } else { "Patient" },
                    report.table_id,
                    report.version,
                    report.visibility_latency_ms()
                );
            }
            Err(medledger::core::CoreError::NoChange(_)) => {}
            Err(e) => {
                denied += 1;
                println!("  [{i}] update denied: {e}");
            }
        }
    }

    system.check_consistency().expect("consistent");
    let stats = system.stats();
    println!("\n{committed} updates committed, {denied} denied.");
    println!(
        "Chain: {} blocks, {} txs ({} reverted), {} KiB stored per node.",
        stats.blocks,
        stats.txs,
        stats.reverted_txs,
        system.chain().storage_bytes() / 1024
    );
    println!(
        "Consensus traffic: {} messages / {} KiB; p2p data plane: {} transfers / {} KiB.",
        stats.consensus_msgs,
        stats.consensus_bytes / 1024,
        stats.p2p_transfers,
        stats.p2p_bytes / 1024
    );

    // Audit one patient's share history.
    let sample = format!("share-{}", patient_ids[0]);
    println!("\nAudit of `{sample}`:");
    for e in system.audit(&sample) {
        println!(
            "  height {:>3}  {:<16} by {}",
            e.height,
            e.method.as_deref().unwrap_or(e.kind),
            e.sender.short()
        );
    }
    println!("\nAll shared tables consistent ✓");
}
