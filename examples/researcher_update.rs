//! The paper's Fig. 5 workflow, end to end, with the numbered trace.
//!
//! The Researcher revises the mechanism of action of Ibuprofen; the
//! update flows through the sharing contract to the Doctor's full record,
//! the Step-6 dependency check runs, and the Doctor then adjusts the
//! dosage shared with the Patient (the paper's Steps 7–11).
//!
//! ```sh
//! cargo run --example researcher_update
//! ```

use medledger::core::scenario::{self, run_fig5, DOCTOR, PATIENT, SHARE_PD, SHARE_RD};
use medledger::core::{ConsensusKind, SystemConfig};

fn main() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 1_000,
        },
        seed: "fig5-example".into(),
        peer_key_capacity: 64,
        ..Default::default()
    })
    .expect("scenario builds");

    println!("Running the Fig. 5 update workflow…\n");
    let (researcher_report, doctor_report) = run_fig5(&mut scn).expect("workflow");

    println!("-- Researcher's update of `{SHARE_RD}` (steps 1-6) --");
    print!("{}", researcher_report.trace.render());
    println!(
        "   committed in {} ms, visible to all peers in {} ms, synced in {} ms\n",
        researcher_report.committed_ms - researcher_report.submitted_ms,
        researcher_report.visibility_latency_ms(),
        researcher_report.sync_latency_ms()
    );

    println!("-- Doctor's follow-up on `{SHARE_PD}` (the paper's steps 7-11) --");
    print!("{}", doctor_report.trace.render());
    println!(
        "   committed in {} ms, visible in {} ms, synced in {} ms\n",
        doctor_report.committed_ms - doctor_report.submitted_ms,
        doctor_report.visibility_latency_ms(),
        doctor_report.sync_latency_ms()
    );

    println!("-- Resulting tables --");
    println!("Doctor's D3 (MeA1 revised, dosage adjusted):");
    println!(
        "{}",
        scn.system
            .peer(DOCTOR)
            .expect("peer")
            .db
            .table("D3")
            .expect("D3")
            .to_pretty()
    );
    println!("Patient's D1 (dosage arrived via BX13-put):");
    println!(
        "{}",
        scn.system
            .peer(PATIENT)
            .expect("peer")
            .db
            .table("D1")
            .expect("D1")
            .to_pretty()
    );

    println!("-- On-chain audit history of `{SHARE_RD}` --");
    for e in scn.system.audit(SHARE_RD) {
        println!(
            "  height {:>3} t={:>7} ms  {:<16} by {} ({})",
            e.height,
            e.timestamp_ms,
            e.method.as_deref().unwrap_or(e.kind),
            e.sender.short(),
            e.kind,
        );
    }

    scn.system.check_consistency().expect("consistent");
    println!("\nAll peers consistent ✓");
}
