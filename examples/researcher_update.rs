//! The paper's Fig. 5 workflow, end to end, with the numbered trace.
//!
//! The Researcher revises the mechanism of action of Ibuprofen; the
//! update flows through the sharing contract to the Doctor's full record,
//! the Step-6 dependency check runs, and the Doctor then adjusts the
//! dosage shared with the Patient (the paper's Steps 7–11). Both updates
//! are driven through the transactional `UpdateBatch::commit()` facade.
//!
//! ```sh
//! cargo run --example researcher_update
//! ```

use medledger::core::scenario::{self, run_fig5, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, SystemConfig};

fn main() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 1_000,
        },
        seed: "fig5-example".into(),
        peer_key_capacity: 64,
        ..Default::default()
    })
    .expect("scenario builds");

    println!("Running the Fig. 5 update workflow…\n");
    let (researcher_outcome, doctor_outcome) = run_fig5(&mut scn).expect("workflow");

    println!("-- Researcher's update of `{SHARE_RD}` (steps 1-6) --");
    print!("{}", researcher_outcome.trace.render());
    let r = &researcher_outcome.report;
    println!(
        "   committed in {} ms, visible to all peers in {} ms, synced in {} ms",
        r.committed_ms - r.submitted_ms,
        researcher_outcome.visibility_latency_ms(),
        researcher_outcome.sync_latency_ms()
    );
    println!(
        "   {} on-chain receipts, all successful: {}\n",
        researcher_outcome.receipts.len(),
        researcher_outcome
            .receipts
            .iter()
            .all(|r| r.status.is_success())
    );

    println!("-- Doctor's follow-up on `{SHARE_PD}` (the paper's steps 7-11) --");
    print!("{}", doctor_outcome.trace.render());
    let d = &doctor_outcome.report;
    println!(
        "   committed in {} ms, visible in {} ms, synced in {} ms\n",
        d.committed_ms - d.submitted_ms,
        doctor_outcome.visibility_latency_ms(),
        doctor_outcome.sync_latency_ms()
    );

    println!("-- Resulting tables --");
    println!("Doctor's D3 (MeA1 revised, dosage adjusted):");
    println!(
        "{}",
        scn.ledger
            .session(scn.doctor)
            .source("D3")
            .expect("D3")
            .to_pretty()
    );
    println!("Patient's D1 (dosage arrived via BX13-put):");
    println!(
        "{}",
        scn.ledger
            .session(scn.patient)
            .source("D1")
            .expect("D1")
            .to_pretty()
    );

    println!("-- On-chain audit history of `{SHARE_RD}` --");
    for e in scn.ledger.audit(SHARE_RD) {
        println!(
            "  height {:>3} t={:>7} ms  {:<16} by {} ({})",
            e.height,
            e.timestamp_ms,
            e.method.as_deref().unwrap_or(e.kind),
            e.sender.short(),
            e.kind,
        );
    }

    scn.ledger.check_consistency().expect("consistent");
    println!("\nAll peers consistent ✓");
}
