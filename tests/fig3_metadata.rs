//! E3 — the Fig. 3 "metadata collection in smart contract", end to end,
//! driven through the typed facade.

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::{CommitError, ConsensusKind, CoreError, SystemConfig, Value};

fn config() -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: "fig3-int".into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn metadata_rows_match_fig3() {
    let scn = scenario::build(config()).expect("build");

    // Row 1: D13 & D31 shared by Patient and Doctor; Doctor is authority;
    // Doctor writes medication/dosage; Patient+Doctor write clinical data.
    let m = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert!(m.peers.contains(&scn.patient.account()) && m.peers.contains(&scn.doctor.account()));
    assert_eq!(m.authority, scn.doctor.account());
    assert_eq!(
        m.write_permission["medication_name"]
            .iter()
            .collect::<Vec<_>>(),
        vec![&scn.doctor.account()]
    );
    assert!(m.write_permission["clinical_data"].contains(&scn.patient.account()));
    assert!(m.write_permission["clinical_data"].contains(&scn.doctor.account()));
    assert!(m.last_update_ms > 0, "last update time recorded");

    // Row 2: D23 & D32 shared by Doctor and Researcher; Researcher is
    // authority; medication writable by both, mechanism by Researcher.
    let m = scn.ledger.share_meta(SHARE_RD).expect("meta");
    assert_eq!(m.authority, scn.researcher.account());
    assert!(m.write_permission["medication_name"].contains(&scn.doctor.account()));
    assert!(m.write_permission["medication_name"].contains(&scn.researcher.account()));
    assert_eq!(
        m.write_permission["mechanism_of_action"]
            .iter()
            .collect::<Vec<_>>(),
        vec![&scn.researcher.account()]
    );
}

#[test]
fn last_update_time_advances_with_updates() {
    let mut scn = scenario::build(config()).expect("build");
    let before = scn
        .ledger
        .share_meta(SHARE_PD)
        .expect("meta")
        .last_update_ms;
    scn.ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("halved"))
        .commit()
        .expect("commit");
    let after = scn
        .ledger
        .share_meta(SHARE_PD)
        .expect("meta")
        .last_update_ms;
    assert!(after > before, "{after} > {before}");
}

#[test]
fn fig3_permission_change_example() {
    // "Doctor can change the permission for updating Dosage from Doctor
    //  to Doctor, Patient so that Patient can also update the Dosage."
    let mut scn = scenario::build(config()).expect("build");
    let (doctor, patient) = (scn.doctor, scn.patient);

    assert!(!scn
        .ledger
        .share_meta(SHARE_PD)
        .expect("meta")
        .write_permission["dosage"]
        .contains(&patient.account()));

    scn.ledger
        .session(doctor)
        .grant(SHARE_PD, "dosage", &[doctor, patient])
        .expect("doctor grants");

    let m = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert!(m.write_permission["dosage"].contains(&patient.account()));
    assert!(m.write_permission["dosage"].contains(&doctor.account()));

    // Non-authority cannot change permissions.
    let err = scn
        .ledger
        .session(patient)
        .grant(SHARE_PD, "dosage", &[patient])
        .unwrap_err();
    assert!(matches!(err, CoreError::TxReverted(_)));
}

#[test]
fn version_and_pending_acks_lifecycle() {
    let mut scn = scenario::build(config()).expect("build");
    let m0 = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m0.version, 0);
    assert!(m0.synced());
    assert!(m0.updater.is_none());

    let outcome = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("changed"))
        .commit()
        .expect("commit");
    assert_eq!(outcome.version(), 1);

    let m1 = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m1.version, 1);
    assert_eq!(m1.updater, Some(scn.doctor.account()));
    // Commit waits for acks, so by now the table is synced again.
    assert!(m1.synced());
    assert_ne!(m1.content_hash, m0.content_hash);
}

#[test]
fn empty_batch_is_rejected_without_chain_traffic() {
    let mut scn = scenario::build(config()).expect("build");
    let height = scn.ledger.chain().height();
    let err = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .commit()
        .unwrap_err();
    assert!(matches!(err, CommitError::EmptyBatch { .. }), "{err}");
    assert_eq!(scn.ledger.chain().height(), height);
}
