//! E3 — the Fig. 3 "metadata collection in smart contract", end to end.

use medledger::core::scenario::{self, DOCTOR, SHARE_PD, SHARE_RD};
use medledger::core::{ConsensusKind, SystemConfig};
use medledger::relational::{Value, WriteOp};

fn config() -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: "fig3-int".into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn metadata_rows_match_fig3() {
    let scn = scenario::build(config()).expect("build");

    // Row 1: D13 & D31 shared by Patient and Doctor; Doctor is authority;
    // Doctor writes medication/dosage; Patient+Doctor write clinical data.
    let m = scn.system.share_meta(SHARE_PD).expect("meta");
    assert!(m.peers.contains(&scn.patient) && m.peers.contains(&scn.doctor));
    assert_eq!(m.authority, scn.doctor);
    assert_eq!(
        m.write_permission["medication_name"]
            .iter()
            .collect::<Vec<_>>(),
        vec![&scn.doctor]
    );
    assert!(m.write_permission["clinical_data"].contains(&scn.patient));
    assert!(m.write_permission["clinical_data"].contains(&scn.doctor));
    assert!(m.last_update_ms > 0, "last update time recorded");

    // Row 2: D23 & D32 shared by Doctor and Researcher; Researcher is
    // authority; medication writable by both, mechanism by Researcher.
    let m = scn.system.share_meta(SHARE_RD).expect("meta");
    assert_eq!(m.authority, scn.researcher);
    assert!(m.write_permission["medication_name"].contains(&scn.doctor));
    assert!(m.write_permission["medication_name"].contains(&scn.researcher));
    assert_eq!(
        m.write_permission["mechanism_of_action"]
            .iter()
            .collect::<Vec<_>>(),
        vec![&scn.researcher]
    );
}

#[test]
fn last_update_time_advances_with_updates() {
    let mut scn = scenario::build(config()).expect("build");
    let before = scn.system.share_meta(SHARE_PD).expect("meta").last_update_ms;
    scn.system
        .peer_mut(DOCTOR)
        .expect("peer")
        .write_shared(
            SHARE_PD,
            WriteOp::Update {
                key: vec![Value::Int(188)],
                assignments: vec![("dosage".into(), Value::text("halved"))],
            },
        )
        .expect("edit");
    scn.system
        .propagate_update(scn.doctor, SHARE_PD)
        .expect("propagate");
    let after = scn.system.share_meta(SHARE_PD).expect("meta").last_update_ms;
    assert!(after > before, "{after} > {before}");
}

#[test]
fn fig3_permission_change_example() {
    // "Doctor can change the permission for updating Dosage from Doctor
    //  to Doctor, Patient so that Patient can also update the Dosage."
    let mut scn = scenario::build(config()).expect("build");
    let (doctor, patient) = (scn.doctor, scn.patient);

    assert!(!scn
        .system
        .share_meta(SHARE_PD)
        .expect("meta")
        .write_permission["dosage"]
        .contains(&patient));

    scn.system
        .change_permission(doctor, SHARE_PD, "dosage", &[doctor, patient])
        .expect("doctor grants");

    let m = scn.system.share_meta(SHARE_PD).expect("meta");
    assert!(m.write_permission["dosage"].contains(&patient));
    assert!(m.write_permission["dosage"].contains(&doctor));

    // Non-authority cannot change permissions.
    let err = scn
        .system
        .change_permission(patient, SHARE_PD, "dosage", &[patient])
        .unwrap_err();
    assert!(matches!(err, medledger::core::CoreError::TxReverted(_)));
}

#[test]
fn version_and_pending_acks_lifecycle() {
    let mut scn = scenario::build(config()).expect("build");
    let m0 = scn.system.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m0.version, 0);
    assert!(m0.synced());
    assert!(m0.updater.is_none());

    scn.system
        .peer_mut(DOCTOR)
        .expect("peer")
        .write_shared(
            SHARE_PD,
            WriteOp::Update {
                key: vec![Value::Int(188)],
                assignments: vec![("dosage".into(), Value::text("changed"))],
            },
        )
        .expect("edit");
    scn.system
        .propagate_update(scn.doctor, SHARE_PD)
        .expect("propagate");

    let m1 = scn.system.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m1.version, 1);
    assert_eq!(m1.updater, Some(scn.doctor));
    // Propagation waits for acks, so by now the table is synced again.
    assert!(m1.synced());
    assert_ne!(m1.content_hash, m0.content_hash);
}
