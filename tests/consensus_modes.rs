//! E6 groundwork — the system runs on both chain flavors (Sec. IV-1/IV-3)
//! and the latency ordering matches the paper's reasoning: a private PBFT
//! chain with a short block interval delivers updates much faster than a
//! public PoW chain with Ethereum's ~12 s mean interval.

use medledger::core::scenario::{self, SHARE_PD};
use medledger::{ConsensusKind, SystemConfig, Value};

fn run_one_update(consensus: ConsensusKind, seed: &str) -> u64 {
    let mut scn = scenario::build(SystemConfig {
        consensus,
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    })
    .expect("build");
    let outcome = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("adjusted"))
        .commit()
        .expect("commit");
    scn.ledger.check_consistency().expect("consistent");
    outcome.visibility_latency_ms()
}

#[test]
fn private_pbft_chain_works() {
    let latency = run_one_update(
        ConsensusKind::PrivatePbft {
            block_interval_ms: 1_000,
        },
        "mode-pbft",
    );
    // One block interval + consensus + p2p: order of a few seconds max.
    assert!(latency < 10_000, "pbft latency {latency} ms");
}

#[test]
fn public_pow_chain_works() {
    let latency = run_one_update(
        ConsensusKind::PublicPow {
            mean_interval_ms: 12_000,
        },
        "mode-pow",
    );
    // At least some fraction of a PoW interval.
    assert!(latency > 100, "pow latency {latency} ms");
}

#[test]
fn private_chain_is_much_faster_than_public() {
    // The paper's Sec. IV conclusion, quantified. Average over several
    // seeds because PoW intervals are exponential.
    let n = 5;
    let pbft: u64 = (0..n)
        .map(|i| {
            run_one_update(
                ConsensusKind::PrivatePbft {
                    block_interval_ms: 1_000,
                },
                &format!("cmp-pbft-{i}"),
            )
        })
        .sum::<u64>()
        / n;
    let pow: u64 = (0..n)
        .map(|i| {
            run_one_update(
                ConsensusKind::PublicPow {
                    mean_interval_ms: 12_000,
                },
                &format!("cmp-pow-{i}"),
            )
        })
        .sum::<u64>()
        / n;
    assert!(
        pow > 2 * pbft,
        "public PoW ({pow} ms) should be well above private PBFT ({pbft} ms)"
    );
}

#[test]
fn virtual_time_is_deterministic_per_seed() {
    let a = run_one_update(
        ConsensusKind::PublicPow {
            mean_interval_ms: 12_000,
        },
        "det-seed",
    );
    let b = run_one_update(
        ConsensusKind::PublicPow {
            mean_interval_ms: 12_000,
        },
        "det-seed",
    );
    assert_eq!(a, b);
}
