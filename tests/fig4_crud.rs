//! E4 — the Fig. 4 CRUD procedures on shared data.
//!
//! Create / Update / Delete follow the 7-step procedure (local execution,
//! contract permission check, notification, fetch, metadata update, BX
//! reflection); Read queries the local database directly.

use medledger::core::scenario::{self, DOCTOR, PATIENT, SHARE_PD, SHARE_RD};
use medledger::core::{ConsensusKind, CoreError, SystemConfig};
use medledger::relational::{row, Value};

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn read_is_local_and_chain_free() {
    let scn = scenario::build(config("crud-read")).expect("build");
    let blocks_before = scn.system.chain().height();
    let t = scn.system.read_shared(PATIENT, SHARE_PD).expect("read");
    assert_eq!(t.len(), 1);
    // Reading produced no chain activity.
    assert_eq!(scn.system.chain().height(), blocks_before);
}

#[test]
fn create_entry_propagates_to_peer() {
    // Entry-level create needs a share whose lenses can translate
    // inserts. The Fig. 1 patient share is pinned to one patient (its
    // doctor-side lens selects patient 188), so we build a ward share
    // between Doctor and Nurse with insert defaults declared.
    let (mut system, doctor) = ward_share("crud-create-ward");
    let report = system
        .create_shared_entry(
            "Doctor",
            "ward",
            row![190i64, "Aspirin", "one daily"],
        )
        .expect("create");
    assert!(report.changed_attrs.len() >= 3);
    let _ = doctor;

    // The nurse's copy and source received the row.
    let nurse_copy = system.read_shared("Nurse", "ward").expect("read");
    assert!(nurse_copy.get(&[Value::Int(190)]).is_some());
    // The doctor's source gained the row with defaults filled in.
    let d3 = system.peer("Doctor").expect("peer").db.table("D3").expect("D3");
    let new_row = d3.get(&[Value::Int(190)]).expect("row");
    assert_eq!(new_row[2], Value::text("n/a"));
    system.check_consistency().expect("consistent");
}

/// Builds a two-peer "ward" share where inserts and deletes translate on
/// both sides (projection lenses with declared defaults).
fn ward_share(seed: &str) -> (medledger::core::System, medledger::ledger::AccountId) {
    use medledger::bx::LensSpec;
    use medledger::core::agreement::SharingAgreement;
    use medledger::core::System;
    use medledger::workload::fig1_full_records;

    let mut system = System::bootstrap(config(seed)).expect("bootstrap");
    let doctor = system.add_peer("Doctor").expect("add");
    let nurse = system.add_peer("Nurse").expect("add");

    let full = fig1_full_records();
    let d3 = full
        .project(
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ],
            &["patient_id"],
        )
        .expect("D3");
    let nurse_src = full
        .project(&["patient_id", "medication_name", "dosage"], &["patient_id"])
        .expect("nurse source");
    system
        .peer_mut("Doctor")
        .expect("peer")
        .add_source_table("D3", d3)
        .expect("add");
    system
        .peer_mut("Nurse")
        .expect("peer")
        .add_source_table("N1", nurse_src)
        .expect("add");

    let doctor_lens = LensSpec::project_with_defaults(
        &["patient_id", "medication_name", "dosage"],
        &["patient_id"],
        &[
            ("clinical_data", Value::text("n/a")),
            ("mechanism_of_action", Value::text("unknown")),
        ],
    );
    let nurse_lens = LensSpec::project(
        &["patient_id", "medication_name", "dosage"],
        &["patient_id"],
    );
    let share = SharingAgreement::builder("ward")
        .bind(doctor, "D3", doctor_lens)
        .bind(nurse, "N1", nurse_lens)
        .allow_write("patient_id", &[doctor])
        .allow_write("medication_name", &[doctor])
        .allow_write("dosage", &[doctor, nurse])
        .authority(doctor)
        .build();
    system.create_share(&share).expect("create share");
    (system, doctor)
}

#[test]
fn update_entry_is_permission_checked() {
    let mut scn = scenario::build(config("crud-update")).expect("build");
    // Patient may update clinical data…
    let report = scn
        .system
        .update_shared_entry(
            PATIENT,
            SHARE_PD,
            vec![Value::Int(188)],
            vec![("clinical_data".into(), Value::text("CliD1-amended"))],
        )
        .expect("patient writes clinical data");
    assert_eq!(report.changed_attrs, vec!["clinical_data".to_string()]);
    // …and the doctor's D3 sees it.
    let d3 = scn.system.peer(DOCTOR).expect("peer").db.table("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[2],
        Value::text("CliD1-amended")
    );

    // But not the dosage (Fig. 3 matrix).
    let err = scn
        .system
        .update_shared_entry(
            PATIENT,
            SHARE_PD,
            vec![Value::Int(188)],
            vec![("dosage".into(), Value::text("tripled"))],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::TxReverted(_)), "{err}");
    // The denied change never reached the doctor.
    let d3 = scn.system.peer(DOCTOR).expect("peer").db.table("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[4],
        Value::text("one tablet every 4h")
    );
}

#[test]
fn delete_entry_propagates() {
    let (mut system, _) = ward_share("crud-delete-ward");
    // Delete patient 189 from the ward share; the doctor's source loses
    // the row too (project lens translates deletes to source deletes).
    let report = system
        .delete_shared_entry("Doctor", "ward", vec![Value::Int(189)])
        .expect("delete");
    assert!(report.version >= 1);
    let nurse_copy = system.read_shared("Nurse", "ward").expect("read");
    assert!(nurse_copy.get(&[Value::Int(189)]).is_none());
    let d3 = system.peer("Doctor").expect("peer").db.table("D3").expect("D3");
    assert!(d3.get(&[Value::Int(189)]).is_none());
    system.check_consistency().expect("consistent");
}

#[test]
fn denied_request_leaves_no_trace_in_metadata() {
    let mut scn = scenario::build(config("crud-denied")).expect("build");
    let v_before = scn.system.share_meta(SHARE_PD).expect("meta").version;
    let _ = scn
        .system
        .update_shared_entry(
            PATIENT,
            SHARE_PD,
            vec![Value::Int(188)],
            vec![("dosage".into(), Value::text("nope"))],
        )
        .unwrap_err();
    let m = scn.system.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m.version, v_before, "denied update must not bump version");
    assert!(m.synced(), "denied update must not lock the table");
    // The reverted transaction is still on chain (auditable denial).
    let hist = scn.system.audit(SHARE_PD);
    assert!(hist
        .iter()
        .any(|e| e.method.as_deref() == Some("request_update")));
}

#[test]
fn no_change_propagation_is_rejected() {
    let mut scn = scenario::build(config("crud-nochange")).expect("build");
    let err = scn
        .system
        .propagate_update(scn.doctor, SHARE_PD)
        .unwrap_err();
    assert!(matches!(err, CoreError::NoChange(_)));
}

#[test]
fn table_level_delete_retires_the_share() {
    let mut scn = scenario::build(config("crud-table-delete")).expect("build");
    let doctor = scn.doctor;
    // Only the authority may remove the share.
    let err = scn.system.remove_share(scn.patient, SHARE_PD).unwrap_err();
    assert!(matches!(err, CoreError::TxReverted(_)));

    scn.system.remove_share(doctor, SHARE_PD).expect("remove");
    // Metadata gone, local copies gone, sources intact.
    assert!(scn.system.share_meta(SHARE_PD).is_err());
    assert!(scn.system.read_shared(PATIENT, SHARE_PD).is_err());
    assert!(scn.system.read_shared(DOCTOR, SHARE_PD).is_err());
    assert_eq!(
        scn.system.peer(PATIENT).expect("peer").db.table("D1").expect("D1").len(),
        1
    );
    // The history of the retired share is still auditable on chain.
    let hist = scn.system.audit(SHARE_PD);
    assert!(hist.iter().any(|e| e.method.as_deref() == Some("remove_share")));
    // The untouched research share still works.
    scn.system.check_consistency().expect("consistent");
    assert!(scn.system.share_meta(SHARE_RD).is_ok());
}
