//! E4 — the Fig. 4 CRUD procedures on shared data, through the facade.
//!
//! Create / Update / Delete are staged on an `UpdateBatch` and follow the
//! 7-step procedure on commit (local execution, contract permission
//! check, notification, fetch, metadata update, BX reflection); Read
//! queries the local database directly.

use medledger::bx::LensSpec;
use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::relational::row;
use medledger::{CommitError, ConsensusKind, CoreError, MedLedger, PeerId, SystemConfig, Value};

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn read_is_local_and_chain_free() {
    let scn = scenario::build(config("crud-read")).expect("build");
    let blocks_before = scn.ledger.chain().height();
    let t = scn.ledger.reader(scn.patient).read(SHARE_PD).expect("read");
    assert_eq!(t.len(), 1);
    // Reading produced no chain activity.
    assert_eq!(scn.ledger.chain().height(), blocks_before);
}

/// Builds a two-peer "ward" share where inserts and deletes translate on
/// both sides (projection lenses with declared defaults).
fn ward_share(seed: &str) -> (MedLedger, PeerId, PeerId) {
    use medledger::workload::fig1_full_records;

    let mut ledger = MedLedger::builder()
        .config(config(seed))
        .build()
        .expect("boot");
    let doctor = ledger.add_peer("Doctor").expect("add");
    let nurse = ledger.add_peer("Nurse").expect("add");

    let full = fig1_full_records();
    let d3 = full
        .project(
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ],
            &["patient_id"],
        )
        .expect("D3");
    let nurse_src = full
        .project(
            &["patient_id", "medication_name", "dosage"],
            &["patient_id"],
        )
        .expect("nurse source");
    ledger.session(doctor).load_source("D3", d3).expect("add");
    ledger
        .session(nurse)
        .load_source("N1", nurse_src)
        .expect("add");

    let doctor_lens = LensSpec::project_with_defaults(
        &["patient_id", "medication_name", "dosage"],
        &["patient_id"],
        &[
            ("clinical_data", Value::text("n/a")),
            ("mechanism_of_action", Value::text("unknown")),
        ],
    );
    let nurse_lens = LensSpec::project(
        &["patient_id", "medication_name", "dosage"],
        &["patient_id"],
    );
    ledger
        .session(doctor)
        .share("ward")
        .bind("D3", doctor_lens)
        .with(nurse, "N1", nurse_lens)
        .writers("patient_id", &[doctor])
        .writers("medication_name", &[doctor])
        .writers("dosage", &[doctor, nurse])
        .create()
        .expect("create share");
    (ledger, doctor, nurse)
}

#[test]
fn create_entry_propagates_to_peer() {
    // Entry-level create needs a share whose lenses can translate
    // inserts. The Fig. 1 patient share is pinned to one patient (its
    // doctor-side lens selects patient 188), so we build a ward share
    // between Doctor and Nurse with insert defaults declared.
    let (mut ledger, doctor, nurse) = ward_share("crud-create-ward");
    let outcome = ledger
        .session(doctor)
        .begin("ward")
        .insert(row![190i64, "Aspirin", "one daily"])
        .commit()
        .expect("create");
    assert!(outcome.changed_attrs().len() >= 3);

    // The nurse's copy and source received the row.
    let nurse_copy = ledger.session(nurse).read("ward").expect("read");
    assert!(nurse_copy.get(&[Value::Int(190)]).is_some());
    // The doctor's source gained the row with defaults filled in.
    let d3 = ledger.session(doctor).source("D3").expect("D3");
    let new_row = d3.get(&[Value::Int(190)]).expect("row");
    assert_eq!(new_row[2], Value::text("n/a"));
    ledger.check_consistency().expect("consistent");
}

#[test]
fn update_entry_is_permission_checked() {
    let mut scn = scenario::build(config("crud-update")).expect("build");
    // Patient may update clinical data…
    let outcome = scn
        .ledger
        .session(scn.patient)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "clinical_data",
            Value::text("CliD1-amended"),
        )
        .commit()
        .expect("patient writes clinical data");
    assert_eq!(outcome.changed_attrs(), ["clinical_data".to_string()]);
    // …and the doctor's D3 sees it.
    let d3 = scn.ledger.session(scn.doctor).source("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[2],
        Value::text("CliD1-amended")
    );

    // But not the dosage (Fig. 3 matrix).
    let err = scn
        .ledger
        .session(scn.patient)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("tripled"))
        .commit()
        .unwrap_err();
    assert!(err.is_permission_denied(), "{err}");
    // The typed error carries the reverted on-chain receipt.
    let receipt = err.receipt().expect("reverted receipt");
    assert!(!receipt.status.is_success());
    // The denied change never reached the doctor.
    let d3 = scn.ledger.session(scn.doctor).source("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[4],
        Value::text("one tablet every 4h")
    );
}

#[test]
fn delete_entry_propagates() {
    let (mut ledger, doctor, nurse) = ward_share("crud-delete-ward");
    // Delete patient 189 from the ward share; the doctor's source loses
    // the row too (project lens translates deletes to source deletes).
    let outcome = ledger
        .session(doctor)
        .begin("ward")
        .delete(vec![Value::Int(189)])
        .commit()
        .expect("delete");
    assert!(outcome.version() >= 1);
    let nurse_copy = ledger.session(nurse).read("ward").expect("read");
    assert!(nurse_copy.get(&[Value::Int(189)]).is_none());
    let d3 = ledger.session(doctor).source("D3").expect("D3");
    assert!(d3.get(&[Value::Int(189)]).is_none());
    ledger.check_consistency().expect("consistent");
}

#[test]
fn batched_writes_commit_as_one_version() {
    // The facade's staging batches multiple entry-level writes into one
    // request-update transaction (the paper's batching remark).
    let (mut ledger, doctor, nurse) = ward_share("crud-batch");
    let outcome = ledger
        .session(doctor)
        .begin("ward")
        .insert(row![190i64, "Aspirin", "one daily"])
        .set(vec![Value::Int(188)], "dosage", Value::text("two tablets"))
        .delete(vec![Value::Int(189)])
        .commit()
        .expect("batch commit");
    // One committed version, one request_update on chain.
    assert_eq!(outcome.version(), 1);
    let requests = ledger
        .audit("ward")
        .iter()
        .filter(|e| e.method.as_deref() == Some("request_update"))
        .count();
    assert_eq!(requests, 1);
    // All three effects arrived at the nurse.
    let n = ledger.session(nurse).read("ward").expect("read");
    assert!(n.get(&[Value::Int(190)]).is_some());
    assert!(n.get(&[Value::Int(189)]).is_none());
    assert_eq!(
        n.get(&[Value::Int(188)]).expect("row")[2],
        Value::text("two tablets")
    );
    ledger.check_consistency().expect("consistent");
}

#[test]
fn denied_request_leaves_no_trace_in_metadata() {
    let mut scn = scenario::build(config("crud-denied")).expect("build");
    let v_before = scn.ledger.share_meta(SHARE_PD).expect("meta").version;
    let err = scn
        .ledger
        .session(scn.patient)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("nope"))
        .commit()
        .unwrap_err();
    assert!(err.is_permission_denied());
    let m = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert_eq!(m.version, v_before, "denied update must not bump version");
    assert!(m.synced(), "denied update must not lock the table");
    // The reverted transaction is still on chain (auditable denial).
    let hist = scn.ledger.audit(SHARE_PD);
    assert!(hist
        .iter()
        .any(|e| e.method.as_deref() == Some("request_update")));
}

#[test]
fn no_change_commit_is_rejected() {
    let mut scn = scenario::build(config("crud-nochange")).expect("build");
    // Writing the value a cell already holds produces no view change.
    let err = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("one tablet every 4h"),
        )
        .commit()
        .unwrap_err();
    assert!(matches!(err, CommitError::NoChange { .. }), "{err}");
}

#[test]
fn table_level_delete_retires_the_share() {
    let mut scn = scenario::build(config("crud-table-delete")).expect("build");
    let doctor = scn.doctor;
    // Only the authority may remove the share.
    let err = scn
        .ledger
        .session(scn.patient)
        .retire(SHARE_PD)
        .unwrap_err();
    assert!(matches!(err, CoreError::TxReverted(_)));

    scn.ledger.session(doctor).retire(SHARE_PD).expect("remove");
    // Metadata gone, local copies gone, sources intact.
    assert!(scn.ledger.share_meta(SHARE_PD).is_err());
    assert!(scn.ledger.session(scn.patient).read(SHARE_PD).is_err());
    assert!(scn.ledger.session(doctor).read(SHARE_PD).is_err());
    assert_eq!(
        scn.ledger
            .session(scn.patient)
            .source("D1")
            .expect("D1")
            .len(),
        1
    );
    // The history of the retired share is still auditable on chain.
    let hist = scn.ledger.audit(SHARE_PD);
    assert!(hist
        .iter()
        .any(|e| e.method.as_deref() == Some("remove_share")));
    // The untouched research share still works.
    scn.ledger.check_consistency().expect("consistent");
    assert!(scn.ledger.share_meta(SHARE_RD).is_ok());
}
