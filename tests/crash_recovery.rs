//! Crash-point recovery: kill the deployment at every storage write it
//! ever performs, recover, and verify the recovered state is exactly a
//! committed prefix of the original run.
//!
//! The durable design's contract (see `medledger-core`'s `persist`
//! module) is **commit-record atomicity**: a flush is visible if and
//! only if its `SysMeta` record landed in the `sys` stream. The suite
//! drives real workloads over instrumented backends:
//!
//! * [`RecordingBackend`] captures the shared [`MemoryBackend`] state
//!   *before every append and snapshot write* — each capture is exactly
//!   the bytes a crash at that write would leave behind (the backend is
//!   record-atomic; sub-record torn frames are the WAL layer's problem
//!   and covered by `medledger-storage`'s own tests plus the splice
//!   tests below). One workload run therefore enumerates every
//!   crash point.
//! * [`CrashBackend`] fails every append after a budget — *forever*, the
//!   way a dead disk stays dead — to check the live system's behavior on
//!   storage failure: the error surfaces, later flushes refuse to run
//!   (poisoned), and recovery still works.
//!
//! After every recovery the suite checks the full promise chain: the
//! recovered databases equal a committed prefix byte-for-byte
//! (fingerprints), the folded per-shard Merkle subroots match the
//! contract hashes the recovered chain carries (`check_consistency`),
//! and the deployment still *works* — a post-recovery commit goes
//! through with the surviving keys and nonces.

use medledger::core::scenario::{self, Fig1Scenario, SHARE_PD, SHARE_RD};
use medledger::crypto::Hash256;
use medledger::storage::{
    MemoryBackend, Result as StorageResult, SharedBackend, StorageBackend, StorageError,
};
use medledger::{ConsensusKind, LedgerService, MedLedger, SystemConfig, Value};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ----------------------------------------------------------------------
// Instrumented backends
// ----------------------------------------------------------------------

/// Captures the backend state before every mutating write: capture `k`
/// is what a crash at write `k` leaves on disk.
#[derive(Clone)]
struct RecordingBackend {
    inner: SharedBackend,
    captures: Arc<Mutex<Vec<MemoryBackend>>>,
}

impl RecordingBackend {
    fn new(inner: SharedBackend) -> Self {
        RecordingBackend {
            inner,
            captures: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn record(&self) {
        self.captures
            .lock()
            .expect("captures lock")
            .push(self.inner.snapshot_state());
    }

    fn captures(&self) -> Vec<MemoryBackend> {
        self.captures.lock().expect("captures lock").clone()
    }
}

impl StorageBackend for RecordingBackend {
    fn append(&mut self, stream: &str, payload: &[u8]) -> StorageResult<u64> {
        self.record();
        self.inner.append(stream, payload)
    }

    fn stream_len(&mut self, stream: &str) -> StorageResult<u64> {
        self.inner.stream_len(stream)
    }

    fn read_from(&mut self, stream: &str, from: u64) -> StorageResult<Vec<Vec<u8>>> {
        self.inner.read_from(stream, from)
    }

    fn truncate_to(&mut self, stream: &str, len: u64) -> StorageResult<()> {
        self.inner.truncate_to(stream, len)
    }

    fn compact(&mut self, stream: &str, below: u64) -> StorageResult<()> {
        self.inner.compact(stream, below)
    }

    fn write_snapshot(&mut self, id: u64, payload: &[u8]) -> StorageResult<()> {
        self.record();
        self.inner.write_snapshot(id, payload)
    }

    fn latest_snapshot(&mut self) -> StorageResult<Option<(u64, Vec<u8>)>> {
        self.inner.latest_snapshot()
    }

    fn read_snapshot(&mut self, id: u64) -> StorageResult<Option<Vec<u8>>> {
        self.inner.read_snapshot(id)
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.inner.sync()
    }
}

/// Fails every append once a budget of successful appends is spent — and
/// keeps failing forever after, like a disk that died.
struct CrashBackend {
    inner: SharedBackend,
    budget: Arc<AtomicU64>,
    dead: bool,
}

impl CrashBackend {
    fn new(inner: SharedBackend, budget: u64) -> Self {
        CrashBackend {
            inner,
            budget: Arc::new(AtomicU64::new(budget)),
            dead: false,
        }
    }

    fn injected<T>(&mut self) -> StorageResult<T> {
        self.dead = true;
        Err(StorageError::Injected("append budget exhausted".into()))
    }
}

impl StorageBackend for CrashBackend {
    fn append(&mut self, stream: &str, payload: &[u8]) -> StorageResult<u64> {
        if self.dead
            || self
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                .is_err()
        {
            return self.injected();
        }
        self.inner.append(stream, payload)
    }

    fn stream_len(&mut self, stream: &str) -> StorageResult<u64> {
        self.inner.stream_len(stream)
    }

    fn read_from(&mut self, stream: &str, from: u64) -> StorageResult<Vec<Vec<u8>>> {
        self.inner.read_from(stream, from)
    }

    fn truncate_to(&mut self, stream: &str, len: u64) -> StorageResult<()> {
        self.inner.truncate_to(stream, len)
    }

    fn compact(&mut self, stream: &str, below: u64) -> StorageResult<()> {
        self.inner.compact(stream, below)
    }

    fn write_snapshot(&mut self, id: u64, payload: &[u8]) -> StorageResult<()> {
        if self.dead {
            return self.injected();
        }
        self.inner.write_snapshot(id, payload)
    }

    fn latest_snapshot(&mut self) -> StorageResult<Option<(u64, Vec<u8>)>> {
        self.inner.latest_snapshot()
    }

    fn read_snapshot(&mut self, id: u64) -> StorageResult<Option<Vec<u8>>> {
        self.inner.read_snapshot(id)
    }

    fn sync(&mut self) -> StorageResult<()> {
        if self.dead {
            return self.injected();
        }
        self.inner.sync()
    }
}

// ----------------------------------------------------------------------
// Workload + oracles
// ----------------------------------------------------------------------

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 32,
        ..Default::default()
    }
}

fn sharded_config(seed: &str) -> SystemConfig {
    SystemConfig {
        shards_per_table: 4,
        ..config(seed)
    }
}

/// Builds the Fig. 1 scenario on a durable ledger over `backend`.
fn durable_fig1(
    cfg: &SystemConfig,
    backend: Box<dyn StorageBackend>,
    snapshot_every: u64,
) -> medledger::core::Result<Fig1Scenario> {
    let ledger = MedLedger::builder()
        .config(cfg.clone())
        .storage_backend(backend)
        .snapshot_every(snapshot_every)
        .build()?;
    scenario::populate(ledger)
}

/// Commit `i` of the deterministic workload: dosage edits by the doctor
/// on `D13&D31` alternating with mechanism edits by the researcher on
/// `D23&D32`.
fn workload_commit(scn: &mut Fig1Scenario, i: usize) -> Result<(), String> {
    let result = if i.is_multiple_of(2) {
        scn.ledger
            .session(scn.doctor)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text(format!("dose-{i}")),
            )
            .commit()
    } else {
        scn.ledger
            .session(scn.researcher)
            .begin(SHARE_RD)
            .update_source(
                "D2",
                vec![Value::text("Ibuprofen")],
                vec![(
                    "mechanism_of_action".into(),
                    Value::text(format!("mech-{i}")),
                )],
            )
            .commit()
    };
    result.map(|_| ()).map_err(|e| e.to_string())
}

/// Everything recovery must reproduce, captured from a live deployment.
#[derive(Debug, PartialEq)]
struct Oracle {
    height: u64,
    fingerprints: Vec<(String, Hash256)>,
    pd_audit_len: usize,
    rd_audit_len: usize,
}

fn capture(ledger: &MedLedger) -> Oracle {
    let sys = ledger.system();
    Oracle {
        height: ledger.chain().height(),
        fingerprints: sys
            .peer_ids()
            .into_iter()
            .map(|id| {
                let p = sys.peer(id).expect("listed peer");
                (p.name.clone(), p.db.fingerprint())
            })
            .collect(),
        pd_audit_len: ledger.audit(SHARE_PD).len(),
        rd_audit_len: ledger.audit(SHARE_RD).len(),
    }
}

fn recover(cfg: &SystemConfig, state: MemoryBackend) -> medledger::core::Result<MedLedger> {
    MedLedger::builder()
        .config(cfg.clone())
        .storage_backend(Box::new(SharedBackend::from_state(state)))
        .build()
}

/// The recovered deployment must still *work*: one more doctor commit.
fn assert_live(ledger: &mut MedLedger) {
    let doctor = ledger.peer_id("Doctor").expect("doctor");
    ledger
        .session(doctor)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("post-recovery"),
        )
        .commit()
        .expect("post-recovery commit");
    ledger.check_consistency().expect("consistent after commit");
}

// ----------------------------------------------------------------------
// Crash-point sweep
// ----------------------------------------------------------------------

/// Crash at *every* storage write the workload performs. One recorded
/// run enumerates the crash points; recovery from each capture must
/// yield a verified, committed prefix of the run — never an error,
/// never a state that fails subroot verification, never a state that
/// matches no commit boundary.
#[test]
fn every_crash_point_recovers_a_committed_prefix() {
    let cfg = config("crash-sweep");
    let recorder = RecordingBackend::new(SharedBackend::new());

    // The recorded run, checkpointed at every commit boundary the flush
    // layer can persist (after populate, then after each commit).
    let mut scn = durable_fig1(&cfg, Box::new(recorder.clone()), 2).expect("build");
    let mut checkpoints = vec![capture(&scn.ledger)];
    for i in 0..4 {
        workload_commit(&mut scn, i).unwrap_or_else(|e| panic!("commit {i}: {e}"));
        checkpoints.push(capture(&scn.ledger));
    }
    scn.ledger.close().expect("close");
    let final_state = recorder.inner.snapshot_state();
    let captures = recorder.captures();
    assert!(
        captures.len() > 40,
        "expected a dense sweep, got {} crash points",
        captures.len()
    );

    for (k, state) in captures.into_iter().enumerate() {
        let recovered = recover(&cfg, state)
            .unwrap_or_else(|e| panic!("crash point {k}: recovery failed: {e}"));
        recovered
            .check_consistency()
            .unwrap_or_else(|e| panic!("crash point {k}: inconsistent after recovery: {e}"));
        let oracle = capture(&recovered);
        let is_checkpoint = checkpoints.iter().any(|c| c == &oracle);
        // Crashes inside populate recover to a structural setup state
        // below the first checkpoint; every crash after that must land
        // exactly on a commit boundary.
        assert!(
            is_checkpoint || oracle.height <= checkpoints[0].height,
            "crash point {k}: recovered height {} matches no commit boundary",
            oracle.height
        );
    }

    // And the cleanly-closed final state recovers byte-identical + live.
    let mut recovered = recover(&cfg, final_state).expect("recover final");
    assert_eq!(&capture(&recovered), checkpoints.last().expect("nonempty"));
    assert_live(&mut recovered);
}

// ----------------------------------------------------------------------
// Targeted crash points
// ----------------------------------------------------------------------

/// A crash that loses the commit record (WAL/chain records appended but
/// no `SysMeta`) must recover to the *previous* commit — the
/// half-written flush vanishes entirely.
#[test]
fn uncommitted_flush_suffix_is_discarded_on_recovery() {
    let cfg = config("crash-suffix");
    let shared = SharedBackend::new();
    let mut scn = durable_fig1(&cfg, Box::new(shared.clone()), 100).expect("build");
    for i in 0..2 {
        workload_commit(&mut scn, i).expect("commit");
    }
    let committed = capture(&scn.ledger);

    // Splice garbage beyond the committed marks of the peer and chain
    // streams — exactly what a flush that died before its commit record
    // leaves behind.
    let mut state = shared.snapshot_state();
    state
        .append("peer/Doctor", b"torn half-written record")
        .expect("splice");
    state.append("chain", b"torn block").expect("splice");

    let recovered = recover(&cfg, state).expect("recover");
    assert_eq!(capture(&recovered), committed);
    recovered.check_consistency().expect("consistent");
}

/// A commit record whose data never made it (sys record present, stream
/// contents shorter than its marks) must be skipped in favor of the
/// previous intact commit — the fsync-ordering hazard.
#[test]
fn commit_record_without_its_data_is_skipped() {
    let cfg = config("crash-dangling-meta");
    let shared = SharedBackend::new();
    let mut scn = durable_fig1(&cfg, Box::new(shared.clone()), 100).expect("build");
    workload_commit(&mut scn, 0).expect("commit");
    let committed = capture(&scn.ledger);

    let mut state = shared.snapshot_state();
    // Keep the newest sys record but drop the tail of the chain stream
    // it refers to.
    let chain_len = state.stream_len("chain").expect("len");
    assert!(chain_len > 0);
    state
        .truncate_to("chain", chain_len - 1)
        .expect("drop tail");

    let recovered = recover(&cfg, state).expect("recover");
    let oracle = capture(&recovered);
    assert!(
        oracle.height < committed.height,
        "dangling commit record must not be served (height {} vs {})",
        oracle.height,
        committed.height
    );
    recovered.check_consistency().expect("consistent");
}

/// Corruption *inside* the committed region is a storage lie, not a torn
/// tail: recovery must fail loudly rather than serve wrong data.
#[test]
fn corrupt_committed_record_fails_loudly() {
    let cfg = config("crash-corrupt");
    let shared = SharedBackend::new();
    let mut scn = durable_fig1(&cfg, Box::new(shared.clone()), 100).expect("build");
    for i in 0..2 {
        workload_commit(&mut scn, i).expect("commit");
    }
    drop(scn);

    // Rewrite a committed block record as garbage.
    let mut state = shared.snapshot_state();
    let blocks = state.read_from("chain", 0).expect("read");
    assert!(!blocks.is_empty());
    let mut tampered: Vec<Vec<u8>> = blocks;
    let mid = tampered.len() / 2;
    tampered[mid] = b"\xff\xff not a block".to_vec();
    state.truncate_to("chain", 0).expect("clear");
    for rec in &tampered {
        state.append("chain", rec).expect("rewrite");
    }

    let err = match recover(&cfg, state) {
        Ok(_) => panic!("corruption must not recover"),
        Err(e) => e,
    };
    assert!(
        matches!(err, medledger::CoreError::Storage(_)),
        "unexpected error: {err}"
    );
}

/// A live system whose disk dies mid-workload: the failing commit
/// surfaces a storage error, every later flush refuses to run
/// (poisoned — no silent divergence between memory and disk), and the
/// bytes written so far still recover.
#[test]
fn dead_disk_poisons_the_live_system_but_recovers() {
    let cfg = config("crash-poison");
    let shared = SharedBackend::new();
    // Enough budget to finish setup, dying somewhere in the workload.
    let budget = {
        // Count setup appends with a recorded dry run.
        let probe = RecordingBackend::new(SharedBackend::new());
        durable_fig1(&cfg, Box::new(probe.clone()), 2).expect("probe build");
        probe.captures().len() as u64 + 3
    };
    let crash = CrashBackend::new(shared.clone(), budget);
    let mut scn = durable_fig1(&cfg, Box::new(crash), 2).expect("build");

    let mut first_failure = None;
    for i in 0..6 {
        if let Err(e) = workload_commit(&mut scn, i) {
            first_failure = Some((i, e));
            break;
        }
    }
    let (failed_at, message) = first_failure.expect("budget must exhaust mid-workload");
    assert!(
        message.contains("storage") || message.contains("injected"),
        "commit {failed_at} failed with a non-storage error: {message}"
    );

    // Every subsequent commit fails fast on the poisoned backend.
    let err = workload_commit(&mut scn, failed_at + 1).expect_err("poisoned");
    assert!(err.contains("poisoned"), "unexpected error: {err}");

    // The bytes that made it to the dead disk still recover.
    let mut recovered = recover(&cfg, shared.snapshot_state()).expect("recover");
    recovered.check_consistency().expect("consistent");
    assert_live(&mut recovered);
}

/// The sharded configuration exercises the fold-verification path: the
/// recovered per-shard subroots must re-fold to the contract hashes.
#[test]
fn sharded_deployment_recovers_with_verified_subroots() {
    let cfg = sharded_config("crash-sharded");
    let shared = SharedBackend::new();
    let mut scn = durable_fig1(&cfg, Box::new(shared.clone()), 2).expect("build");
    for i in 0..4 {
        workload_commit(&mut scn, i).expect("commit");
    }
    let committed = capture(&scn.ledger);
    scn.ledger.close().expect("close");

    let mut recovered = recover(&cfg, shared.snapshot_state()).expect("recover");
    assert_eq!(capture(&recovered), committed);
    recovered.check_consistency().expect("subroots verified");
    assert_live(&mut recovered);
}

/// Closing a [`LedgerService`] mid-workload and reopening resumes with
/// identical state and continued wave numbering.
#[test]
fn ledger_service_close_and_reopen_resumes_waves() {
    let cfg = config("crash-service");
    let shared = SharedBackend::new();
    let scn = durable_fig1(&cfg, Box::new(shared.clone()), 3).expect("build");
    let (doctor, researcher) = (scn.doctor, scn.researcher);

    let mut service = LedgerService::new(scn.ledger);
    service
        .submit(doctor, SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("wave-1"))
        .submit()
        .expect("stage");
    service
        .submit(researcher, SHARE_RD)
        .update_source(
            "D2",
            vec![Value::text("Ibuprofen")],
            vec![("mechanism_of_action".into(), Value::text("wave-1-mech"))],
        )
        .submit()
        .expect("stage");
    service.drain().expect("drain");
    let waves_before = service.waves();
    assert!(waves_before >= 1);
    let committed = capture(service.ledger());
    service.close().expect("close");

    let recovered = recover(&cfg, shared.snapshot_state()).expect("recover");
    assert_eq!(capture(&recovered), committed);
    let mut service = LedgerService::new(recovered);
    assert_eq!(
        service.waves(),
        waves_before,
        "wave numbering must resume, not restart"
    );
    service
        .submit(doctor, SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("wave-2"))
        .submit()
        .expect("stage");
    service.drain().expect("drain");
    assert_eq!(service.waves(), waves_before + 1);
    service
        .ledger()
        .check_consistency()
        .expect("consistent after resumed wave");
}

// ----------------------------------------------------------------------
// Log truncation + pipelined consensus
// ----------------------------------------------------------------------

/// Snapshots bound the WAL: each snapshot flush truncates the in-memory
/// database log below the persisted sequence and compacts the on-disk
/// peer stream, so neither grows with workload length.
#[test]
fn snapshots_truncate_the_wal_and_bound_its_growth() {
    let cfg = config("crash-truncate");
    let root =
        std::env::temp_dir().join(format!("medledger-crash-truncate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Small segments so the segment-granular compaction has something to
    // reclaim within this short workload.
    let store =
        medledger::storage::DurableStore::open_with_segment_bytes(&root, 256).expect("open");
    let mut scn = durable_fig1(&cfg, Box::new(store), 2).expect("build");
    for i in 0..6 {
        workload_commit(&mut scn, i).expect("commit");
    }

    // In-memory: the retained log window is shorter than the full record
    // sequence — `Database::truncate_log` ran on the snapshot path.
    let doctor_db = &scn.ledger.system().peer(scn.doctor).expect("doctor").db;
    let total_records = doctor_db.next_seq();
    let retained = doctor_db.log_since(0).len() as u64;
    assert!(total_records > 0);
    assert!(
        retained < total_records,
        "snapshot flushes must truncate the in-memory log \
         (retained {retained} of {total_records} records)"
    );

    scn.ledger.close().expect("close");

    // On disk: the peer stream's committed prefix was reclaimed — the
    // segmented log refuses to read below its compaction horizon, which
    // is exactly the proof that the snapshot path compacted it.
    let mut reopened =
        medledger::storage::DurableStore::open_with_segment_bytes(&root, 256).expect("reopen");
    let logical = reopened.stream_len("peer/Doctor").expect("len");
    assert!(logical > 0);
    let err = reopened
        .read_from("peer/Doctor", 0)
        .expect_err("snapshot flushes must compact the durable WAL");
    assert!(
        err.to_string().contains("compacted"),
        "unexpected read error: {err}"
    );

    // And the compacted deployment still recovers and works.
    let mut recovered = MedLedger::builder()
        .config(cfg.clone())
        .storage_backend(Box::new(reopened))
        .build()
        .expect("recover compacted");
    recovered.check_consistency().expect("consistent");
    assert_live(&mut recovered);
    let _ = std::fs::remove_dir_all(&root);
}

fn pipelined_config(seed: &str) -> SystemConfig {
    SystemConfig {
        pipeline_depth: 3,
        ..config(seed)
    }
}

/// A deployment running pipelined consensus (depth 3) recovers exactly:
/// the replay re-verifies every block's attested state root in wave
/// order, re-seeds the pipeline admission schedule from the chain's own
/// seal times, and the resumed service continues wave numbering.
#[test]
fn pipelined_deployment_recovers_and_resumes_waves() {
    let cfg = pipelined_config("crash-pipelined");
    let shared = SharedBackend::new();
    let scn = durable_fig1(&cfg, Box::new(shared.clone()), 3).expect("build");
    let (doctor, researcher) = (scn.doctor, scn.researcher);

    let mut service = LedgerService::new(scn.ledger);
    for round in 0..2 {
        service
            .submit(doctor, SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text(format!("pipe-{round}")),
            )
            .submit()
            .expect("stage");
        service
            .submit(researcher, SHARE_RD)
            .update_source(
                "D2",
                vec![Value::text("Ibuprofen")],
                vec![(
                    "mechanism_of_action".into(),
                    Value::text(format!("pipe-mech-{round}")),
                )],
            )
            .submit()
            .expect("stage");
        service.drain().expect("drain");
    }
    let waves_before = service.waves();
    assert!(waves_before >= 2);
    let committed = capture(service.ledger());
    // The chain the pipelined run produced is wave-ordered (overlap
    // never reorders commits) with monotonic seal times.
    let waves: Vec<u64> = service
        .ledger()
        .chain()
        .blocks()
        .iter()
        .filter_map(|b| b.header.wave)
        .collect();
    assert!(waves.windows(2).all(|w| w[0] <= w[1]), "{waves:?}");
    service.close().expect("close");

    let recovered = recover(&cfg, shared.snapshot_state()).expect("recover pipelined");
    assert_eq!(capture(&recovered), committed);
    recovered.check_consistency().expect("consistent");
    let mut service = LedgerService::new(recovered);
    assert_eq!(service.waves(), waves_before, "wave numbering resumes");
    service
        .submit(doctor, SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("post-pipe"))
        .submit()
        .expect("stage");
    service.drain().expect("drain");
    assert_eq!(service.waves(), waves_before + 1);
    service
        .ledger()
        .check_consistency()
        .expect("consistent after resumed pipelined wave");
}

/// A stored chain whose wave attributions go backwards was not produced
/// by the pipeline (overlap admits rounds early but never reorders
/// commits) — recovery must refuse it loudly.
#[test]
fn out_of_wave_order_chain_fails_recovery() {
    use medledger::ledger::Block;
    use medledger::storage::{Decode, Encode};

    let cfg = pipelined_config("crash-wave-order");
    let shared = SharedBackend::new();
    let scn = durable_fig1(&cfg, Box::new(shared.clone()), 3).expect("build");
    let (doctor, researcher) = (scn.doctor, scn.researcher);
    let mut service = LedgerService::new(scn.ledger);
    for round in 0..2 {
        service
            .submit(doctor, SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text(format!("tamper-{round}")),
            )
            .submit()
            .expect("stage");
        service
            .submit(researcher, SHARE_RD)
            .update_source(
                "D2",
                vec![Value::text("Ibuprofen")],
                vec![(
                    "mechanism_of_action".into(),
                    Value::text(format!("tamper-mech-{round}")),
                )],
            )
            .submit()
            .expect("stage");
        service.drain().expect("drain");
    }
    service.close().expect("close");

    // Re-attribute the FIRST waved block to a far-future wave; the next
    // waved block then reads as a wave regression during replay.
    let mut state = shared.snapshot_state();
    let mut records = state.read_from("chain", 0).expect("read");
    let first_waved = records
        .iter()
        .position(|raw| {
            Block::decode(raw)
                .map(|b| b.header.wave.is_some())
                .unwrap_or(false)
        })
        .expect("a waved block exists");
    let block = Block::decode(&records[first_waved]).expect("decode");
    records[first_waved] = block.in_wave(Some(u64::MAX)).encoded();
    state.truncate_to("chain", 0).expect("clear");
    for rec in &records {
        state.append("chain", rec).expect("rewrite");
    }

    let err = match recover(&cfg, state) {
        Ok(_) => panic!("wave-order violation must not recover"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, medledger::CoreError::Storage(msg) if msg.contains("wave")),
        "unexpected error: {err}"
    );
}

// ----------------------------------------------------------------------
// Property: random crash budgets always recover
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random commit counts and crash budgets: recovery never fails and
    /// never serves an unverifiable state.
    #[test]
    fn any_crash_budget_recovers(commits in 1usize..4, budget in 0u64..90) {
        let cfg = config("crash-prop");
        let shared = SharedBackend::new();
        let crash = CrashBackend::new(shared.clone(), budget);
        let _ = durable_fig1(&cfg, Box::new(crash), 2).map(|mut scn| {
            for i in 0..commits {
                if workload_commit(&mut scn, i).is_err() {
                    break;
                }
            }
        });
        let recovered = recover(&cfg, shared.snapshot_state())
            .expect("recovery must always succeed");
        recovered.check_consistency().expect("recovered state verifies");
    }
}
