//! E5 — the Fig. 5 eleven-step update workflow, with trace verification,
//! driven through `UpdateBatch::commit()`.

use medledger::core::scenario::{self, run_fig5, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, SystemConfig, Value};

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn fig5_trace_has_numbered_steps() {
    let mut scn = scenario::build(config("fig5-trace")).expect("build");
    let (r_outcome, d_outcome) = run_fig5(&mut scn).expect("fig5");

    // Researcher's propagation covers steps 1-5 plus the step-6 check.
    let numbers: Vec<&str> = r_outcome
        .trace
        .steps
        .iter()
        .map(|s| s.number.as_str())
        .collect();
    for expected in ["1", "2", "3", "4", "5", "6"] {
        assert!(
            numbers.contains(&expected),
            "missing step {expected}: {numbers:?}"
        );
    }
    // Steps are time-ordered.
    let times: Vec<u64> = r_outcome.trace.steps.iter().map(|s| s.at_ms).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");

    // The doctor-side follow-up (the paper's steps 7-11) has its own 1-5
    // shaped trace on SHARE_PD.
    assert_eq!(d_outcome.report.table_id, SHARE_PD);
    assert!(d_outcome
        .trace
        .steps
        .iter()
        .any(|s| s.description.contains("BX-put")));
}

#[test]
fn fig5_data_flow_matches_paper() {
    let mut scn = scenario::build(config("fig5-data")).expect("build");
    run_fig5(&mut scn).expect("fig5");

    // Researcher's MeA1 edit reached the Doctor's D3 (via BX32-put).
    let d3 = scn.ledger.session(scn.doctor).source("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[3],
        Value::text("MeA1-revised")
    );
    // Doctor's dosage edit reached the Patient's D1 (via BX13-put).
    let d1 = scn.ledger.session(scn.patient).source("D1").expect("D1");
    assert_eq!(
        d1.get(&[Value::Int(188)]).expect("row")[4],
        Value::text("two tablets every 6h")
    );
    // The researcher's own D2 keeps its local authorship.
    let d2 = scn.ledger.session(scn.researcher).source("D2").expect("D2");
    assert_eq!(
        d2.get(&[Value::text("Ibuprofen")]).expect("row")[1],
        Value::text("MeA1-revised")
    );
}

#[test]
fn latency_structure_is_plausible() {
    let mut scn = scenario::build(config("fig5-latency")).expect("build");
    let (r, d) = run_fig5(&mut scn).expect("fig5");
    for outcome in [&r, &d] {
        let report = &outcome.report;
        assert!(report.submitted_ms <= report.committed_ms);
        assert!(report.committed_ms <= report.visible_ms);
        assert!(report.visible_ms <= report.synced_ms);
        assert!(outcome.visibility_latency_ms() > 0);
        assert!(outcome.sync_latency_ms() >= outcome.visibility_latency_ms());
    }
}

#[test]
fn barrier_blocks_concurrent_updates_on_same_table() {
    // The contract refuses a second update while acks are pending — but
    // commit() waits for acks, so the observable effect is
    // serialization: two sequential commits get versions 1 and 2 and the
    // audit history interleaves request/ack per version.
    let mut scn = scenario::build(config("fig5-barrier")).expect("build");
    for (i, dosage) in ["A", "B"].iter().enumerate() {
        let outcome = scn
            .ledger
            .session(scn.doctor)
            .begin(SHARE_PD)
            .set(vec![Value::Int(188)], "dosage", Value::text(*dosage))
            .commit()
            .expect("commit");
        assert_eq!(outcome.version(), i as u64 + 1);
    }
    let hist = scn.ledger.audit(SHARE_PD);
    let methods: Vec<&str> = hist.iter().filter_map(|e| e.method.as_deref()).collect();
    // register, then request/aggregated-ack, request/aggregated-ack. The
    // audit expands each aggregate into a submitter entry plus one entry
    // per contributing receiver (one here), but each wave still puts
    // exactly ONE ack transaction on chain.
    let requests = methods.iter().filter(|m| **m == "request_update").count();
    assert_eq!(requests, 2);
    let ack_txs: std::collections::BTreeSet<_> = hist
        .iter()
        .filter(|e| e.method.as_deref() == Some("ack_update_aggregate"))
        .map(|e| e.tx_id)
        .collect();
    assert_eq!(ack_txs.len(), 2);
}

#[test]
fn audit_history_reconstructs_update_sequence() {
    let mut scn = scenario::build(config("fig5-audit")).expect("build");
    run_fig5(&mut scn).expect("fig5");
    let hist = scn.ledger.audit(SHARE_RD);
    // register_share, request_update, ack_update_aggregate in order.
    let methods: Vec<&str> = hist.iter().filter_map(|e| e.method.as_deref()).collect();
    let reg = methods
        .iter()
        .position(|m| *m == "register_share")
        .expect("register");
    let req = methods
        .iter()
        .position(|m| *m == "request_update")
        .expect("request");
    let ack = methods
        .iter()
        .position(|m| *m == "ack_update_aggregate")
        .expect("ack");
    assert!(reg < req && req < ack);
    // Heights are non-decreasing, and strictly increase between distinct
    // transactions (one tx per table per block; the audit's per-receiver
    // expansion of an aggregated ack shares its transaction's height).
    assert!(hist
        .windows(2)
        .all(|w| w[0].height < w[1].height || w[0].tx_id == w[1].tx_id));
}

#[test]
fn commit_outcome_receipts_match_chain() {
    // The receipts in a CommitOutcome are exactly the on-chain
    // request+ack transactions of the audit history, all successful.
    let mut scn = scenario::build(config("fig5-receipts")).expect("build");
    let (r_outcome, _) = run_fig5(&mut scn).expect("fig5");
    // One request + one aggregated ack (two sharing peers).
    assert_eq!(r_outcome.receipts.len(), 2);
    assert!(r_outcome.receipts.iter().all(|r| r.status.is_success()));
    let audited: Vec<_> = scn
        .ledger
        .audit(SHARE_RD)
        .iter()
        .filter(|e| {
            matches!(
                e.method.as_deref(),
                Some("request_update" | "ack_update" | "ack_update_aggregate")
            )
        })
        .map(|e| e.tx_id)
        .collect();
    for receipt in &r_outcome.receipts {
        assert!(audited.contains(&receipt.tx_id));
    }
}

#[test]
fn one_tx_per_shared_table_per_block_on_chain() {
    let mut scn = scenario::build(config("fig5-rule")).expect("build");
    run_fig5(&mut scn).expect("fig5");
    for block in scn.ledger.chain().blocks() {
        let mut keys = std::collections::BTreeSet::new();
        for tx in &block.txs {
            if let Some(k) = &tx.tx.conflict_key {
                assert!(
                    keys.insert(k.clone()),
                    "block {} has two txs for `{k}`",
                    block.header.height
                );
            }
        }
    }
}
