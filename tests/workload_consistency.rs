//! Stress: a stream of mixed, permission-valid updates driven through
//! transactional commits keeps every peer consistent (the paper's core
//! promise) and the chain auditable.

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::ledger::audit::verify_chain;
use medledger::workload::{UpdateKind, UpdateStream};
use medledger::{ConsensusKind, SystemConfig, Value};

#[test]
fn mixed_update_stream_stays_consistent() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: "stress".into(),
        peer_key_capacity: 256,
        ..Default::default()
    })
    .expect("build");

    let mut stream = UpdateStream::new("stress", vec![188], 0.3);
    let mut committed = 0usize;
    for _ in 0..20 {
        let u = stream.next_update();
        let result = match u.kind {
            UpdateKind::Dosage => {
                // Doctor-side edit through the patient share.
                scn.ledger
                    .session(scn.doctor)
                    .begin(SHARE_PD)
                    .set(vec![u.target.clone()], "dosage", u.new_value.clone())
                    .commit()
            }
            UpdateKind::ClinicalData => scn
                .ledger
                .session(scn.patient)
                .begin(SHARE_PD)
                .set(vec![u.target.clone()], "clinical_data", u.new_value.clone())
                .commit(),
            UpdateKind::Mechanism => {
                // Researcher edits its D2 source, then commits through
                // the research share — only for medications actually
                // present in D2.
                let present = scn
                    .ledger
                    .session(scn.researcher)
                    .source("D2")
                    .expect("D2")
                    .get(std::slice::from_ref(&u.target))
                    .is_some();
                if !present {
                    continue;
                }
                scn.ledger
                    .session(scn.researcher)
                    .begin(SHARE_RD)
                    .update_source(
                        "D2",
                        vec![u.target.clone()],
                        vec![("mechanism_of_action".into(), u.new_value.clone())],
                    )
                    .commit()
            }
        };
        match result {
            Ok(_) => committed += 1,
            Err(e) if e.is_no_change() => {}
            Err(e) => panic!("unexpected failure: {e}"),
        }
        scn.ledger
            .check_consistency()
            .expect("consistent after each update");
    }
    assert!(committed >= 10, "only {committed} updates committed");

    // The chain structure verifies end to end and versions are dense.
    verify_chain(scn.ledger.chain()).expect("chain verifies");
    let m = scn.ledger.share_meta(SHARE_PD).expect("meta");
    assert!(m.synced());
    let hist = scn.ledger.audit(SHARE_PD);
    let requests = hist
        .iter()
        .filter(|e| e.method.as_deref() == Some("request_update"))
        .count();
    assert!(requests as u64 >= m.version);
}

#[test]
fn contract_hash_always_matches_peer_data_when_synced() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: "hash-inv".into(),
        peer_key_capacity: 128,
        ..Default::default()
    })
    .expect("build");
    for i in 0..5 {
        scn.ledger
            .session(scn.doctor)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text(format!("rev-{i}")),
            )
            .commit()
            .expect("commit");
        let m = scn.ledger.share_meta(SHARE_PD).expect("meta");
        assert!(m.synced());
        for peer in [scn.patient, scn.doctor] {
            let stored = scn.ledger.session(peer).read(SHARE_PD).expect("read");
            assert_eq!(
                stored.content_hash(),
                m.content_hash,
                "peer {peer} at rev {i}"
            );
        }
    }
}
