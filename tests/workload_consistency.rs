//! Stress: a stream of mixed, permission-valid updates keeps every peer
//! consistent (the paper's core promise) and the chain auditable.

use medledger::core::scenario::{self, DOCTOR, PATIENT, RESEARCHER, SHARE_PD, SHARE_RD};
use medledger::core::{ConsensusKind, SystemConfig};
use medledger::ledger::audit::verify_chain;
use medledger::relational::{Value, WriteOp};
use medledger::workload::{UpdateKind, UpdateStream};

#[test]
fn mixed_update_stream_stays_consistent() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: "stress".into(),
        peer_key_capacity: 256,
        ..Default::default()
    })
    .expect("build");

    let mut stream = UpdateStream::new("stress", vec![188], 0.3);
    let mut committed = 0usize;
    for _ in 0..20 {
        let u = stream.next_update();
        let result = match u.kind {
            UpdateKind::Dosage => {
                // Doctor-side edit through the patient share.
                scn.system
                    .peer_mut(DOCTOR)
                    .expect("peer")
                    .write_shared(
                        SHARE_PD,
                        WriteOp::Update {
                            key: vec![u.target.clone()],
                            assignments: vec![("dosage".into(), u.new_value.clone())],
                        },
                    )
                    .and_then(|_| {
                        let doctor = scn.system.account_of(DOCTOR).expect("doctor");
                        scn.system.propagate_update(doctor, SHARE_PD)
                    })
            }
            UpdateKind::ClinicalData => scn.system.update_shared_entry(
                PATIENT,
                SHARE_PD,
                vec![u.target.clone()],
                vec![("clinical_data".into(), u.new_value.clone())],
            ),
            UpdateKind::Mechanism => {
                // Researcher edits its D2 source, then propagates —
                // only for medications actually present in D2.
                let present = scn
                    .system
                    .peer(RESEARCHER)
                    .expect("peer")
                    .db
                    .table("D2")
                    .expect("D2")
                    .get(std::slice::from_ref(&u.target))
                    .is_some();
                if !present {
                    continue;
                }
                scn.system
                    .peer_mut(RESEARCHER)
                    .expect("peer")
                    .write_source(
                        "D2",
                        WriteOp::Update {
                            key: vec![u.target.clone()],
                            assignments: vec![(
                                "mechanism_of_action".into(),
                                u.new_value.clone(),
                            )],
                        },
                    )
                    .and_then(|_| {
                        let researcher = scn.system.account_of(RESEARCHER).expect("r");
                        scn.system.propagate_update(researcher, SHARE_RD)
                    })
            }
        };
        match result {
            Ok(_) => committed += 1,
            Err(medledger::core::CoreError::NoChange(_)) => {}
            Err(e) => panic!("unexpected failure: {e}"),
        }
        scn.system.check_consistency().expect("consistent after each update");
    }
    assert!(committed >= 10, "only {committed} updates committed");

    // The chain structure verifies end to end and versions are dense.
    verify_chain(scn.system.chain()).expect("chain verifies");
    let m = scn.system.share_meta(SHARE_PD).expect("meta");
    assert!(m.synced());
    let hist = scn.system.audit(SHARE_PD);
    let requests = hist
        .iter()
        .filter(|e| e.method.as_deref() == Some("request_update"))
        .count();
    assert!(requests as u64 >= m.version);
}

#[test]
fn contract_hash_always_matches_peer_data_when_synced() {
    let mut scn = scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: "hash-inv".into(),
        peer_key_capacity: 128,
        ..Default::default()
    })
    .expect("build");
    for i in 0..5 {
        scn.system
            .peer_mut(DOCTOR)
            .expect("peer")
            .write_shared(
                SHARE_PD,
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text(format!("rev-{i}")))],
                },
            )
            .expect("edit");
        scn.system
            .propagate_update(scn.doctor, SHARE_PD)
            .expect("propagate");
        let m = scn.system.share_meta(SHARE_PD).expect("meta");
        assert!(m.synced());
        for peer in [PATIENT, DOCTOR] {
            assert_eq!(
                scn.system.peer(peer).expect("peer").shared_hash(SHARE_PD).expect("hash"),
                m.content_hash,
                "peer {peer} at rev {i}"
            );
        }
    }
}
