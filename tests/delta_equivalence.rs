//! Mode equivalence: delta propagation and the full-table baseline are
//! observationally identical.
//!
//! Property: for any sequence of permission-valid update batches, a
//! deployment running `PropagationMode::Delta` ends in **byte-identical**
//! peer state (per-table content hashes, whole-database fingerprints) to
//! one running `PropagationMode::FullTable` — the ISSUE 2 acceptance
//! criterion that lets the incremental pipeline replace the paper-literal
//! whole-table exchange without changing semantics.

use medledger::core::scenario::{self, Fig1Scenario, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, PropagationMode, SystemConfig, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum ScriptOp {
    /// Doctor edits patient 188's dosage through the patient share.
    DoctorDosage(u8),
    /// Patient edits its clinical data through the patient share.
    PatientClinical(u8),
    /// Researcher edits a medication's mechanism in its D2 source and
    /// commits through the research share.
    ResearcherMechanism(u8, u8),
}

fn arb_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u8..200).prop_map(ScriptOp::DoctorDosage),
        (0u8..200).prop_map(ScriptOp::PatientClinical),
        (0u8..2, 0u8..200).prop_map(|(m, v)| ScriptOp::ResearcherMechanism(m, v)),
    ]
}

fn build(mode: PropagationMode, seed: &str) -> Fig1Scenario {
    scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: seed.into(),
        peer_key_capacity: 256,
        propagation: mode,
        ..Default::default()
    })
    .expect("build")
}

fn run_script(scn: &mut Fig1Scenario, script: &[ScriptOp]) {
    for op in script {
        let result = match op {
            ScriptOp::DoctorDosage(v) => scn
                .ledger
                .session(scn.doctor)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "dosage",
                    Value::text(format!("dose-{v}")),
                )
                .commit(),
            ScriptOp::PatientClinical(v) => scn
                .ledger
                .session(scn.patient)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "clinical_data",
                    Value::text(format!("clin-{v}")),
                )
                .commit(),
            ScriptOp::ResearcherMechanism(m, v) => {
                let med = ["Ibuprofen", "Wellbutrin"][*m as usize];
                scn.ledger
                    .session(scn.researcher)
                    .begin(SHARE_RD)
                    .update_source(
                        "D2",
                        vec![Value::text(med)],
                        vec![(
                            "mechanism_of_action".into(),
                            Value::text(format!("mech-{v}")),
                        )],
                    )
                    .commit()
            }
        };
        match result {
            Ok(_) => {}
            Err(e) if e.is_no_change() => {}
            Err(e) => panic!("unexpected failure for {op:?}: {e}"),
        }
        scn.ledger.check_consistency().expect("consistent");
    }
}

proptest! {
    // Few cases, because each runs two whole simulated deployments
    // through multiple consensus rounds; the bx-level equivalence of the
    // delta operators is separately property-tested per combinator.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn delta_and_full_table_modes_end_byte_identical(
        script in proptest::collection::vec(arb_op(), 1..4)
    ) {
        let mut delta_scn = build(PropagationMode::Delta, "mode-equiv");
        let mut full_scn = build(PropagationMode::FullTable, "mode-equiv");
        run_script(&mut delta_scn, &script);
        run_script(&mut full_scn, &script);

        // Every peer's stored copy of every shared table hashes
        // identically across modes, as does each peer's whole database
        // (sources included).
        let pairs = [
            (delta_scn.patient, full_scn.patient),
            (delta_scn.doctor, full_scn.doctor),
            (delta_scn.researcher, full_scn.researcher),
        ];
        for (d_peer, f_peer) in pairs {
            let d_reader = delta_scn.ledger.reader(d_peer);
            let f_reader = full_scn.ledger.reader(f_peer);
            for table in d_reader.shares().expect("shares") {
                let d = d_reader.read(&table).expect("read").content_hash();
                let f = f_reader.read(&table).expect("read").content_hash();
                prop_assert_eq!(d, f);
            }
            let d_fp = delta_scn.ledger.system().peer(d_peer).expect("peer").db.fingerprint();
            let f_fp = full_scn.ledger.system().peer(f_peer).expect("peer").db.fingerprint();
            prop_assert_eq!(d_fp, f_fp);
        }

        // And both match the hash the contract committed.
        for table in [SHARE_PD, SHARE_RD] {
            let d_meta = delta_scn.ledger.share_meta(table).expect("meta");
            let f_meta = full_scn.ledger.share_meta(table).expect("meta");
            prop_assert_eq!(d_meta.content_hash, f_meta.content_hash);
            prop_assert_eq!(d_meta.version, f_meta.version);
        }
    }
}
