//! E1 — the paper's Fig. 1 data distribution, reproduced exactly.
//!
//! Builds the three-peer world through the typed facade and checks every
//! table of the figure cell by cell: the full records, D1 (Patient), D2
//! (Researcher), D3 (Doctor), and the shared D13/D31 and D23/D32 pairs.

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::workload::fig1_full_records;
use medledger::{ConsensusKind, SystemConfig, Value};

fn config() -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: "fig1-int".into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn full_records_match_paper_cells() {
    let full = fig1_full_records();
    assert_eq!(full.len(), 2);
    let r = full.get(&[Value::Int(188)]).expect("row 188");
    let expect = [
        "Ibuprofen",
        "CliD1",
        "Sapporo",
        "one tablet every 4h",
        "MeA1",
        "MoA1",
    ];
    for (i, cell) in expect.iter().enumerate() {
        assert_eq!(r[i + 1], Value::text(*cell), "attr a{}", i + 1);
    }
    let r = full.get(&[Value::Int(189)]).expect("row 189");
    let expect = [
        "Wellbutrin",
        "CliD2",
        "Osaka",
        "100 mg twice daily",
        "MeA2",
        "MoA2",
    ];
    for (i, cell) in expect.iter().enumerate() {
        assert_eq!(r[i + 1], Value::text(*cell), "attr a{}", i + 1);
    }
}

#[test]
fn source_tables_match_paper() {
    let scn = scenario::build(config()).expect("build");

    // D1 (Patient): attributes a0-a4, only patient 188.
    let d1 = scn.ledger.reader(scn.patient).source("D1").expect("D1");
    assert_eq!(
        d1.schema().column_names(),
        vec![
            "patient_id",
            "medication_name",
            "clinical_data",
            "address",
            "dosage"
        ]
    );
    assert_eq!(d1.len(), 1);
    assert_eq!(
        d1.get(&[Value::Int(188)]).expect("row")[3],
        Value::text("Sapporo")
    );

    // D2 (Researcher): a1, a5, a6 keyed by medication.
    let d2 = scn.ledger.reader(scn.researcher).source("D2").expect("D2");
    assert_eq!(
        d2.schema().column_names(),
        vec!["medication_name", "mechanism_of_action", "mode_of_action"]
    );
    assert_eq!(d2.len(), 2);
    assert_eq!(
        d2.get(&[Value::text("Wellbutrin")]).expect("row")[2],
        Value::text("MoA2")
    );

    // D3 (Doctor): a0, a1, a2, a5, a4 for both patients.
    let d3 = scn.ledger.reader(scn.doctor).source("D3").expect("D3");
    assert_eq!(
        d3.schema().column_names(),
        vec![
            "patient_id",
            "medication_name",
            "clinical_data",
            "mechanism_of_action",
            "dosage"
        ]
    );
    assert_eq!(d3.len(), 2);
}

#[test]
fn shared_views_match_paper() {
    let scn = scenario::build(config()).expect("build");

    // D13 == D31: a0, a1, a2, a4 for patient 188 only.
    let d13 = scn
        .ledger
        .reader(scn.patient)
        .read(SHARE_PD)
        .expect("patient reads D13");
    let d31 = scn
        .ledger
        .reader(scn.doctor)
        .read(SHARE_PD)
        .expect("doctor reads D31");
    assert_eq!(d13.content_hash(), d31.content_hash());
    assert_eq!(
        d13.schema().column_names(),
        vec!["patient_id", "medication_name", "clinical_data", "dosage"]
    );
    assert_eq!(d13.len(), 1);
    assert_eq!(
        d13.get(&[Value::Int(188)]).expect("row")[3],
        Value::text("one tablet every 4h")
    );

    // D23 == D32: a1, a5 for both medications.
    let d23 = scn
        .ledger
        .reader(scn.researcher)
        .read(SHARE_RD)
        .expect("researcher reads D23");
    let d32 = scn
        .ledger
        .reader(scn.doctor)
        .read(SHARE_RD)
        .expect("doctor reads D32");
    assert_eq!(d23.content_hash(), d32.content_hash());
    assert_eq!(
        d23.schema().column_names(),
        vec!["medication_name", "mechanism_of_action"]
    );
    assert_eq!(d23.len(), 2);
    assert_eq!(
        d23.get(&[Value::text("Ibuprofen")]).expect("row")[1],
        Value::text("MeA1")
    );
}

#[test]
fn views_regenerate_from_sources_by_get() {
    // Every stored shared copy equals a fresh `get` from its source —
    // the lens definition of Fig. 1's arrows.
    let scn = scenario::build(config()).expect("build");
    for (peer, share) in [
        (scn.patient, SHARE_PD),
        (scn.doctor, SHARE_PD),
        (scn.researcher, SHARE_RD),
        (scn.doctor, SHARE_RD),
    ] {
        let node = scn.ledger.system().peer(peer).expect("peer");
        let regen = node.regenerate_view(share).expect("get");
        let stored = node.shared_table(share).expect("stored");
        assert_eq!(
            regen.content_hash(),
            stored.content_hash(),
            "{peer}/{share}"
        );
    }
}
