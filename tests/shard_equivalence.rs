//! Shard equivalence: sharded peer storage is observationally identical
//! to the unsharded baseline.
//!
//! Property (the ISSUE 5 acceptance criterion): for any sequence of
//! permission-valid update batches, deployments running
//! `shards_per_table ∈ {1, 2, 8}` — in **both** propagation modes — end
//! byte-identical: every peer's stored tables and database fingerprint,
//! every committed baseline hash, the contract-committed content hashes
//! (i.e. the folded per-shard Merkle subroots reproduce the unsharded
//! digest exactly), per-transaction receipts, and the on-chain audit
//! history. `check_consistency` must hold after every commit, which
//! exercises the folded-root verification on every sharded peer.

use medledger::core::scenario::{self, Fig1Scenario, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, PropagationMode, SystemConfig, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum ScriptOp {
    /// Doctor edits patient 188's dosage through the patient share.
    DoctorDosage(u8),
    /// Patient edits its clinical data through the patient share.
    PatientClinical(u8),
    /// Researcher edits a medication's mechanism in its D2 source and
    /// commits through the research share.
    ResearcherMechanism(u8, u8),
}

fn arb_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u8..200).prop_map(ScriptOp::DoctorDosage),
        (0u8..200).prop_map(ScriptOp::PatientClinical),
        (0u8..2, 0u8..200).prop_map(|(m, v)| ScriptOp::ResearcherMechanism(m, v)),
    ]
}

fn build(mode: PropagationMode, shards: usize, seed: &str) -> Fig1Scenario {
    scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: seed.into(),
        peer_key_capacity: 256,
        propagation: mode,
        shards_per_table: shards,
        ..Default::default()
    })
    .expect("build")
}

fn run_script(scn: &mut Fig1Scenario, script: &[ScriptOp]) -> Vec<String> {
    let mut receipts = Vec::new();
    for op in script {
        let result = match op {
            ScriptOp::DoctorDosage(v) => scn
                .ledger
                .session(scn.doctor)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "dosage",
                    Value::text(format!("dose-{v}")),
                )
                .commit(),
            ScriptOp::PatientClinical(v) => scn
                .ledger
                .session(scn.patient)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "clinical_data",
                    Value::text(format!("clin-{v}")),
                )
                .commit(),
            ScriptOp::ResearcherMechanism(m, v) => {
                let med = ["Ibuprofen", "Wellbutrin"][*m as usize];
                scn.ledger
                    .session(scn.researcher)
                    .begin(SHARE_RD)
                    .update_source(
                        "D2",
                        vec![Value::text(med)],
                        vec![(
                            "mechanism_of_action".into(),
                            Value::text(format!("mech-{v}")),
                        )],
                    )
                    .commit()
            }
        };
        match result {
            Ok(outcome) => {
                for r in &outcome.receipts {
                    receipts.push(format!("{:?}", r.status));
                }
            }
            Err(e) if e.is_no_change() => receipts.push("no-change".into()),
            Err(e) => panic!("unexpected failure for {op:?}: {e}"),
        }
        scn.ledger.check_consistency().expect("consistent");
    }
    receipts
}

fn audit_lines(scn: &Fig1Scenario, table: &str) -> Vec<String> {
    scn.ledger
        .audit(table)
        .iter()
        .map(|e| format!("{e:?}"))
        .collect()
}

proptest! {
    // Few cases: each runs six whole simulated deployments through
    // multiple consensus rounds. The shard/table hash equivalence is
    // separately property-tested at the relational layer.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sharded_and_unsharded_deployments_end_byte_identical(
        script in proptest::collection::vec(arb_op(), 1..4)
    ) {
        for mode in [PropagationMode::Delta, PropagationMode::FullTable] {
            let mut baseline_scn = build(mode, 1, "shard-equiv");
            let base_receipts = run_script(&mut baseline_scn, &script);

            for shards in [2usize, 8] {
                let mut sharded_scn = build(mode, shards, "shard-equiv");
                let receipts = run_script(&mut sharded_scn, &script);
                // Per-transaction receipts are identical.
                prop_assert_eq!(&receipts, &base_receipts);

                // Every peer's shared tables, baseline hashes and whole
                // database agree byte for byte.
                let pairs = [
                    (baseline_scn.patient, sharded_scn.patient),
                    (baseline_scn.doctor, sharded_scn.doctor),
                    (baseline_scn.researcher, sharded_scn.researcher),
                ];
                for (b_peer, s_peer) in pairs {
                    let b_reader = baseline_scn.ledger.reader(b_peer);
                    let s_reader = sharded_scn.ledger.reader(s_peer);
                    for table in b_reader.shares().expect("shares") {
                        let b = b_reader.read(&table).expect("read").content_hash();
                        let s = s_reader.read(&table).expect("read").content_hash();
                        prop_assert_eq!(b, s);
                        let b_node = baseline_scn.ledger.system().peer(b_peer).expect("peer");
                        let s_node = sharded_scn.ledger.system().peer(s_peer).expect("peer");
                        prop_assert_eq!(
                            b_node.committed_hash(&table).expect("hash"),
                            s_node.committed_hash(&table).expect("hash")
                        );
                        // The sharded deployment really is sharded (delta
                        // mode), and its folds back the same hashes.
                        prop_assert_eq!(
                            s_node.is_sharded(&table),
                            mode == PropagationMode::Delta && shards > 1
                        );
                    }
                    let b_fp = baseline_scn.ledger.system().peer(b_peer).expect("peer").db.fingerprint();
                    let s_fp = sharded_scn.ledger.system().peer(s_peer).expect("peer").db.fingerprint();
                    prop_assert_eq!(b_fp, s_fp);
                }

                // Contract-committed hashes/versions and the on-chain
                // audit history agree.
                for table in [SHARE_PD, SHARE_RD] {
                    let b_meta = baseline_scn.ledger.share_meta(table).expect("meta");
                    let s_meta = sharded_scn.ledger.share_meta(table).expect("meta");
                    prop_assert_eq!(b_meta.content_hash, s_meta.content_hash);
                    prop_assert_eq!(b_meta.version, s_meta.version);
                    prop_assert_eq!(
                        audit_lines(&baseline_scn, table),
                        audit_lines(&sharded_scn, table)
                    );
                }
            }
        }
    }
}
