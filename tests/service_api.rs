//! The ticketed commit pipeline against the paper's Fig. 1 scenario:
//! cascade re-entry into the next wave, parity with the blocking facade,
//! and wave-attributed blocks.

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::engine::LedgerService;
use medledger::{ConsensusKind, SystemConfig, Value};

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

/// The facade's Step-6 cascade scenario, run through the service: the
/// Doctor's medication rename on the patient share commits in wave 1;
/// the cascade into the research share is detected, re-entered, and
/// commits in wave 2 — ending in the exact state the inline (blocking)
/// facade path produces.
#[test]
fn cascade_reenters_the_next_wave() {
    // Inline reference run.
    let mut inline = scenario::build(config("svc-cascade")).expect("build");
    let (doctor_i, researcher_i) = (inline.doctor, inline.researcher);
    inline
        .ledger
        .session(researcher_i)
        .grant(SHARE_RD, "mechanism_of_action", &[doctor_i, researcher_i])
        .expect("grant");
    let inline_outcome = inline
        .ledger
        .session(doctor_i)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "medication_name",
            Value::text("Ibuprofen-XR"),
        )
        .commit()
        .expect("inline commit");
    assert_eq!(inline_outcome.cascades().len(), 1);

    // Pipelined run (same seed → same accounts → comparable state).
    let scn = scenario::build(config("svc-cascade")).expect("build");
    let (doctor, researcher, patient) = (scn.doctor, scn.researcher, scn.patient);
    let mut service = LedgerService::new(scn.ledger);
    service
        .ledger_mut()
        .session(researcher)
        .grant(SHARE_RD, "mechanism_of_action", &[doctor, researcher])
        .expect("grant");

    let ticket = service
        .submit(doctor, SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "medication_name",
            Value::text("Ibuprofen-XR"),
        )
        .submit()
        .expect("submit");

    // Wave 1: the parent commits; the cascade defers instead of running
    // inline.
    let wave1 = service.tick().expect("wave 1");
    assert_eq!(wave1.members, 1);
    assert_eq!(wave1.cascades_deferred, 1);
    let outcome = service.take(ticket).expect("resolved").expect("commits");
    assert!(
        outcome.cascades().is_empty(),
        "cascade deferred, not inline"
    );
    assert!(service.has_work(), "the cascade awaits the next wave");

    // Wave 2: the cascade itself commits as a first-class member.
    let wave2 = service.tick().expect("wave 2");
    assert_eq!(wave2.members, 1);
    assert!(!service.has_work());
    assert_eq!(service.waves(), 2);
    let cascades = service.cascades();
    assert_eq!(cascades.len(), 1);
    assert_eq!(cascades[0].origin, SHARE_PD);
    assert_eq!(cascades[0].table_id, SHARE_RD);
    assert_eq!(cascades[0].wave, 2);
    let report = cascades[0].result.as_ref().expect("cascade commits");
    assert_eq!(report.table_id, SHARE_RD);

    // The rename reached the Researcher's source, as in the inline run.
    let d2 = service
        .ledger()
        .reader(researcher)
        .source("D2")
        .expect("D2");
    assert!(d2.get(&[Value::text("Ibuprofen-XR")]).is_some());
    service.ledger().check_consistency().expect("consistent");

    // Byte-identical end state to the inline reference, peer by peer.
    for (a, b) in [
        (doctor_i, doctor),
        (patient, patient),
        (researcher_i, researcher),
    ] {
        let fp_inline = format!(
            "{:?}",
            inline
                .ledger
                .system()
                .peer(a)
                .expect("peer")
                .db
                .fingerprint()
        );
        let fp_service = format!(
            "{:?}",
            service
                .ledger()
                .system()
                .peer(b)
                .expect("peer")
                .db
                .fingerprint()
        );
        assert_eq!(fp_inline, fp_service);
    }

    // Every block of each wave is attributed to it.
    let chain = service.ledger().chain();
    let wave_tags: Vec<Option<u64>> = chain.blocks().iter().map(|b| b.header.wave).collect();
    assert!(wave_tags.contains(&Some(1)));
    assert!(wave_tags.contains(&Some(2)));
    // Setup blocks (contract deploy, share registration, grant) are
    // unattributed.
    assert!(wave_tags.iter().filter(|w| w.is_none()).count() >= 3);
}

/// A cascade whose permission stays denied is recorded as blocked (the
/// peer keeps its pending delta), mirroring the inline `failed_cascades`
/// semantics.
#[test]
fn blocked_cascade_is_recorded_and_retryable() {
    let scn = scenario::build(config("svc-blocked-cascade")).expect("build");
    let (doctor, researcher) = (scn.doctor, scn.researcher);
    let mut service = LedgerService::new(scn.ledger);

    // No grant: the research share's mechanism stays researcher-only, so
    // the doctor-side cascade of a medication rename is denied.
    let ticket = service
        .submit(doctor, SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "medication_name",
            Value::text("Ibuprofen-XR"),
        )
        .submit()
        .expect("submit");
    service.drain().expect("drain");
    service
        .take(ticket)
        .expect("resolved")
        .expect("parent commits");

    let cascades = service.cascades();
    assert_eq!(cascades.len(), 1);
    let reason = cascades[0].result.as_ref().expect_err("cascade blocked");
    assert!(
        reason.contains("permission") || reason.contains("reverted"),
        "{reason}"
    );
    // The doctor retains the pending research-share delta for a retry
    // after a grant — and the system stays consistent meanwhile.
    service.ledger().check_consistency().expect("consistent");

    // After the grant, a doctor-side retry (pending delta only — no new
    // writes are needed, the submission rides on what Step 6 stashed)
    // drains cleanly... the retry is a fresh submission with a no-op-free
    // path: grant, then re-submit the pending change via the service.
    service
        .ledger_mut()
        .session(researcher)
        .grant(SHARE_RD, "mechanism_of_action", &[doctor, researcher])
        .expect("grant");
    let retry = service
        .submit(doctor, SHARE_RD)
        .set(
            vec![Value::text("Ibuprofen-XR")],
            "mechanism_of_action",
            Value::text("MeA1"),
        )
        .submit()
        .expect("submit retry");
    service.drain().expect("drain");
    service
        .take(retry)
        .expect("resolved")
        .expect("retry commits");
    service.ledger().check_consistency().expect("consistent");
}
