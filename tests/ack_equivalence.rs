//! Ack-protocol equivalence: the aggregated threshold-ack protocol is
//! observationally identical to the legacy one-`ack_update`-per-receiver
//! protocol.
//!
//! Property (the ISSUE 7 acceptance criterion): for any sequence of
//! update batches, deployments running `aggregated_acks ∈ {true, false}`
//! — in **both** propagation modes and for `shards_per_table ∈ {1, 8}` —
//! end equivalent: every peer's stored tables and database fingerprint,
//! every contract-committed content hash and version, the success of
//! every receipt, and the per-receiver ack *attribution* in the audit
//! history (each receiver of each wave is attributed exactly once,
//! whether through its own `ack_update` transaction or through the
//! expansion of the wave's single `ack_update_aggregate`). A denied
//! update rolls back identically in both modes.

use medledger::core::scenario::{self, Fig1Scenario, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, PropagationMode, SystemConfig, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum ScriptOp {
    /// Doctor edits patient 188's dosage through the patient share.
    DoctorDosage(u8),
    /// Patient edits its clinical data through the patient share.
    PatientClinical(u8),
    /// Researcher edits a medication's mechanism in its D2 source and
    /// commits through the research share.
    ResearcherMechanism(u8, u8),
    /// Patient tries to edit dosage — denied by the Fig. 3 matrix; the
    /// staged write must roll back identically in both ack modes.
    PatientDosageDenied(u8),
}

fn arb_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u8..200).prop_map(ScriptOp::DoctorDosage),
        (0u8..200).prop_map(ScriptOp::PatientClinical),
        (0u8..2, 0u8..200).prop_map(|(m, v)| ScriptOp::ResearcherMechanism(m, v)),
        (0u8..200).prop_map(ScriptOp::PatientDosageDenied),
    ]
}

fn build(mode: PropagationMode, shards: usize, aggregated: bool, seed: &str) -> Fig1Scenario {
    scenario::build(SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 50,
        },
        seed: seed.into(),
        peer_key_capacity: 256,
        propagation: mode,
        shards_per_table: shards,
        aggregated_acks: aggregated,
        ..Default::default()
    })
    .expect("build")
}

/// Runs the script; returns one outcome line per op ("ok vN" /
/// "no-change" / "denied") so the op-level behavior can be compared
/// across ack modes without depending on per-mode transaction counts.
fn run_script(scn: &mut Fig1Scenario, script: &[ScriptOp]) -> Vec<String> {
    let mut outcomes = Vec::new();
    for op in script {
        let result = match op {
            ScriptOp::DoctorDosage(v) => scn
                .ledger
                .session(scn.doctor)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "dosage",
                    Value::text(format!("dose-{v}")),
                )
                .commit(),
            ScriptOp::PatientClinical(v) => scn
                .ledger
                .session(scn.patient)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "clinical_data",
                    Value::text(format!("clin-{v}")),
                )
                .commit(),
            ScriptOp::ResearcherMechanism(m, v) => {
                let med = ["Ibuprofen", "Wellbutrin"][*m as usize];
                scn.ledger
                    .session(scn.researcher)
                    .begin(SHARE_RD)
                    .update_source(
                        "D2",
                        vec![Value::text(med)],
                        vec![(
                            "mechanism_of_action".into(),
                            Value::text(format!("mech-{v}")),
                        )],
                    )
                    .commit()
            }
            ScriptOp::PatientDosageDenied(v) => scn
                .ledger
                .session(scn.patient)
                .begin(SHARE_PD)
                .set(
                    vec![Value::Int(188)],
                    "dosage",
                    Value::text(format!("sneaky-{v}")),
                )
                .commit(),
        };
        match result {
            Ok(outcome) => {
                assert!(outcome.receipts.iter().all(|r| r.status.is_success()));
                outcomes.push(format!("ok v{}", outcome.version()));
            }
            Err(e) if e.is_no_change() => outcomes.push("no-change".into()),
            Err(e) if e.is_permission_denied() => {
                assert!(
                    matches!(op, ScriptOp::PatientDosageDenied(_)),
                    "unexpected denial for {op:?}: {e}"
                );
                outcomes.push("denied".into());
            }
            Err(e) => panic!("unexpected failure for {op:?}: {e}"),
        }
        scn.ledger.check_consistency().expect("consistent");
    }
    outcomes
}

/// The per-receiver ack attribution of a table's audit history: one
/// `(position, sender)` per attributed receiver ack, in chain order.
///
/// Legacy mode attributes receivers through their own `ack_update`
/// transactions; aggregated mode through the expansion of the wave's
/// single `ack_update_aggregate` (whose *first* entry is the submitting
/// updater, skipped here — it is bookkeeping, not a receiver ack).
fn ack_attributions(scn: &Fig1Scenario, table: &str) -> Vec<BTreeSet<String>> {
    let mut waves: Vec<BTreeSet<String>> = Vec::new();
    let mut seen_aggregates = BTreeSet::new();
    for e in scn.ledger.audit(table) {
        match e.method.as_deref() {
            Some("request_update") => waves.push(BTreeSet::new()),
            Some("ack_update") => {
                waves
                    .last_mut()
                    .expect("ack before any request")
                    .insert(e.sender.0.to_hex());
            }
            Some("ack_update_aggregate") => {
                // First entry per aggregate tx is the submitter.
                if seen_aggregates.insert(e.tx_id) {
                    continue;
                }
                waves
                    .last_mut()
                    .expect("ack before any request")
                    .insert(e.sender.0.to_hex());
            }
            _ => {}
        }
    }
    waves
}

proptest! {
    // Few cases: each runs eight whole simulated deployments through
    // multiple consensus rounds. The share-verification / dissent logic
    // is separately unit-tested in the contract and core crates.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn aggregated_and_legacy_ack_waves_end_equivalent(
        script in proptest::collection::vec(arb_op(), 1..4)
    ) {
        for mode in [PropagationMode::Delta, PropagationMode::FullTable] {
            for shards in [1usize, 8] {
                let mut legacy_scn = build(mode, shards, false, "ack-equiv");
                let legacy_outcomes = run_script(&mut legacy_scn, &script);

                let mut agg_scn = build(mode, shards, true, "ack-equiv");
                let agg_outcomes = run_script(&mut agg_scn, &script);

                // Same op-level outcomes (success/denial/no-change and
                // committed versions).
                prop_assert_eq!(&agg_outcomes, &legacy_outcomes);

                // Every peer's tables and database fingerprint agree.
                let pairs = [
                    (legacy_scn.patient, agg_scn.patient),
                    (legacy_scn.doctor, agg_scn.doctor),
                    (legacy_scn.researcher, agg_scn.researcher),
                ];
                for (l_peer, a_peer) in pairs {
                    let l_reader = legacy_scn.ledger.reader(l_peer);
                    let a_reader = agg_scn.ledger.reader(a_peer);
                    for table in l_reader.shares().expect("shares") {
                        prop_assert_eq!(
                            l_reader.read(&table).expect("read").content_hash(),
                            a_reader.read(&table).expect("read").content_hash()
                        );
                    }
                    let l_fp =
                        legacy_scn.ledger.system().peer(l_peer).expect("peer").db.fingerprint();
                    let a_fp =
                        agg_scn.ledger.system().peer(a_peer).expect("peer").db.fingerprint();
                    prop_assert_eq!(l_fp, a_fp);
                }

                // Contract-committed hashes/versions agree, the barrier is
                // open in both, and every wave attributes the same
                // receiver set — via R `ack_update`s on one side, via ONE
                // expanded `ack_update_aggregate` on the other.
                for table in [SHARE_PD, SHARE_RD] {
                    let l_meta = legacy_scn.ledger.share_meta(table).expect("meta");
                    let a_meta = agg_scn.ledger.share_meta(table).expect("meta");
                    prop_assert_eq!(l_meta.content_hash, a_meta.content_hash);
                    prop_assert_eq!(l_meta.version, a_meta.version);
                    prop_assert_eq!(l_meta.synced(), a_meta.synced());
                    prop_assert_eq!(
                        ack_attributions(&legacy_scn, table),
                        ack_attributions(&agg_scn, table)
                    );
                    // The chain-cost win: per committed wave, the
                    // aggregated deployment carries exactly one ack
                    // transaction regardless of the receiver count.
                    let agg_ack_txs: BTreeSet<_> = agg_scn
                        .ledger
                        .audit(table)
                        .iter()
                        .filter(|e| e.method.as_deref() == Some("ack_update_aggregate"))
                        .map(|e| e.tx_id)
                        .collect();
                    prop_assert_eq!(agg_ack_txs.len() as u64, a_meta.version);
                }
            }
        }
    }
}
