//! The typed session-facade API: builder → sessions → transactional
//! update batches.
//!
//! Covers the three behaviors the facade promises on top of the engine:
//! a committed batch drives the whole Fig. 5 pipeline (happy path), a
//! permission-denied write rolls back locally and surfaces the reverted
//! on-chain receipt, and a Researcher→Doctor→Patient cascade stays
//! consistent after every step.

use medledger::core::scenario::{self, SHARE_PD, SHARE_RD};
use medledger::{ConsensusKind, MedLedger, PropagationMode, SystemConfig, Value};

fn config(seed: &str) -> SystemConfig {
    SystemConfig {
        consensus: ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        },
        seed: seed.into(),
        peer_key_capacity: 64,
        ..Default::default()
    }
}

#[test]
fn permission_denied_commit_reverts_via_inverse_deltas_in_full_table_mode() {
    // Regression for the delta-aware snapshot retirement: full-table
    // mode no longer snapshots whole tables for rollback — staged
    // writes return inverse deltas in both modes, and a denied commit
    // must still restore the shared copy and the source exactly.
    let mut cfg = config("facade-denied-full");
    cfg.propagation = PropagationMode::FullTable;
    let mut scn = scenario::build(cfg).expect("build");
    let before = scn
        .ledger
        .session(scn.patient)
        .read(SHARE_PD)
        .expect("read");
    let d1_before = scn.ledger.session(scn.patient).source("D1").expect("D1");

    let err = scn
        .ledger
        .session(scn.patient)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("self-medicating"),
        )
        .commit()
        .unwrap_err();
    assert!(err.is_permission_denied(), "{err}");
    assert!(err.receipt().is_some());

    let after = scn
        .ledger
        .session(scn.patient)
        .read(SHARE_PD)
        .expect("read");
    assert_eq!(before.content_hash(), after.content_hash());
    let d1_after = scn.ledger.session(scn.patient).source("D1").expect("D1");
    assert_eq!(d1_before.content_hash(), d1_after.content_hash());
    scn.ledger.check_consistency().expect("consistent");
}

#[test]
fn builder_constructs_a_working_ledger() {
    let mut ledger = MedLedger::builder()
        .seed("facade-builder")
        .pbft(100)
        .validators(4)
        .max_block_txs(64)
        .peer_key_capacity(32)
        .build()
        .expect("boots");
    let alice = ledger.add_peer("Alice").expect("add");
    assert_eq!(ledger.peer_name(alice).expect("name"), "Alice");
    assert_eq!(ledger.peer_id("Alice").expect("lookup"), alice);
    assert_eq!(ledger.peers(), vec![alice]);
    // The sharing contract is deployed at boot (one block on chain).
    assert!(ledger.chain().height() >= 1);
    assert!(ledger.remaining_keys(alice).expect("keys") > 0);
}

#[test]
fn commit_happy_path_drives_full_pipeline() {
    let mut scn = scenario::build(config("facade-happy")).expect("build");
    let outcome = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("half a tablet"),
        )
        .commit()
        .expect("commit");

    // Typed outcome: version, checked attrs, latencies, trace, receipts.
    assert_eq!(outcome.version(), 1);
    assert_eq!(outcome.changed_attrs(), ["dosage".to_string()]);
    assert!(outcome.visibility_latency_ms() > 0);
    assert!(outcome.sync_latency_ms() >= outcome.visibility_latency_ms());
    assert!(outcome.trace.steps.iter().any(|s| s.number == "3"));
    // One request + one ack, both successful, both on chain.
    assert_eq!(outcome.receipts.len(), 2);
    assert!(outcome.receipts.iter().all(|r| r.status.is_success()));

    // The patient saw the change; the whole world is consistent.
    let d13 = scn
        .ledger
        .session(scn.patient)
        .read(SHARE_PD)
        .expect("read");
    assert_eq!(
        d13.get(&[Value::Int(188)]).expect("row")[3],
        Value::text("half a tablet")
    );
    scn.ledger.check_consistency().expect("consistent");
}

#[test]
fn permission_denied_commit_reverts_locally_with_receipt() {
    let mut scn = scenario::build(config("facade-denied")).expect("build");
    let before = scn
        .ledger
        .session(scn.patient)
        .read(SHARE_PD)
        .expect("read");

    let err = scn
        .ledger
        .session(scn.patient)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("self-medicating"),
        )
        .commit()
        .unwrap_err();

    // Typed error with the reverted on-chain receipt.
    assert!(err.is_permission_denied(), "{err}");
    let receipt = err.receipt().expect("reverted receipt");
    assert!(!receipt.status.is_success());
    assert_eq!(
        receipt.status.revert_kind(),
        Some(medledger::ledger::RevertKind::PermissionDenied)
    );

    // Transactional: the patient's staged local write was rolled back —
    // the shared copy AND the source are unchanged.
    let after = scn
        .ledger
        .session(scn.patient)
        .read(SHARE_PD)
        .expect("read");
    assert_eq!(before.content_hash(), after.content_hash());
    let d1 = scn.ledger.session(scn.patient).source("D1").expect("D1");
    assert_eq!(
        d1.get(&[Value::Int(188)]).expect("row")[4],
        Value::text("one tablet every 4h")
    );
    scn.ledger.check_consistency().expect("consistent");
}

#[test]
fn researcher_doctor_patient_chain_stays_consistent() {
    // The paper's Fig. 5 narrative as a Researcher→Doctor→Patient chain:
    // the Researcher's source edit reaches the Doctor's full record
    // (steps 1–6), then the Doctor's follow-up reaches the Patient
    // (steps 7–11). Consistency must hold after every commit.
    let mut scn = scenario::build(config("facade-chain")).expect("build");
    let (patient, doctor, researcher) = (scn.patient, scn.doctor, scn.researcher);

    // Researcher → Doctor: edit the D2 source, commit through the
    // research share.
    let r_outcome = scn
        .ledger
        .session(researcher)
        .begin(SHARE_RD)
        .update_source(
            "D2",
            vec![Value::text("Ibuprofen")],
            vec![("mechanism_of_action".into(), Value::text("MeA1-v2"))],
        )
        .commit()
        .expect("researcher commit");
    assert_eq!(
        r_outcome.changed_attrs(),
        ["mechanism_of_action".to_string()]
    );
    scn.ledger
        .check_consistency()
        .expect("consistent after researcher");
    let d3 = scn.ledger.session(doctor).source("D3").expect("D3");
    assert_eq!(
        d3.get(&[Value::Int(188)]).expect("row")[3],
        Value::text("MeA1-v2")
    );

    // Doctor → Patient: the dosage follow-up (the paper's step 7).
    let d_outcome = scn
        .ledger
        .session(doctor)
        .begin(SHARE_PD)
        .set(vec![Value::Int(188)], "dosage", Value::text("two tablets"))
        .commit()
        .expect("doctor commit");
    scn.ledger
        .check_consistency()
        .expect("consistent after doctor");
    let d1 = scn.ledger.session(patient).source("D1").expect("D1");
    assert_eq!(
        d1.get(&[Value::Int(188)]).expect("row")[4],
        Value::text("two tablets")
    );
    assert!(d_outcome.receipts.iter().all(|r| r.status.is_success()));
}

#[test]
fn step6_cascade_flows_through_commit() {
    // An automatic Step-6 cascade: a Doctor-side medication rename on the
    // patient share rewrites D3, the dependency check finds the research
    // share changed, and the cascade carries the rename to the
    // Researcher — all inside one commit().
    let mut scn = scenario::build(config("facade-cascade")).expect("build");
    let (doctor, researcher) = (scn.doctor, scn.researcher);
    // A rename changes the research share's view key, so the cascade's
    // diff counts every attribute; the authority widens the mechanism
    // writer set first.
    scn.ledger
        .session(researcher)
        .grant(SHARE_RD, "mechanism_of_action", &[doctor, researcher])
        .expect("grant");

    let outcome = scn
        .ledger
        .session(doctor)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "medication_name",
            Value::text("Ibuprofen-XR"),
        )
        .commit()
        .expect("commit");

    assert_eq!(
        outcome.cascades().len(),
        1,
        "trace:\n{}",
        outcome.trace.render()
    );
    assert_eq!(outcome.cascades()[0].table_id, SHARE_RD);
    let d2 = scn.ledger.session(researcher).source("D2").expect("D2");
    assert!(d2.get(&[Value::text("Ibuprofen-XR")]).is_some());
    // Receipts cover the cascade's transactions too (2 per propagation).
    assert!(outcome.receipts.len() >= 4);
    assert!(outcome.receipts.iter().all(|r| r.status.is_success()));
    scn.ledger
        .check_consistency()
        .expect("consistent at the end");
}

#[test]
fn no_change_commit_keeps_local_edits_outside_lens_footprint() {
    // A staged source edit to a column the lens drops (D2's
    // mode_of_action is outside BX23's footprint) yields NoChange —
    // there is nothing to propagate — but the edit is a valid local
    // write and must survive, exactly as if made directly.
    let mut scn = scenario::build(config("facade-nochange")).expect("build");
    let err = scn
        .ledger
        .session(scn.researcher)
        .begin(SHARE_RD)
        .update_source(
            "D2",
            vec![Value::text("Ibuprofen")],
            vec![("mode_of_action".into(), Value::text("MoA1-local"))],
        )
        .commit()
        .unwrap_err();
    assert!(err.is_no_change(), "{err}");
    assert!(!err.committed_on_chain());
    let d2 = scn.ledger.reader(scn.researcher).source("D2").expect("D2");
    assert_eq!(
        d2.get(&[Value::text("Ibuprofen")]).expect("row")[2],
        Value::text("MoA1-local"),
        "local edit must not be rolled back by a NoChange commit"
    );
    scn.ledger.check_consistency().expect("consistent");
}

#[test]
fn sessions_list_their_shares() {
    let mut scn = scenario::build(config("facade-shares")).expect("build");
    let doctor_shares = scn.ledger.session(scn.doctor).shares().expect("shares");
    assert!(doctor_shares.contains(&SHARE_PD.to_string()));
    assert!(doctor_shares.contains(&SHARE_RD.to_string()));
    let patient_shares = scn.ledger.session(scn.patient).shares().expect("shares");
    assert_eq!(patient_shares, vec![SHARE_PD.to_string()]);
}
