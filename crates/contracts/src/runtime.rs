//! The contract runtime: deployment, execution, receipts, state roots.

use crate::sharing::SharingContract;
use crate::state::ContractState;
use crate::vm;
use medledger_crypto::{sha256_concat, Hash256};
use medledger_ledger::{AccountId, LogEntry, Receipt, SignedTransaction, TxPayload, TxStatus};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Ambient call context all replicas agree on.
#[derive(Clone, Copy, Debug)]
pub struct CallCtx {
    /// The transaction sender.
    pub sender: AccountId,
    /// The contract being executed.
    pub contract: Hash256,
    /// Height of the block being executed.
    pub block_height: u64,
    /// Timestamp of the block being executed (simulated ms).
    pub timestamp_ms: u64,
}

/// The successful result of one contract call.
#[derive(Clone, Debug)]
pub struct CallOutput {
    /// JSON return value.
    pub ret: serde_json::Value,
    /// Emitted events.
    pub logs: Vec<LogEntry>,
    /// Gas consumed.
    pub gas_used: u64,
}

/// Contract execution errors — these become transaction reverts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractError {
    /// Caller lacks permission for the operation.
    PermissionDenied(String),
    /// A referenced entity does not exist.
    NotFound(String),
    /// The entity already exists.
    AlreadyExists(String),
    /// Malformed call (bad method, bad args, invalid shapes).
    BadCall(String),
    /// The operation is blocked until pending acks drain (the paper's
    /// consistency barrier).
    StateLocked(String),
    /// MedVM execution failed.
    Vm(String),
}

impl ContractError {
    /// Maps the error onto the ledger's receipt-level classification.
    pub fn revert_kind(&self) -> medledger_ledger::RevertKind {
        use medledger_ledger::RevertKind;
        match self {
            ContractError::PermissionDenied(_) => RevertKind::PermissionDenied,
            ContractError::NotFound(_) => RevertKind::NotFound,
            ContractError::AlreadyExists(_) => RevertKind::AlreadyExists,
            ContractError::BadCall(_) => RevertKind::BadCall,
            ContractError::StateLocked(_) => RevertKind::StateLocked,
            ContractError::Vm(_) => RevertKind::VmError,
        }
    }
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::PermissionDenied(s) => write!(f, "permission denied: {s}"),
            ContractError::NotFound(s) => write!(f, "not found: {s}"),
            ContractError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            ContractError::BadCall(s) => write!(f, "bad call: {s}"),
            ContractError::StateLocked(s) => write!(f, "state locked: {s}"),
            ContractError::Vm(s) => write!(f, "vm error: {s}"),
        }
    }
}

impl std::error::Error for ContractError {}

/// A deployed contract: its code plus persistent state.
#[derive(Clone, Debug)]
struct Deployed {
    code: Vec<u8>,
    state: ContractState,
}

/// The replicated contract runtime.
///
/// Every validator holds an identical runtime; executing the same blocks
/// in order yields identical state roots (determinism is tested).
#[derive(Clone, Debug, Default)]
pub struct ContractRuntime {
    contracts: BTreeMap<Hash256, Deployed>,
    /// Default gas limit per transaction for VM execution.
    pub gas_limit: u64,
}

impl ContractRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        ContractRuntime {
            contracts: BTreeMap::new(),
            gas_limit: 1_000_000,
        }
    }

    /// Derives the deterministic id of a contract deployed by
    /// `sender` at `nonce`.
    pub fn contract_id(sender: &AccountId, nonce: u64) -> Hash256 {
        sha256_concat(&[
            b"medledger.contract.v1:",
            sender.0.as_bytes(),
            &nonce.to_be_bytes(),
        ])
    }

    /// True iff a contract with this id exists.
    pub fn has_contract(&self, id: &Hash256) -> bool {
        self.contracts.contains_key(id)
    }

    /// Read access to a contract's state.
    pub fn contract_state(&self, id: &Hash256) -> Option<&ContractState> {
        self.contracts.get(id).map(|d| &d.state)
    }

    /// Merkle-style root over all contract states (goes into block
    /// headers).
    pub fn state_root(&self) -> Hash256 {
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(self.contracts.len());
        for (id, d) in &self.contracts {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(id.as_bytes());
            buf.extend_from_slice(d.state.root().as_bytes());
            parts.push(buf);
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        sha256_concat(&refs)
    }

    /// Total bytes of on-chain contract state (E8 metric).
    pub fn storage_bytes(&self) -> usize {
        self.contracts
            .values()
            .map(|d| d.code.len() + d.state.storage_bytes())
            .sum()
    }

    /// Executes one signed transaction, returning its receipt. State
    /// changes are atomic: a revert leaves the runtime untouched.
    pub fn execute(
        &mut self,
        stx: &SignedTransaction,
        block_height: u64,
        timestamp_ms: u64,
    ) -> Receipt {
        let tx_id = stx.id();
        let result = self.execute_inner(stx, block_height, timestamp_ms);
        match result {
            Ok(out) => Receipt {
                tx_id,
                status: TxStatus::Success,
                gas_used: out.gas_used,
                logs: out.logs,
            },
            Err(e) => Receipt {
                tx_id,
                status: TxStatus::Reverted {
                    kind: e.revert_kind(),
                    reason: e.to_string(),
                },
                gas_used: 0,
                logs: vec![],
            },
        }
    }

    fn execute_inner(
        &mut self,
        stx: &SignedTransaction,
        block_height: u64,
        timestamp_ms: u64,
    ) -> Result<CallOutput, ContractError> {
        match &stx.tx.payload {
            TxPayload::Noop => Ok(CallOutput {
                ret: serde_json::Value::Null,
                logs: vec![],
                gas_used: 1,
            }),
            TxPayload::DeployContract { code, init } => {
                let id = Self::contract_id(&stx.tx.sender, stx.tx.nonce);
                if self.contracts.contains_key(&id) {
                    return Err(ContractError::AlreadyExists(format!(
                        "contract {}",
                        id.short()
                    )));
                }
                if code != SharingContract::CODE_TAG {
                    // MedVM bytecode: must decode.
                    vm::decode(code).map_err(|e| ContractError::Vm(e.to_string()))?;
                }
                self.contracts.insert(
                    id,
                    Deployed {
                        code: code.clone(),
                        state: ContractState::new(),
                    },
                );
                let _ = init;
                Ok(CallOutput {
                    ret: serde_json::json!({ "contract": id }),
                    logs: vec![LogEntry {
                        contract: id,
                        topic: "ContractDeployed".into(),
                        data: serde_json::json!({ "deployer": stx.tx.sender }).to_string(),
                    }],
                    gas_used: 32 + code.len() as u64 / 16,
                })
            }
            TxPayload::CallContract {
                contract,
                method,
                args,
            } => {
                let ctx = CallCtx {
                    sender: stx.tx.sender,
                    contract: *contract,
                    block_height,
                    timestamp_ms,
                };
                let deployed = self.contracts.get_mut(contract).ok_or_else(|| {
                    ContractError::NotFound(format!("contract {}", contract.short()))
                })?;
                // Atomicity: run against a scratch copy, commit on success.
                let mut scratch = deployed.state.clone();
                let out = if deployed.code == SharingContract::CODE_TAG {
                    SharingContract::call(&mut scratch, &ctx, method, args)?
                } else {
                    Self::call_vm(
                        &deployed.code,
                        &mut scratch,
                        &ctx,
                        method,
                        args,
                        self.gas_limit,
                    )?
                };
                deployed.state = scratch;
                Ok(out)
            }
        }
    }

    /// Read-only call: never mutates state (used for `get_meta`-style
    /// queries without spending a transaction).
    pub fn query(
        &self,
        contract: &Hash256,
        sender: AccountId,
        method: &str,
        args: &[u8],
    ) -> Result<serde_json::Value, ContractError> {
        let deployed = self
            .contracts
            .get(contract)
            .ok_or_else(|| ContractError::NotFound(format!("contract {}", contract.short())))?;
        let ctx = CallCtx {
            sender,
            contract: *contract,
            block_height: 0,
            timestamp_ms: 0,
        };
        let mut scratch = deployed.state.clone();
        let out = if deployed.code == SharingContract::CODE_TAG {
            SharingContract::call(&mut scratch, &ctx, method, args)?
        } else {
            Self::call_vm(
                &deployed.code,
                &mut scratch,
                &ctx,
                method,
                args,
                self.gas_limit,
            )?
        };
        Ok(out.ret)
    }

    fn call_vm(
        code: &[u8],
        state: &mut ContractState,
        ctx: &CallCtx,
        method: &str,
        args: &[u8],
        gas_limit: u64,
    ) -> Result<CallOutput, ContractError> {
        let program = vm::decode(code).map_err(|e| ContractError::Vm(e.to_string()))?;
        // Calling convention: arg 0 is the method id (first 8 bytes of the
        // method-name hash), the JSON args (an i64 array) follow.
        let mut call_args: Vec<i64> = vec![vm::method_id(method)];
        if !args.is_empty() {
            let user: Vec<i64> = serde_json::from_slice(args).map_err(|e| {
                ContractError::BadCall(format!("vm args must be a JSON array of integers: {e}"))
            })?;
            call_args.extend(user);
        }
        let outcome = vm::execute(&program, state, ctx, &call_args, gas_limit)
            .map_err(|e| ContractError::Vm(e.to_string()))?;
        Ok(CallOutput {
            ret: serde_json::json!(outcome.ret),
            logs: outcome.logs,
            gas_used: outcome.gas_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::RegisterShareArgs;
    use medledger_crypto::KeyPair;
    use medledger_ledger::Transaction;

    fn signed_call(
        kp: &mut KeyPair,
        nonce: u64,
        contract: Hash256,
        method: &str,
        args: &impl serde::Serialize,
    ) -> SignedTransaction {
        Transaction {
            sender: kp.public(),
            nonce,
            payload: TxPayload::CallContract {
                contract,
                method: method.into(),
                args: serde_json::to_vec(args).expect("args"),
            },
            conflict_key: None,
        }
        .sign(kp)
        .expect("sign")
    }

    fn deploy_sharing(rt: &mut ContractRuntime, kp: &mut KeyPair, nonce: u64) -> Hash256 {
        let stx = Transaction {
            sender: kp.public(),
            nonce,
            payload: TxPayload::DeployContract {
                code: SharingContract::CODE_TAG.to_vec(),
                init: vec![],
            },
            conflict_key: None,
        }
        .sign(kp)
        .expect("sign");
        let receipt = rt.execute(&stx, 1, 100);
        assert!(receipt.status.is_success(), "{:?}", receipt.status);
        ContractRuntime::contract_id(&kp.public(), nonce)
    }

    #[test]
    fn deploy_and_call_sharing_contract() {
        let mut rt = ContractRuntime::new();
        let mut doctor = KeyPair::generate("rt-doctor", 8);
        let patient = KeyPair::generate("rt-patient", 4);
        let cid = deploy_sharing(&mut rt, &mut doctor, 0);
        assert!(rt.has_contract(&cid));

        let args = RegisterShareArgs {
            table_id: "D13&D31".into(),
            peers: vec![doctor.public(), patient.public()],
            write_permission: [("dosage".to_string(), vec![doctor.public()])]
                .into_iter()
                .collect(),
            authority: doctor.public(),
            initial_hash: Hash256([1; 32]),
        };
        let stx = signed_call(&mut doctor, 1, cid, "register_share", &args);
        let receipt = rt.execute(&stx, 2, 200);
        assert!(receipt.status.is_success());
        assert_eq!(receipt.logs[0].topic, "SharedTableRegistered");
        assert!(receipt.gas_used > 0);
    }

    #[test]
    fn revert_leaves_no_state_change() {
        let mut rt = ContractRuntime::new();
        let mut doctor = KeyPair::generate("rt-doc2", 8);
        let cid = deploy_sharing(&mut rt, &mut doctor, 0);
        let root_before = rt.state_root();

        // Registration with only one peer reverts.
        let args = RegisterShareArgs {
            table_id: "bad".into(),
            peers: vec![doctor.public()],
            write_permission: [("x".to_string(), vec![doctor.public()])]
                .into_iter()
                .collect(),
            authority: doctor.public(),
            initial_hash: Hash256::ZERO,
        };
        let stx = signed_call(&mut doctor, 1, cid, "register_share", &args);
        let receipt = rt.execute(&stx, 2, 200);
        assert!(!receipt.status.is_success());
        assert!(receipt.logs.is_empty());
        assert_eq!(rt.state_root(), root_before);
    }

    #[test]
    fn call_to_missing_contract_reverts() {
        let mut rt = ContractRuntime::new();
        let mut kp = KeyPair::generate("rt-x", 4);
        let stx = signed_call(
            &mut kp,
            0,
            Hash256([9; 32]),
            "get_meta",
            &serde_json::json!({"table_id": "t"}),
        );
        let receipt = rt.execute(&stx, 1, 1);
        assert!(matches!(receipt.status, TxStatus::Reverted { .. }));
    }

    #[test]
    fn execution_is_deterministic_across_replicas() {
        let run = || {
            let mut rt = ContractRuntime::new();
            let mut doctor = KeyPair::generate("rt-det", 8);
            let patient = KeyPair::generate("rt-det-p", 4);
            let cid = deploy_sharing(&mut rt, &mut doctor, 0);
            let args = RegisterShareArgs {
                table_id: "T".into(),
                peers: vec![doctor.public(), patient.public()],
                write_permission: [("a".to_string(), vec![doctor.public()])]
                    .into_iter()
                    .collect(),
                authority: doctor.public(),
                initial_hash: Hash256([1; 32]),
            };
            let stx = signed_call(&mut doctor, 1, cid, "register_share", &args);
            rt.execute(&stx, 2, 200);
            rt.state_root()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn query_does_not_mutate() {
        let mut rt = ContractRuntime::new();
        let mut doctor = KeyPair::generate("rt-q", 8);
        let patient = KeyPair::generate("rt-q-p", 4);
        let cid = deploy_sharing(&mut rt, &mut doctor, 0);
        let args = RegisterShareArgs {
            table_id: "T".into(),
            peers: vec![doctor.public(), patient.public()],
            write_permission: [("a".to_string(), vec![doctor.public()])]
                .into_iter()
                .collect(),
            authority: doctor.public(),
            initial_hash: Hash256([1; 32]),
        };
        let stx = signed_call(&mut doctor, 1, cid, "register_share", &args);
        rt.execute(&stx, 2, 200);
        let root = rt.state_root();
        let meta = rt
            .query(
                &cid,
                doctor.public(),
                "get_meta",
                &serde_json::to_vec(&serde_json::json!({"table_id": "T"})).expect("args"),
            )
            .expect("query");
        assert_eq!(meta["table_id"], "T");
        assert_eq!(rt.state_root(), root);
    }

    #[test]
    fn deploy_rejects_malformed_vm_bytecode() {
        let mut rt = ContractRuntime::new();
        let mut kp = KeyPair::generate("rt-vm-bad", 4);
        let stx = Transaction {
            sender: kp.public(),
            nonce: 0,
            payload: TxPayload::DeployContract {
                code: vec![0xff, 0xff, 0xff],
                init: vec![],
            },
            conflict_key: None,
        }
        .sign(&mut kp)
        .expect("sign");
        let receipt = rt.execute(&stx, 1, 1);
        assert!(matches!(receipt.status, TxStatus::Reverted { .. }));
    }
}
