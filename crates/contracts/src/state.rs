//! Contract key-value state with Merkle state roots.

use medledger_crypto::{merkle::MerkleTree, Hash256};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Persistent key-value storage of one contract.
///
/// Keys and values are byte strings; the state root is a Merkle root over
/// the sorted `(key, value)` entries, so replicas can cheaply compare
/// whole contract states.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContractState {
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl ContractState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Writes a key.
    pub fn set(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Deletes a key, returning the previous value.
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.entries.remove(key)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the state is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Vec<u8>)> {
        self.entries.iter()
    }

    /// Merkle root over the sorted entries.
    pub fn root(&self) -> Hash256 {
        if self.entries.is_empty() {
            return Hash256::ZERO;
        }
        let encoded: Vec<Vec<u8>> = self
            .entries
            .iter()
            .map(|(k, v)| {
                let mut buf = Vec::with_capacity(k.len() + v.len() + 8);
                buf.extend_from_slice(&(k.len() as u64).to_be_bytes());
                buf.extend_from_slice(k);
                buf.extend_from_slice(v);
                buf
            })
            .collect();
        MerkleTree::from_data(&encoded).root()
    }

    /// Total stored bytes (keys + values) — the E8 storage metric for
    /// on-chain state.
    pub fn storage_bytes(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// Typed read: deserializes a JSON value stored under `key`.
    pub fn get_json<T: serde::de::DeserializeOwned>(&self, key: &[u8]) -> Option<T> {
        self.get(key).and_then(|v| serde_json::from_slice(v).ok())
    }

    /// Typed write: serializes `value` as JSON under `key`.
    pub fn set_json<T: Serialize>(&mut self, key: impl Into<Vec<u8>>, value: &T) {
        self.set(key, serde_json::to_vec(value).expect("serializable"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_delete() {
        let mut s = ContractState::new();
        assert!(s.is_empty());
        s.set(b"k".to_vec(), b"v".to_vec());
        assert_eq!(s.get(b"k"), Some(&b"v"[..]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.delete(b"k"), Some(b"v".to_vec()));
        assert!(s.get(b"k").is_none());
    }

    #[test]
    fn root_is_content_determined() {
        let mut a = ContractState::new();
        a.set(b"x".to_vec(), b"1".to_vec());
        a.set(b"y".to_vec(), b"2".to_vec());
        let mut b = ContractState::new();
        b.set(b"y".to_vec(), b"2".to_vec());
        b.set(b"x".to_vec(), b"1".to_vec());
        assert_eq!(a.root(), b.root());
        b.set(b"x".to_vec(), b"9".to_vec());
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(ContractState::new().root(), Hash256::ZERO);
    }

    #[test]
    fn key_value_boundary_is_unambiguous() {
        // ("ab","c") must differ from ("a","bc").
        let mut a = ContractState::new();
        a.set(b"ab".to_vec(), b"c".to_vec());
        let mut b = ContractState::new();
        b.set(b"a".to_vec(), b"bc".to_vec());
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn json_round_trip() {
        let mut s = ContractState::new();
        s.set_json(b"meta".to_vec(), &vec![1u64, 2, 3]);
        let back: Vec<u64> = s.get_json(b"meta").expect("stored");
        assert_eq!(back, vec![1, 2, 3]);
        assert!(s.get_json::<String>(b"meta").is_none());
    }

    #[test]
    fn storage_bytes_counts() {
        let mut s = ContractState::new();
        s.set(b"key".to_vec(), b"value".to_vec());
        assert_eq!(s.storage_bytes(), 8);
    }
}
