//! The sharing contract — the paper's Fig. 3 "metadata collection".
//!
//! One contract instance manages the metadata of many shared tables. Per
//! table it records exactly the columns of the paper's figure:
//!
//! | Fig. 3 column                  | field                          |
//! |--------------------------------|--------------------------------|
//! | Metadata ID                    | `table_id` (e.g. `"D13&D31"`)  |
//! | Sharing peers                  | `peers`                        |
//! | Write permission (per attr)    | `write_permission`             |
//! | Last update time               | `last_update_ms`               |
//! | Authority to change permission | `authority`                    |
//!
//! plus the machinery that turns the paper's prose rules into code:
//! `version`, the `content_hash` of the current shared data, the `updater`
//! holding the newest copy, and `pending_acks` — while non-empty, further
//! `request_update` calls on the table revert, which is the enforcement of
//! *"only when all sharing peers have had the newest shared data can they
//! execute further operations"* (Sec. III-B).

use crate::runtime::{CallCtx, CallOutput, ContractError};
use crate::state::ContractState;
use medledger_crypto::Hash256;
use medledger_ledger::{AccountId, LogEntry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-shared-table metadata (one Fig. 3 row).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedTableMeta {
    /// Metadata id, e.g. `"D13&D31"`.
    pub table_id: String,
    /// The sharing peers.
    pub peers: BTreeSet<AccountId>,
    /// Per-attribute writer sets (attribute → accounts allowed to change
    /// its values).
    pub write_permission: BTreeMap<String, BTreeSet<AccountId>>,
    /// The account allowed to change other peers' permissions.
    pub authority: AccountId,
    /// Timestamp of the most recent metadata change (block time, ms).
    pub last_update_ms: u64,
    /// Monotonic version, bumped by every committed data update.
    pub version: u64,
    /// Content hash of the current shared table data.
    pub content_hash: Hash256,
    /// The peer holding the newest data (others fetch from it).
    pub updater: Option<AccountId>,
    /// Peers that have not yet confirmed they fetched version `version`.
    pub pending_acks: BTreeSet<AccountId>,
    /// Acks recorded for the current version via aggregated attestations.
    pub ack_count: u64,
    /// Bitmap over `peers` (in iteration order, 64 peers per word) marking
    /// which peers' acks for the current version arrived aggregated.
    pub ack_bitmap: Vec<u64>,
}

impl SharedTableMeta {
    /// True iff every peer holds the newest shared data.
    pub fn synced(&self) -> bool {
        self.pending_acks.is_empty()
    }

    /// Index of `who` in the canonical peer order, if a peer.
    fn peer_index(&self, who: &AccountId) -> Option<usize> {
        self.peers.iter().position(|p| p == who)
    }

    /// Marks `who`'s ack as recorded via an aggregated attestation.
    fn mark_aggregated_ack(&mut self, who: &AccountId) {
        if let Some(idx) = self.peer_index(who) {
            let word = idx / 64;
            if self.ack_bitmap.len() <= word {
                self.ack_bitmap.resize(word + 1, 0);
            }
            self.ack_bitmap[word] |= 1u64 << (idx % 64);
            self.ack_count += 1;
        }
    }

    /// True iff `who` may write every attribute in `attrs`.
    pub fn may_write_all(&self, who: &AccountId, attrs: &[String]) -> Result<(), String> {
        for attr in attrs {
            match self.write_permission.get(attr) {
                None => return Err(format!("attribute `{attr}` is not part of shared table")),
                Some(writers) if !writers.contains(who) => {
                    return Err(format!("no write permission on attribute `{attr}`"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Arguments of `register_share`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterShareArgs {
    /// New metadata id.
    pub table_id: String,
    /// Sharing peers (must include the sender).
    pub peers: Vec<AccountId>,
    /// Per-attribute writer lists.
    pub write_permission: BTreeMap<String, Vec<AccountId>>,
    /// Permission-change authority (must be a peer).
    pub authority: AccountId,
    /// Content hash of the initial shared data.
    pub initial_hash: Hash256,
}

/// Arguments of `request_update`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestUpdateArgs {
    /// Target metadata id.
    pub table_id: String,
    /// Content hash of the updated shared data.
    pub new_hash: Hash256,
    /// Attributes whose values changed (checked against write permission).
    pub changed_attrs: Vec<String>,
}

/// Arguments of `co_request_update` — a co-author's signature on an
/// update already requested by the lead updater in the same block (the
/// write-combining path: several peers' deltas composed into one data
/// update, each peer permission-checked and receipted individually).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoRequestUpdateArgs {
    /// Target metadata id.
    pub table_id: String,
    /// The version the lead's `request_update` is expected to commit.
    pub version: u64,
    /// Attributes **this co-author** changed (checked against the
    /// co-author's write permission, not the lead's).
    pub changed_attrs: Vec<String>,
    /// Content hash of the composed shared data (must match what the lead
    /// committed).
    pub new_hash: Hash256,
}

/// Arguments of `ack_update`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AckUpdateArgs {
    /// Target metadata id.
    pub table_id: String,
    /// The version being acknowledged.
    pub version: u64,
    /// Content hash of the data the peer applied (must match).
    pub applied_hash: Hash256,
}

/// Arguments of `ack_update_aggregate` — one threshold ack transaction
/// standing in for every contributing receiver's individual `ack_update`
/// of the same `(table, version)` wave. The updater submits it after
/// verifying each receiver's one-time signature share over the canonical
/// ack message off-chain; `attestation` is the SHA-256 fold over the
/// verified shares (see `medledger_crypto::fold_attestation`), kept
/// on-chain so any auditor holding the shares can recompute it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AckAggregateArgs {
    /// Target metadata id.
    pub table_id: String,
    /// The version being acknowledged.
    pub version: u64,
    /// Content hash of the data every contributor applied (must match).
    pub applied_hash: Hash256,
    /// Contributing receivers, in canonical (sorted) order, no duplicates.
    pub contributors: Vec<AccountId>,
    /// Fold of the contributors' verified signature shares.
    pub attestation: Hash256,
}

/// Arguments of `change_permission`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChangePermissionArgs {
    /// Target metadata id.
    pub table_id: String,
    /// Attribute whose writer set changes.
    pub attr: String,
    /// The new writer set (must be a subset of the peers).
    pub writers: Vec<AccountId>,
}

/// Arguments of `get_meta`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GetMetaArgs {
    /// Target metadata id.
    pub table_id: String,
}

/// Arguments of `remove_share` (table-level delete in Fig. 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RemoveShareArgs {
    /// Target metadata id.
    pub table_id: String,
}

/// The native sharing contract: a stateless handler over [`ContractState`].
pub struct SharingContract;

const KEY_PREFIX: &[u8] = b"table:";

fn meta_key(table_id: &str) -> Vec<u8> {
    let mut k = KEY_PREFIX.to_vec();
    k.extend_from_slice(table_id.as_bytes());
    k
}

/// Base gas for any sharing-contract call; mirrors a flat intrinsic cost.
const GAS_BASE: u64 = 21;
/// Extra gas per checked/changed attribute.
const GAS_PER_ATTR: u64 = 5;

impl SharingContract {
    /// The code tag the runtime uses to recognize this native contract.
    pub const CODE_TAG: &'static [u8] = b"native:sharing";

    /// Loads a table's metadata from contract storage.
    pub fn load_meta(state: &ContractState, table_id: &str) -> Option<SharedTableMeta> {
        state.get_json(&meta_key(table_id))
    }

    /// Lists all registered metadata ids.
    pub fn table_ids(state: &ContractState) -> Vec<String> {
        state
            .iter()
            .filter_map(|(k, _)| {
                k.strip_prefix(KEY_PREFIX)
                    .map(|rest| String::from_utf8_lossy(rest).to_string())
            })
            .collect()
    }

    /// Dispatches a method call.
    pub fn call(
        state: &mut ContractState,
        ctx: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<CallOutput, ContractError> {
        match method {
            "register_share" => Self::register_share(state, ctx, parse(args)?),
            "request_update" => Self::request_update(state, ctx, parse(args)?),
            "co_request_update" => Self::co_request_update(state, ctx, parse(args)?),
            "ack_update" => Self::ack_update(state, ctx, parse(args)?),
            "ack_update_aggregate" => Self::ack_update_aggregate(state, ctx, parse(args)?),
            "change_permission" => Self::change_permission(state, ctx, parse(args)?),
            "get_meta" => Self::get_meta(state, parse(args)?),
            "remove_share" => Self::remove_share(state, ctx, parse(args)?),
            other => Err(ContractError::BadCall(format!("unknown method `{other}`"))),
        }
    }

    fn register_share(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: RegisterShareArgs,
    ) -> Result<CallOutput, ContractError> {
        if Self::load_meta(state, &args.table_id).is_some() {
            return Err(ContractError::AlreadyExists(format!(
                "shared table `{}` already registered",
                args.table_id
            )));
        }
        let peers: BTreeSet<AccountId> = args.peers.iter().copied().collect();
        if peers.len() < 2 {
            return Err(ContractError::BadCall(
                "a shared table needs at least two peers".into(),
            ));
        }
        if !peers.contains(&ctx.sender) {
            return Err(ContractError::PermissionDenied(
                "only a sharing peer can register the share".into(),
            ));
        }
        if !peers.contains(&args.authority) {
            return Err(ContractError::BadCall(
                "permission authority must be a sharing peer".into(),
            ));
        }
        if args.write_permission.is_empty() {
            return Err(ContractError::BadCall(
                "write permission table must not be empty".into(),
            ));
        }
        let mut write_permission = BTreeMap::new();
        for (attr, writers) in &args.write_permission {
            let w: BTreeSet<AccountId> = writers.iter().copied().collect();
            if !w.iter().all(|a| peers.contains(a)) {
                return Err(ContractError::BadCall(format!(
                    "writer of `{attr}` is not a sharing peer"
                )));
            }
            write_permission.insert(attr.clone(), w);
        }
        let attr_count = write_permission.len() as u64;
        let meta = SharedTableMeta {
            table_id: args.table_id.clone(),
            peers,
            write_permission,
            authority: args.authority,
            last_update_ms: ctx.timestamp_ms,
            version: 0,
            content_hash: args.initial_hash,
            updater: None,
            pending_acks: BTreeSet::new(),
            ack_count: 0,
            ack_bitmap: Vec::new(),
        };
        state.set_json(meta_key(&args.table_id), &meta);
        Ok(CallOutput {
            ret: serde_json::json!({ "registered": args.table_id }),
            logs: vec![log(
                ctx,
                "SharedTableRegistered",
                serde_json::json!({
                    "table_id": args.table_id,
                    "peers": meta.peers,
                    "authority": meta.authority,
                }),
            )],
            gas_used: GAS_BASE + GAS_PER_ATTR * attr_count,
        })
    }

    fn request_update(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: RequestUpdateArgs,
    ) -> Result<CallOutput, ContractError> {
        let mut meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if !meta.peers.contains(&ctx.sender) {
            return Err(ContractError::PermissionDenied(format!(
                "{} is not a sharing peer of `{}`",
                ctx.sender, args.table_id
            )));
        }
        // The paper's barrier: no new update until every peer fetched the
        // previous one.
        if !meta.synced() {
            return Err(ContractError::StateLocked(format!(
                "table `{}` version {} still awaits {} ack(s)",
                args.table_id,
                meta.version,
                meta.pending_acks.len()
            )));
        }
        if args.changed_attrs.is_empty() {
            return Err(ContractError::BadCall(
                "update must declare at least one changed attribute".into(),
            ));
        }
        meta.may_write_all(&ctx.sender, &args.changed_attrs)
            .map_err(ContractError::PermissionDenied)?;

        meta.version += 1;
        meta.content_hash = args.new_hash;
        meta.last_update_ms = ctx.timestamp_ms;
        meta.updater = Some(ctx.sender);
        meta.pending_acks = meta
            .peers
            .iter()
            .copied()
            .filter(|p| *p != ctx.sender)
            .collect();
        meta.ack_count = 0;
        meta.ack_bitmap.clear();
        let version = meta.version;
        let pending: Vec<AccountId> = meta.pending_acks.iter().copied().collect();
        state.set_json(meta_key(&args.table_id), &meta);
        Ok(CallOutput {
            ret: serde_json::json!({ "version": version }),
            logs: vec![log(
                ctx,
                "UpdateCommitted",
                serde_json::json!({
                    "table_id": args.table_id,
                    "version": version,
                    "new_hash": args.new_hash,
                    "changed_attrs": args.changed_attrs,
                    "updater": ctx.sender,
                    "pending": pending,
                }),
            )],
            gas_used: GAS_BASE + GAS_PER_ATTR * args.changed_attrs.len() as u64,
        })
    }

    /// A co-author's signature on a combined (write-combined) update: the
    /// lead peer's `request_update` committed the composed data hash
    /// earlier in the same block; each co-author then records — under its
    /// **own** signature and its **own** per-attribute permission — which
    /// attributes it contributed. This is what keeps the Fig. 3
    /// fine-grained permission matrix meaningful when several peers'
    /// deltas share one block: the union of changed attributes is checked
    /// across the right senders, and every co-author's receipt is
    /// individually auditable (including denials, which revert here).
    ///
    /// The permission check runs **before** the version/hash match so a
    /// denied co-author's receipt names the permission as the reason even
    /// when its delta was (correctly) excluded from the composed data.
    fn co_request_update(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: CoRequestUpdateArgs,
    ) -> Result<CallOutput, ContractError> {
        let meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if !meta.peers.contains(&ctx.sender) {
            return Err(ContractError::PermissionDenied(format!(
                "{} is not a sharing peer of `{}`",
                ctx.sender, args.table_id
            )));
        }
        if args.changed_attrs.is_empty() {
            return Err(ContractError::BadCall(
                "co-update must declare at least one changed attribute".into(),
            ));
        }
        meta.may_write_all(&ctx.sender, &args.changed_attrs)
            .map_err(ContractError::PermissionDenied)?;
        if meta.version != args.version
            || meta.content_hash != args.new_hash
            || meta.updater.is_none()
        {
            return Err(ContractError::BadCall(format!(
                "no matching in-flight update of `{}` at version {} to co-sign \
                 (table is at version {})",
                args.table_id, args.version, meta.version
            )));
        }
        // No state change: the lead's request already committed the data
        // hash and the ack barrier; this call is the co-author's
        // individually-signed, individually-permissioned attestation.
        Ok(CallOutput {
            ret: serde_json::json!({ "co_signed": args.version }),
            logs: vec![log(
                ctx,
                "CoUpdateCommitted",
                serde_json::json!({
                    "table_id": args.table_id,
                    "version": args.version,
                    "co_author": ctx.sender,
                    "changed_attrs": args.changed_attrs,
                }),
            )],
            gas_used: GAS_BASE + GAS_PER_ATTR * args.changed_attrs.len() as u64,
        })
    }

    fn ack_update(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: AckUpdateArgs,
    ) -> Result<CallOutput, ContractError> {
        let mut meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if args.version != meta.version {
            return Err(ContractError::BadCall(format!(
                "ack for version {} but table is at version {}",
                args.version, meta.version
            )));
        }
        if !meta.pending_acks.contains(&ctx.sender) {
            return Err(ContractError::BadCall(format!(
                "{} has no pending ack for `{}`",
                ctx.sender, args.table_id
            )));
        }
        if args.applied_hash != meta.content_hash {
            return Err(ContractError::BadCall(format!(
                "ack hash {} does not match committed hash {}",
                args.applied_hash.short(),
                meta.content_hash.short()
            )));
        }
        meta.pending_acks.remove(&ctx.sender);
        let synced = meta.synced();
        let version = meta.version;
        state.set_json(meta_key(&args.table_id), &meta);
        let mut logs = vec![log(
            ctx,
            "AckRecorded",
            serde_json::json!({
                "table_id": args.table_id,
                "peer": ctx.sender,
                "version": version,
            }),
        )];
        if synced {
            logs.push(log(
                ctx,
                "AllPeersSynced",
                serde_json::json!({ "table_id": args.table_id, "version": version }),
            ));
        }
        Ok(CallOutput {
            ret: serde_json::json!({ "synced": synced }),
            logs,
            gas_used: GAS_BASE,
        })
    }

    /// One aggregated threshold ack per `(table, wave)` — the O(1)
    /// replacement for R individual `ack_update` transactions. The
    /// updater (who verified every contributor's signature share over the
    /// canonical ack message) submits the fold; the contract re-checks the
    /// contributor set against `pending_acks` and clears it in one step,
    /// recording the count and a contributor bitmap so the barrier state
    /// stays fully auditable. A receiver whose share failed verification
    /// is *not* listed here — it falls back to an individual dissent
    /// `ack_update`, preserving the paper's lock/denial semantics.
    fn ack_update_aggregate(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: AckAggregateArgs,
    ) -> Result<CallOutput, ContractError> {
        let mut meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if meta.updater != Some(ctx.sender) {
            return Err(ContractError::PermissionDenied(format!(
                "only the updater may submit the aggregated ack of `{}`",
                args.table_id
            )));
        }
        if args.version != meta.version {
            return Err(ContractError::BadCall(format!(
                "aggregated ack for version {} but table is at version {}",
                args.version, meta.version
            )));
        }
        if args.applied_hash != meta.content_hash {
            return Err(ContractError::BadCall(format!(
                "aggregated ack hash {} does not match committed hash {}",
                args.applied_hash.short(),
                meta.content_hash.short()
            )));
        }
        if args.contributors.is_empty() {
            return Err(ContractError::BadCall(
                "aggregated ack needs at least one contributor".into(),
            ));
        }
        if !args.contributors.windows(2).all(|w| w[0] < w[1]) {
            return Err(ContractError::BadCall(
                "aggregated ack contributors must be sorted and unique".into(),
            ));
        }
        for c in &args.contributors {
            if !meta.pending_acks.contains(c) {
                return Err(ContractError::BadCall(format!(
                    "{c} has no pending ack for `{}`",
                    args.table_id
                )));
            }
        }
        for c in &args.contributors {
            meta.pending_acks.remove(c);
            meta.mark_aggregated_ack(c);
        }
        let synced = meta.synced();
        let version = meta.version;
        state.set_json(meta_key(&args.table_id), &meta);
        let mut logs = vec![log(
            ctx,
            "AckAggregateRecorded",
            serde_json::json!({
                "table_id": args.table_id,
                "version": version,
                "contributors": args.contributors,
                "attestation": args.attestation,
            }),
        )];
        if synced {
            logs.push(log(
                ctx,
                "AllPeersSynced",
                serde_json::json!({ "table_id": args.table_id, "version": version }),
            ));
        }
        Ok(CallOutput {
            ret: serde_json::json!({ "synced": synced, "acked": args.contributors.len() }),
            logs,
            gas_used: GAS_BASE + args.contributors.len() as u64,
        })
    }

    fn change_permission(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: ChangePermissionArgs,
    ) -> Result<CallOutput, ContractError> {
        let mut meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if ctx.sender != meta.authority {
            return Err(ContractError::PermissionDenied(format!(
                "only the authority {} may change permissions",
                meta.authority
            )));
        }
        if !meta.write_permission.contains_key(&args.attr) {
            return Err(ContractError::NotFound(format!(
                "attribute `{}` of shared table `{}`",
                args.attr, args.table_id
            )));
        }
        let writers: BTreeSet<AccountId> = args.writers.iter().copied().collect();
        if !writers.iter().all(|a| meta.peers.contains(a)) {
            return Err(ContractError::BadCall(
                "writers must be sharing peers".into(),
            ));
        }
        meta.write_permission.insert(args.attr.clone(), writers);
        meta.last_update_ms = ctx.timestamp_ms;
        state.set_json(meta_key(&args.table_id), &meta);
        Ok(CallOutput {
            ret: serde_json::json!({ "changed": args.attr }),
            logs: vec![log(
                ctx,
                "PermissionChanged",
                serde_json::json!({
                    "table_id": args.table_id,
                    "attr": args.attr,
                    "writers": args.writers,
                }),
            )],
            gas_used: GAS_BASE + GAS_PER_ATTR,
        })
    }

    /// Table-level delete (Fig. 4): the authority retires a shared table.
    /// Requires the table to be synced (no half-delivered update may be
    /// abandoned); the metadata row is removed, ending the sharing
    /// relationship, while the chain retains the full history.
    fn remove_share(
        state: &mut ContractState,
        ctx: &CallCtx,
        args: RemoveShareArgs,
    ) -> Result<CallOutput, ContractError> {
        let meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        if ctx.sender != meta.authority {
            return Err(ContractError::PermissionDenied(format!(
                "only the authority {} may remove the share",
                meta.authority
            )));
        }
        if !meta.synced() {
            return Err(ContractError::StateLocked(format!(
                "table `{}` still awaits {} ack(s)",
                args.table_id,
                meta.pending_acks.len()
            )));
        }
        state.delete(&meta_key(&args.table_id));
        Ok(CallOutput {
            ret: serde_json::json!({ "removed": args.table_id }),
            logs: vec![log(
                ctx,
                "ShareRemoved",
                serde_json::json!({ "table_id": args.table_id, "by": ctx.sender }),
            )],
            gas_used: GAS_BASE,
        })
    }

    fn get_meta(state: &ContractState, args: GetMetaArgs) -> Result<CallOutput, ContractError> {
        let meta = Self::load_meta(state, &args.table_id)
            .ok_or_else(|| ContractError::NotFound(format!("shared table `{}`", args.table_id)))?;
        Ok(CallOutput {
            ret: serde_json::to_value(&meta).expect("meta serializes"),
            logs: vec![],
            gas_used: GAS_BASE,
        })
    }
}

fn parse<T: serde::de::DeserializeOwned>(args: &[u8]) -> Result<T, ContractError> {
    serde_json::from_slice(args)
        .map_err(|e| ContractError::BadCall(format!("argument decoding failed: {e}")))
}

fn log(ctx: &CallCtx, topic: &str, data: serde_json::Value) -> LogEntry {
    LogEntry {
        contract: ctx.contract,
        topic: topic.to_string(),
        data: data.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_crypto::KeyPair;

    struct Fixture {
        state: ContractState,
        doctor: AccountId,
        patient: AccountId,
        researcher: AccountId,
    }

    fn ctx(sender: AccountId, ts: u64) -> CallCtx {
        CallCtx {
            sender,
            contract: Hash256([7; 32]),
            block_height: 1,
            timestamp_ms: ts,
        }
    }

    fn call(
        f: &mut Fixture,
        sender: AccountId,
        ts: u64,
        method: &str,
        args: &impl Serialize,
    ) -> Result<CallOutput, ContractError> {
        let encoded = serde_json::to_vec(args).expect("args");
        SharingContract::call(&mut f.state, &ctx(sender, ts), method, &encoded)
    }

    /// Registers the paper's D13&D31 share: Doctor writes everything,
    /// Patient may write only clinical_data; Doctor is the authority.
    fn fixture() -> Fixture {
        let doctor = KeyPair::generate("doctor", 2).public();
        let patient = KeyPair::generate("patient", 2).public();
        let researcher = KeyPair::generate("researcher", 2).public();
        let mut f = Fixture {
            state: ContractState::new(),
            doctor,
            patient,
            researcher,
        };
        let args = RegisterShareArgs {
            table_id: "D13&D31".into(),
            peers: vec![doctor, patient],
            write_permission: [
                ("medication_name".to_string(), vec![doctor]),
                ("dosage".to_string(), vec![doctor]),
                ("clinical_data".to_string(), vec![doctor, patient]),
            ]
            .into_iter()
            .collect(),
            authority: doctor,
            initial_hash: Hash256([1; 32]),
        };
        call(&mut f, doctor, 1000, "register_share", &args).expect("register");
        f
    }

    #[test]
    fn register_creates_fig3_row() {
        let f = fixture();
        let meta = SharingContract::load_meta(&f.state, "D13&D31").expect("meta");
        assert_eq!(meta.table_id, "D13&D31");
        assert_eq!(meta.peers.len(), 2);
        assert_eq!(meta.authority, f.doctor);
        assert_eq!(meta.version, 0);
        assert!(meta.synced());
        assert_eq!(meta.last_update_ms, 1000);
        assert_eq!(SharingContract::table_ids(&f.state), vec!["D13&D31"]);
    }

    #[test]
    fn register_rejects_duplicate_and_bad_shapes() {
        let mut f = fixture();
        let doctor = f.doctor;
        let researcher = f.researcher;
        let dup = RegisterShareArgs {
            table_id: "D13&D31".into(),
            peers: vec![f.doctor, f.patient],
            write_permission: [("x".to_string(), vec![f.doctor])].into_iter().collect(),
            authority: f.doctor,
            initial_hash: Hash256::ZERO,
        };
        assert!(matches!(
            call(&mut f, doctor, 1, "register_share", &dup).unwrap_err(),
            ContractError::AlreadyExists(_)
        ));

        let solo = RegisterShareArgs {
            table_id: "solo".into(),
            peers: vec![f.doctor],
            write_permission: [("x".to_string(), vec![f.doctor])].into_iter().collect(),
            authority: f.doctor,
            initial_hash: Hash256::ZERO,
        };
        assert!(matches!(
            call(&mut f, doctor, 1, "register_share", &solo).unwrap_err(),
            ContractError::BadCall(_)
        ));

        let outsider_auth = RegisterShareArgs {
            table_id: "t2".into(),
            peers: vec![f.doctor, f.patient],
            write_permission: [("x".to_string(), vec![f.doctor])].into_iter().collect(),
            authority: f.researcher,
            initial_hash: Hash256::ZERO,
        };
        assert!(call(&mut f, doctor, 1, "register_share", &outsider_auth).is_err());

        let outsider_reg = RegisterShareArgs {
            table_id: "t3".into(),
            peers: vec![f.doctor, f.patient],
            write_permission: [("x".to_string(), vec![f.doctor])].into_iter().collect(),
            authority: f.doctor,
            initial_hash: Hash256::ZERO,
        };
        assert!(matches!(
            call(&mut f, researcher, 1, "register_share", &outsider_reg).unwrap_err(),
            ContractError::PermissionDenied(_)
        ));
    }

    #[test]
    fn permitted_update_commits_and_sets_pending_acks() {
        let mut f = fixture();
        let doctor = f.doctor;
        let out = call(
            &mut f,
            doctor,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("update");
        assert_eq!(out.logs[0].topic, "UpdateCommitted");
        let meta = SharingContract::load_meta(&f.state, "D13&D31").expect("meta");
        assert_eq!(meta.version, 1);
        assert_eq!(meta.content_hash, Hash256([2; 32]));
        assert_eq!(meta.updater, Some(doctor));
        assert_eq!(meta.last_update_ms, 2000);
        assert!(meta.pending_acks.contains(&f.patient));
        assert!(!meta.synced());
    }

    #[test]
    fn patient_cannot_write_dosage_but_can_write_clinical_data() {
        let mut f = fixture();
        let patient = f.patient;
        let denied = call(
            &mut f,
            patient,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .unwrap_err();
        assert!(matches!(denied, ContractError::PermissionDenied(_)));

        call(
            &mut f,
            patient,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["clinical_data".into()],
            },
        )
        .expect("patient may write clinical_data");
    }

    #[test]
    fn update_with_any_unpermitted_attr_is_denied() {
        let mut f = fixture();
        let patient = f.patient;
        let err = call(
            &mut f,
            patient,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["clinical_data".into(), "dosage".into()],
            },
        )
        .unwrap_err();
        assert!(matches!(err, ContractError::PermissionDenied(_)));
    }

    #[test]
    fn non_peer_cannot_update() {
        let mut f = fixture();
        let researcher = f.researcher;
        let err = call(
            &mut f,
            researcher,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .unwrap_err();
        assert!(matches!(err, ContractError::PermissionDenied(_)));
    }

    #[test]
    fn pending_acks_block_further_updates_until_synced() {
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        call(
            &mut f,
            doctor,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("first update");
        // Second update blocked — the paper's barrier.
        let err = call(
            &mut f,
            doctor,
            3000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([3; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .unwrap_err();
        assert!(matches!(err, ContractError::StateLocked(_)));

        // Patient acks with the right hash → synced → updates flow again.
        let out = call(
            &mut f,
            patient,
            3500,
            "ack_update",
            &AckUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
            },
        )
        .expect("ack");
        assert!(out.logs.iter().any(|l| l.topic == "AllPeersSynced"));
        call(
            &mut f,
            doctor,
            4000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([3; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("second update after sync");
    }

    #[test]
    fn ack_requires_matching_version_and_hash() {
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        call(
            &mut f,
            doctor,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("update");
        assert!(call(
            &mut f,
            patient,
            2500,
            "ack_update",
            &AckUpdateArgs {
                table_id: "D13&D31".into(),
                version: 9,
                applied_hash: Hash256([2; 32]),
            },
        )
        .is_err());
        assert!(call(
            &mut f,
            patient,
            2500,
            "ack_update",
            &AckUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                applied_hash: Hash256([9; 32]),
            },
        )
        .is_err());
        // The updater itself has no pending ack.
        assert!(call(
            &mut f,
            doctor,
            2500,
            "ack_update",
            &AckUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
            },
        )
        .is_err());
    }

    /// A 3-peer share so aggregated acks have a real contributor set.
    fn trio_fixture() -> Fixture {
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        let researcher = f.researcher;
        let args = RegisterShareArgs {
            table_id: "TRIO".into(),
            peers: vec![doctor, patient, researcher],
            write_permission: [("clinical_data".to_string(), vec![doctor])]
                .into_iter()
                .collect(),
            authority: doctor,
            initial_hash: Hash256([1; 32]),
        };
        call(&mut f, doctor, 1000, "register_share", &args).expect("register trio");
        call(
            &mut f,
            doctor,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "TRIO".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["clinical_data".into()],
            },
        )
        .expect("trio update");
        f
    }

    fn sorted_pair(a: AccountId, b: AccountId) -> Vec<AccountId> {
        let mut v = vec![a, b];
        v.sort();
        v
    }

    #[test]
    fn aggregated_ack_clears_all_contributors_in_one_call() {
        let mut f = trio_fixture();
        let doctor = f.doctor;
        let contributors = sorted_pair(f.patient, f.researcher);
        let out = call(
            &mut f,
            doctor,
            3000,
            "ack_update_aggregate",
            &AckAggregateArgs {
                table_id: "TRIO".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
                contributors,
                attestation: Hash256([9; 32]),
            },
        )
        .expect("aggregate");
        assert_eq!(out.logs[0].topic, "AckAggregateRecorded");
        assert!(out.logs.iter().any(|l| l.topic == "AllPeersSynced"));
        let meta = SharingContract::load_meta(&f.state, "TRIO").expect("meta");
        assert!(meta.synced());
        assert_eq!(meta.ack_count, 2);
        // Two bits set in the bitmap, at the contributors' peer indices.
        let set_bits: u32 = meta.ack_bitmap.iter().map(|w| w.count_ones()).sum();
        assert_eq!(set_bits, 2);
        // The barrier reopens.
        call(
            &mut f,
            doctor,
            4000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "TRIO".into(),
                new_hash: Hash256([3; 32]),
                changed_attrs: vec!["clinical_data".into()],
            },
        )
        .expect("next update after aggregated sync");
        // ...and the new version starts with a clean aggregate state.
        let meta = SharingContract::load_meta(&f.state, "TRIO").expect("meta");
        assert_eq!(meta.ack_count, 0);
        assert!(meta.ack_bitmap.iter().all(|w| *w == 0));
    }

    #[test]
    fn partial_aggregate_keeps_barrier_until_dissenter_acks() {
        let mut f = trio_fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        let researcher = f.researcher;
        // Only the patient's share verified; the researcher dissents.
        let out = call(
            &mut f,
            doctor,
            3000,
            "ack_update_aggregate",
            &AckAggregateArgs {
                table_id: "TRIO".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
                contributors: vec![patient],
                attestation: Hash256([9; 32]),
            },
        )
        .expect("partial aggregate");
        assert!(!out.logs.iter().any(|l| l.topic == "AllPeersSynced"));
        let meta = SharingContract::load_meta(&f.state, "TRIO").expect("meta");
        assert!(!meta.synced());
        assert!(meta.pending_acks.contains(&researcher));
        assert_eq!(meta.ack_count, 1);
        // A further update is still locked — the paper's barrier holds.
        assert!(matches!(
            call(
                &mut f,
                doctor,
                3500,
                "request_update",
                &RequestUpdateArgs {
                    table_id: "TRIO".into(),
                    new_hash: Hash256([3; 32]),
                    changed_attrs: vec!["clinical_data".into()],
                },
            )
            .unwrap_err(),
            ContractError::StateLocked(_)
        ));
        // The dissenter's individual ack still works and completes the sync.
        let out = call(
            &mut f,
            researcher,
            4000,
            "ack_update",
            &AckUpdateArgs {
                table_id: "TRIO".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
            },
        )
        .expect("individual dissent-path ack");
        assert!(out.logs.iter().any(|l| l.topic == "AllPeersSynced"));
    }

    #[test]
    fn aggregated_ack_validation_rejections() {
        let mut f = trio_fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        let researcher = f.researcher;
        let good = |contributors: Vec<AccountId>| AckAggregateArgs {
            table_id: "TRIO".into(),
            version: 1,
            applied_hash: Hash256([2; 32]),
            contributors,
            attestation: Hash256([9; 32]),
        };
        // Only the updater may submit the aggregate.
        assert!(matches!(
            call(
                &mut f,
                patient,
                3000,
                "ack_update_aggregate",
                &good(vec![researcher])
            )
            .unwrap_err(),
            ContractError::PermissionDenied(_)
        ));
        // Wrong version / wrong hash.
        let mut wrong_version = good(vec![patient]);
        wrong_version.version = 9;
        assert!(call(&mut f, doctor, 3000, "ack_update_aggregate", &wrong_version).is_err());
        let mut wrong_hash = good(vec![patient]);
        wrong_hash.applied_hash = Hash256([7; 32]);
        assert!(call(&mut f, doctor, 3000, "ack_update_aggregate", &wrong_hash).is_err());
        // Empty, duplicated, unsorted or non-pending contributors.
        assert!(call(&mut f, doctor, 3000, "ack_update_aggregate", &good(vec![])).is_err());
        assert!(call(
            &mut f,
            doctor,
            3000,
            "ack_update_aggregate",
            &good(vec![patient, patient])
        )
        .is_err());
        let mut unsorted = sorted_pair(patient, researcher);
        unsorted.reverse();
        assert!(call(
            &mut f,
            doctor,
            3000,
            "ack_update_aggregate",
            &good(unsorted)
        )
        .is_err());
        // The updater itself has no pending ack, so listing it fails.
        assert!(call(
            &mut f,
            doctor,
            3000,
            "ack_update_aggregate",
            &good(vec![doctor])
        )
        .is_err());
        // And a rejected aggregate left the barrier untouched.
        let meta = SharingContract::load_meta(&f.state, "TRIO").expect("meta");
        assert_eq!(meta.pending_acks.len(), 2);
        assert_eq!(meta.ack_count, 0);
    }

    #[test]
    fn co_request_checks_own_permission_and_in_flight_match() {
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        let researcher = f.researcher;
        // No in-flight update yet: a co-request by a permitted writer
        // fails on the version match, not on permission.
        let premature = call(
            &mut f,
            patient,
            1500,
            "co_request_update",
            &CoRequestUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                changed_attrs: vec!["clinical_data".into()],
                new_hash: Hash256([2; 32]),
            },
        )
        .unwrap_err();
        assert!(matches!(premature, ContractError::BadCall(_)));

        // Lead commits the composed update...
        call(
            &mut f,
            doctor,
            2000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("lead update");
        // ...and the patient co-signs its own clinical_data contribution.
        let out = call(
            &mut f,
            patient,
            2000,
            "co_request_update",
            &CoRequestUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                changed_attrs: vec!["clinical_data".into()],
                new_hash: Hash256([2; 32]),
            },
        )
        .expect("co-sign");
        assert_eq!(out.logs[0].topic, "CoUpdateCommitted");
        // The barrier is untouched: the patient still owes its ack.
        let meta = SharingContract::load_meta(&f.state, "D13&D31").expect("meta");
        assert!(meta.pending_acks.contains(&patient));

        // A co-author without permission on its attrs is denied — the
        // permission reason wins even though the hash would not match
        // either (the denied delta was excluded from the composition).
        let denied = call(
            &mut f,
            patient,
            2000,
            "co_request_update",
            &CoRequestUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                changed_attrs: vec!["dosage".into()],
                new_hash: Hash256([9; 32]),
            },
        )
        .unwrap_err();
        assert!(matches!(denied, ContractError::PermissionDenied(_)));

        // Outsiders and hash mismatches are rejected.
        assert!(matches!(
            call(
                &mut f,
                researcher,
                2000,
                "co_request_update",
                &CoRequestUpdateArgs {
                    table_id: "D13&D31".into(),
                    version: 1,
                    changed_attrs: vec!["clinical_data".into()],
                    new_hash: Hash256([2; 32]),
                },
            )
            .unwrap_err(),
            ContractError::PermissionDenied(_)
        ));
        assert!(matches!(
            call(
                &mut f,
                patient,
                2000,
                "co_request_update",
                &CoRequestUpdateArgs {
                    table_id: "D13&D31".into(),
                    version: 1,
                    changed_attrs: vec!["clinical_data".into()],
                    new_hash: Hash256([9; 32]),
                },
            )
            .unwrap_err(),
            ContractError::BadCall(_)
        ));
    }

    #[test]
    fn authority_grants_patient_dosage_write() {
        // The paper's example: Doctor changes "Dosage" writers from
        // {Doctor} to {Doctor, Patient}.
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        call(
            &mut f,
            doctor,
            5000,
            "change_permission",
            &ChangePermissionArgs {
                table_id: "D13&D31".into(),
                attr: "dosage".into(),
                writers: vec![doctor, patient],
            },
        )
        .expect("grant");
        let meta = SharingContract::load_meta(&f.state, "D13&D31").expect("meta");
        assert!(meta.write_permission["dosage"].contains(&patient));
        assert_eq!(meta.last_update_ms, 5000);

        // Now the patient can update dosage.
        call(
            &mut f,
            patient,
            6000,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([4; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("patient dosage update after grant");
    }

    #[test]
    fn only_authority_changes_permissions() {
        let mut f = fixture();
        let patient = f.patient;
        let doctor = f.doctor;
        let err = call(
            &mut f,
            patient,
            5000,
            "change_permission",
            &ChangePermissionArgs {
                table_id: "D13&D31".into(),
                attr: "dosage".into(),
                writers: vec![patient],
            },
        )
        .unwrap_err();
        assert!(matches!(err, ContractError::PermissionDenied(_)));
        // Unknown attribute and non-peer writers also rejected.
        assert!(call(
            &mut f,
            doctor,
            5000,
            "change_permission",
            &ChangePermissionArgs {
                table_id: "D13&D31".into(),
                attr: "nope".into(),
                writers: vec![doctor],
            },
        )
        .is_err());
        let researcher = f.researcher;
        assert!(call(
            &mut f,
            doctor,
            5000,
            "change_permission",
            &ChangePermissionArgs {
                table_id: "D13&D31".into(),
                attr: "dosage".into(),
                writers: vec![researcher],
            },
        )
        .is_err());
    }

    #[test]
    fn get_meta_returns_fig3_data() {
        let mut f = fixture();
        let doctor = f.doctor;
        let out = call(
            &mut f,
            doctor,
            1,
            "get_meta",
            &GetMetaArgs {
                table_id: "D13&D31".into(),
            },
        )
        .expect("get_meta");
        let meta: SharedTableMeta = serde_json::from_value(out.ret).expect("meta");
        assert_eq!(meta.table_id, "D13&D31");
        assert!(call(
            &mut f,
            doctor,
            1,
            "get_meta",
            &GetMetaArgs {
                table_id: "missing".into()
            },
        )
        .is_err());
    }

    #[test]
    fn remove_share_by_authority_when_synced() {
        let mut f = fixture();
        let doctor = f.doctor;
        let patient = f.patient;
        // Non-authority denied.
        assert!(matches!(
            call(
                &mut f,
                patient,
                1,
                "remove_share",
                &RemoveShareArgs {
                    table_id: "D13&D31".into()
                }
            )
            .unwrap_err(),
            ContractError::PermissionDenied(_)
        ));
        // Locked while acks pending.
        call(
            &mut f,
            doctor,
            2,
            "request_update",
            &RequestUpdateArgs {
                table_id: "D13&D31".into(),
                new_hash: Hash256([2; 32]),
                changed_attrs: vec!["dosage".into()],
            },
        )
        .expect("update");
        assert!(matches!(
            call(
                &mut f,
                doctor,
                3,
                "remove_share",
                &RemoveShareArgs {
                    table_id: "D13&D31".into()
                }
            )
            .unwrap_err(),
            ContractError::StateLocked(_)
        ));
        call(
            &mut f,
            patient,
            4,
            "ack_update",
            &AckUpdateArgs {
                table_id: "D13&D31".into(),
                version: 1,
                applied_hash: Hash256([2; 32]),
            },
        )
        .expect("ack");
        // Now the authority can retire the share.
        let out = call(
            &mut f,
            doctor,
            5,
            "remove_share",
            &RemoveShareArgs {
                table_id: "D13&D31".into(),
            },
        )
        .expect("remove");
        assert_eq!(out.logs[0].topic, "ShareRemoved");
        assert!(SharingContract::load_meta(&f.state, "D13&D31").is_none());
        assert!(SharingContract::table_ids(&f.state).is_empty());
        // Removing twice fails.
        assert!(matches!(
            call(
                &mut f,
                doctor,
                6,
                "remove_share",
                &RemoveShareArgs {
                    table_id: "D13&D31".into()
                }
            )
            .unwrap_err(),
            ContractError::NotFound(_)
        ));
    }

    #[test]
    fn unknown_method_rejected() {
        let mut f = fixture();
        let doctor = f.doctor;
        let err =
            SharingContract::call(&mut f.state, &ctx(doctor, 1), "mint_money", b"{}").unwrap_err();
        assert!(matches!(err, ContractError::BadCall(_)));
    }
}
