//! MedVM: a gas-metered stack virtual machine with persistent storage.
//!
//! MedVM stands in for the paper's EVM: user-deployable bytecode with
//! deterministic execution, per-opcode gas accounting, contract storage
//! and event logs. It is deliberately small — 64-bit integer words, a
//! single storage map — but exercises the same architectural surface:
//! deploy, call, meter, revert.
//!
//! ## Calling convention
//!
//! The runtime passes `args[0] = method_id(method_name)` followed by the
//! caller-supplied integers, so one program can dispatch multiple methods
//! (see [`method_id`]). `RET` returns the top of stack; `REVERT` aborts
//! with a code and discards all state changes.
//!
//! ## Example (assembled with [`asm`])
//!
//! ```text
//! ; increment a counter stored at key 0 and return it
//! PUSH 0
//! SLOAD        ; stack: old
//! PUSH 1
//! ADD          ; stack: old+1
//! DUP 0        ; stack: old+1, old+1
//! PUSH 0
//! SSTORE       ; store key 0 := old+1
//! RET
//! ```

use crate::runtime::CallCtx;
use crate::state::ContractState;
use medledger_crypto::sha256;
use medledger_ledger::LogEntry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One MedVM instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Push a constant.
    Push(i64),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the value `n` slots below the top (0 = top).
    Dup(u8),
    /// Swap the top with the value `n+1` slots below it.
    Swap(u8),
    /// Pop b, a; push a + b (wrapping).
    Add,
    /// Pop b, a; push a - b (wrapping).
    Sub,
    /// Pop b, a; push a * b (wrapping).
    Mul,
    /// Pop b, a; push a / b; division by zero is a trap.
    Div,
    /// Pop b, a; push a % b; modulo by zero is a trap.
    Mod,
    /// Pop b, a; push 1 if a == b else 0.
    Eq,
    /// Pop b, a; push 1 if a < b else 0.
    Lt,
    /// Pop b, a; push 1 if a > b else 0.
    Gt,
    /// Pop a; push 1 if a == 0 else 0.
    Not,
    /// Pop b, a; push 1 if both nonzero else 0.
    And,
    /// Pop b, a; push 1 if either nonzero else 0.
    Or,
    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Pop a; jump if a != 0.
    Jmpi(u32),
    /// Pop key; push `storage[key]` (0 if unset).
    SLoad,
    /// Pop key, value; `storage[key] := value`.
    SStore,
    /// Push the caller's account id prefix (low 64 bits).
    Caller,
    /// Push call argument `n` (trap if absent).
    Arg(u8),
    /// Push the block timestamp (ms).
    Time,
    /// Push the block height.
    Height,
    /// Pop value, topic; emit a log entry.
    Log,
    /// Pop and return the top of stack.
    Ret,
    /// Pop a revert code and abort, discarding state changes.
    Revert,
    /// Stop with return value 0.
    Halt,
}

/// VM execution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Stack underflow.
    StackUnderflow,
    /// Stack grew beyond the fixed bound.
    StackOverflow,
    /// Division or modulo by zero.
    DivByZero,
    /// Jump target outside the program.
    BadJump(u32),
    /// Argument index out of range.
    BadArg(u8),
    /// Dup/Swap depth beyond stack.
    BadDepth(u8),
    /// Gas limit exhausted.
    OutOfGas,
    /// Program executed `REVERT` with this code.
    Reverted(i64),
    /// Program ran off the end without RET/HALT.
    MissingReturn,
    /// Bytecode could not be decoded.
    BadBytecode(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::DivByZero => write!(f, "division by zero"),
            VmError::BadJump(t) => write!(f, "jump to invalid target {t}"),
            VmError::BadArg(i) => write!(f, "argument {i} not provided"),
            VmError::BadDepth(d) => write!(f, "dup/swap depth {d} exceeds stack"),
            VmError::OutOfGas => write!(f, "out of gas"),
            VmError::Reverted(c) => write!(f, "reverted with code {c}"),
            VmError::MissingReturn => write!(f, "program ended without RET/HALT"),
            VmError::BadBytecode(s) => write!(f, "bad bytecode: {s}"),
        }
    }
}

impl std::error::Error for VmError {}

const MAX_STACK: usize = 1024;

/// Result of a successful execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The returned value.
    pub ret: i64,
    /// Gas consumed.
    pub gas_used: u64,
    /// Emitted logs.
    pub logs: Vec<LogEntry>,
}

/// First 8 bytes of `sha256(name)` as a non-negative i64 — the method
/// dispatch id pushed as `ARG 0`.
pub fn method_id(name: &str) -> i64 {
    (sha256(name.as_bytes()).prefix_u64() >> 1) as i64
}

fn gas_cost(op: &Op) -> u64 {
    match op {
        Op::SStore => 20,
        Op::SLoad => 5,
        Op::Log => 8,
        _ => 1,
    }
}

fn storage_key(key: i64) -> Vec<u8> {
    let mut k = b"vm:".to_vec();
    k.extend_from_slice(&key.to_be_bytes());
    k
}

/// Executes a program against contract storage.
pub fn execute(
    program: &[Op],
    state: &mut ContractState,
    ctx: &CallCtx,
    args: &[i64],
    gas_limit: u64,
) -> Result<Outcome, VmError> {
    let mut stack: Vec<i64> = Vec::with_capacity(32);
    let mut logs = Vec::new();
    let mut gas_used: u64 = 0;
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }
    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= MAX_STACK {
                return Err(VmError::StackOverflow);
            }
            stack.push($v);
        }};
    }

    while pc < program.len() {
        let op = &program[pc];
        gas_used += gas_cost(op);
        if gas_used > gas_limit {
            return Err(VmError::OutOfGas);
        }
        pc += 1;
        match op {
            Op::Push(v) => push!(*v),
            Op::Pop => {
                pop!();
            }
            Op::Dup(n) => {
                let idx = stack
                    .len()
                    .checked_sub(1 + *n as usize)
                    .ok_or(VmError::BadDepth(*n))?;
                let v = stack[idx];
                push!(v);
            }
            Op::Swap(n) => {
                let top = stack.len().checked_sub(1).ok_or(VmError::StackUnderflow)?;
                let idx = stack
                    .len()
                    .checked_sub(2 + *n as usize)
                    .ok_or(VmError::BadDepth(*n))?;
                stack.swap(top, idx);
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_add(b));
            }
            Op::Sub => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_sub(b));
            }
            Op::Mul => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_mul(b));
            }
            Op::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivByZero);
                }
                push!(a.wrapping_div(b));
            }
            Op::Mod => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivByZero);
                }
                push!(a.wrapping_rem(b));
            }
            Op::Eq => {
                let b = pop!();
                let a = pop!();
                push!((a == b) as i64);
            }
            Op::Lt => {
                let b = pop!();
                let a = pop!();
                push!((a < b) as i64);
            }
            Op::Gt => {
                let b = pop!();
                let a = pop!();
                push!((a > b) as i64);
            }
            Op::Not => {
                let a = pop!();
                push!((a == 0) as i64);
            }
            Op::And => {
                let b = pop!();
                let a = pop!();
                push!((a != 0 && b != 0) as i64);
            }
            Op::Or => {
                let b = pop!();
                let a = pop!();
                push!((a != 0 || b != 0) as i64);
            }
            Op::Jmp(t) => {
                if *t as usize >= program.len() {
                    return Err(VmError::BadJump(*t));
                }
                pc = *t as usize;
            }
            Op::Jmpi(t) => {
                let c = pop!();
                if c != 0 {
                    if *t as usize >= program.len() {
                        return Err(VmError::BadJump(*t));
                    }
                    pc = *t as usize;
                }
            }
            Op::SLoad => {
                let key = pop!();
                let v = state
                    .get(&storage_key(key))
                    .and_then(|b| b.try_into().ok().map(i64::from_be_bytes))
                    .unwrap_or(0);
                push!(v);
            }
            Op::SStore => {
                let key = pop!();
                let value = pop!();
                state.set(storage_key(key), value.to_be_bytes().to_vec());
            }
            Op::Caller => push!((ctx.sender.0.prefix_u64() >> 1) as i64),
            Op::Arg(i) => {
                let v = *args.get(*i as usize).ok_or(VmError::BadArg(*i))?;
                push!(v);
            }
            Op::Time => push!(ctx.timestamp_ms as i64),
            Op::Height => push!(ctx.block_height as i64),
            Op::Log => {
                let value = pop!();
                let topic = pop!();
                logs.push(LogEntry {
                    contract: ctx.contract,
                    topic: format!("vm:{topic}"),
                    data: serde_json::json!({ "value": value }).to_string(),
                });
            }
            Op::Ret => {
                let ret = pop!();
                return Ok(Outcome {
                    ret,
                    gas_used,
                    logs,
                });
            }
            Op::Revert => {
                let code = pop!();
                return Err(VmError::Reverted(code));
            }
            Op::Halt => {
                return Ok(Outcome {
                    ret: 0,
                    gas_used,
                    logs,
                })
            }
        }
    }
    Err(VmError::MissingReturn)
}

// ---------------------------------------------------------------------
// Bytecode encoding
// ---------------------------------------------------------------------

/// Encodes a program as bytecode (1 opcode byte + optional operand).
pub fn encode(program: &[Op]) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * 2);
    for op in program {
        match op {
            Op::Push(v) => {
                out.push(0x01);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Op::Pop => out.push(0x02),
            Op::Dup(n) => {
                out.push(0x03);
                out.push(*n);
            }
            Op::Swap(n) => {
                out.push(0x04);
                out.push(*n);
            }
            Op::Add => out.push(0x10),
            Op::Sub => out.push(0x11),
            Op::Mul => out.push(0x12),
            Op::Div => out.push(0x13),
            Op::Mod => out.push(0x14),
            Op::Eq => out.push(0x20),
            Op::Lt => out.push(0x21),
            Op::Gt => out.push(0x22),
            Op::Not => out.push(0x23),
            Op::And => out.push(0x24),
            Op::Or => out.push(0x25),
            Op::Jmp(t) => {
                out.push(0x30);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::Jmpi(t) => {
                out.push(0x31);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::SLoad => out.push(0x40),
            Op::SStore => out.push(0x41),
            Op::Caller => out.push(0x50),
            Op::Arg(n) => {
                out.push(0x51);
                out.push(*n);
            }
            Op::Time => out.push(0x52),
            Op::Height => out.push(0x53),
            Op::Log => out.push(0x60),
            Op::Ret => out.push(0x70),
            Op::Revert => out.push(0x71),
            Op::Halt => out.push(0x72),
        }
    }
    out
}

/// Decodes bytecode into a program.
pub fn decode(bytes: &[u8]) -> Result<Vec<Op>, VmError> {
    let mut out = Vec::new();
    let mut i = 0;
    let take_i64 = |bytes: &[u8], i: &mut usize| -> Result<i64, VmError> {
        let end = *i + 8;
        if end > bytes.len() {
            return Err(VmError::BadBytecode("truncated i64 operand".into()));
        }
        let v = i64::from_be_bytes(bytes[*i..end].try_into().expect("8 bytes"));
        *i = end;
        Ok(v)
    };
    let take_u32 = |bytes: &[u8], i: &mut usize| -> Result<u32, VmError> {
        let end = *i + 4;
        if end > bytes.len() {
            return Err(VmError::BadBytecode("truncated u32 operand".into()));
        }
        let v = u32::from_be_bytes(bytes[*i..end].try_into().expect("4 bytes"));
        *i = end;
        Ok(v)
    };
    let take_u8 = |bytes: &[u8], i: &mut usize| -> Result<u8, VmError> {
        if *i >= bytes.len() {
            return Err(VmError::BadBytecode("truncated u8 operand".into()));
        }
        let v = bytes[*i];
        *i += 1;
        Ok(v)
    };
    while i < bytes.len() {
        let opcode = bytes[i];
        i += 1;
        let op = match opcode {
            0x01 => Op::Push(take_i64(bytes, &mut i)?),
            0x02 => Op::Pop,
            0x03 => Op::Dup(take_u8(bytes, &mut i)?),
            0x04 => Op::Swap(take_u8(bytes, &mut i)?),
            0x10 => Op::Add,
            0x11 => Op::Sub,
            0x12 => Op::Mul,
            0x13 => Op::Div,
            0x14 => Op::Mod,
            0x20 => Op::Eq,
            0x21 => Op::Lt,
            0x22 => Op::Gt,
            0x23 => Op::Not,
            0x24 => Op::And,
            0x25 => Op::Or,
            0x30 => Op::Jmp(take_u32(bytes, &mut i)?),
            0x31 => Op::Jmpi(take_u32(bytes, &mut i)?),
            0x40 => Op::SLoad,
            0x41 => Op::SStore,
            0x50 => Op::Caller,
            0x51 => Op::Arg(take_u8(bytes, &mut i)?),
            0x52 => Op::Time,
            0x53 => Op::Height,
            0x60 => Op::Log,
            0x70 => Op::Ret,
            0x71 => Op::Revert,
            0x72 => Op::Halt,
            other => {
                return Err(VmError::BadBytecode(format!(
                    "unknown opcode 0x{other:02x}"
                )))
            }
        };
        out.push(op);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------

/// A tiny two-pass assembler for MedVM programs.
///
/// Syntax: one instruction per line, `;` comments, `label:` definitions,
/// labels usable as JMP/JMPI targets.
pub mod asm {
    use super::{Op, VmError};
    use std::collections::HashMap;

    /// Assembles source text into a program.
    pub fn assemble(src: &str) -> Result<Vec<Op>, VmError> {
        // Pass 1: collect labels → instruction indexes.
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut count: u32 = 0;
        let lines: Vec<&str> = src
            .lines()
            .map(|l| l.split(';').next().unwrap_or("").trim())
            .collect();
        for line in &lines {
            if line.is_empty() {
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                if labels.insert(label.trim().to_string(), count).is_some() {
                    return Err(VmError::BadBytecode(format!("duplicate label `{label}`")));
                }
            } else {
                count += 1;
            }
        }
        // Pass 2: emit.
        let mut out = Vec::with_capacity(count as usize);
        for line in &lines {
            if line.is_empty() || line.ends_with(':') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mnem = parts.next().expect("nonempty line").to_uppercase();
            let operand = parts.next();
            let resolve = |s: &str| -> Result<u32, VmError> {
                if let Ok(n) = s.parse::<u32>() {
                    return Ok(n);
                }
                labels
                    .get(s)
                    .copied()
                    .ok_or_else(|| VmError::BadBytecode(format!("unknown label `{s}`")))
            };
            fn need<'a>(o: Option<&'a str>, mnem: &str) -> Result<&'a str, VmError> {
                o.ok_or_else(|| VmError::BadBytecode(format!("`{mnem}` needs an operand")))
            }
            let op = match mnem.as_str() {
                "PUSH" => Op::Push(need(operand, &mnem)?.parse().map_err(|_| {
                    VmError::BadBytecode(format!("bad PUSH operand `{operand:?}`"))
                })?),
                "POP" => Op::Pop,
                "DUP" => Op::Dup(
                    need(operand, &mnem)?
                        .parse()
                        .map_err(|_| VmError::BadBytecode("bad DUP depth".into()))?,
                ),
                "SWAP" => Op::Swap(
                    need(operand, &mnem)?
                        .parse()
                        .map_err(|_| VmError::BadBytecode("bad SWAP depth".into()))?,
                ),
                "ADD" => Op::Add,
                "SUB" => Op::Sub,
                "MUL" => Op::Mul,
                "DIV" => Op::Div,
                "MOD" => Op::Mod,
                "EQ" => Op::Eq,
                "LT" => Op::Lt,
                "GT" => Op::Gt,
                "NOT" => Op::Not,
                "AND" => Op::And,
                "OR" => Op::Or,
                "JMP" => Op::Jmp(resolve(need(operand, &mnem)?)?),
                "JMPI" => Op::Jmpi(resolve(need(operand, &mnem)?)?),
                "SLOAD" => Op::SLoad,
                "SSTORE" => Op::SStore,
                "CALLER" => Op::Caller,
                "ARG" => Op::Arg(
                    need(operand, &mnem)?
                        .parse()
                        .map_err(|_| VmError::BadBytecode("bad ARG index".into()))?,
                ),
                "TIME" => Op::Time,
                "HEIGHT" => Op::Height,
                "LOG" => Op::Log,
                "RET" => Op::Ret,
                "REVERT" => Op::Revert,
                "HALT" => Op::Halt,
                other => return Err(VmError::BadBytecode(format!("unknown mnemonic `{other}`"))),
            };
            out.push(op);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_crypto::{Hash256, KeyPair};

    fn ctx() -> CallCtx {
        CallCtx {
            sender: KeyPair::generate("vm-caller", 2).public(),
            contract: Hash256([3; 32]),
            block_height: 7,
            timestamp_ms: 99_000,
        }
    }

    fn run(program: &[Op], args: &[i64]) -> Result<Outcome, VmError> {
        let mut state = ContractState::new();
        execute(program, &mut state, &ctx(), args, 10_000)
    }

    #[test]
    fn arithmetic() {
        let p = asm::assemble("PUSH 2\nPUSH 3\nADD\nPUSH 4\nMUL\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 20);
        let p = asm::assemble("PUSH 10\nPUSH 3\nMOD\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 1);
        let p = asm::assemble("PUSH 10\nPUSH 4\nDIV\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 2);
    }

    #[test]
    fn comparisons_and_logic() {
        let p = asm::assemble("PUSH 1\nPUSH 2\nLT\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 1);
        let p = asm::assemble("PUSH 1\nPUSH 2\nGT\nNOT\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 1);
        let p = asm::assemble("PUSH 1\nPUSH 0\nAND\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 0);
        let p = asm::assemble("PUSH 1\nPUSH 0\nOR\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 1);
        let p = asm::assemble("PUSH 5\nPUSH 5\nEQ\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 1);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // sum = 0; i = 10; while i != 0 { sum += i; i -= 1 } return sum
        let src = r"
            PUSH 0      ; [sum]
            PUSH 10     ; [sum, i]
        loop:
            DUP 0       ; [sum, i, i]
            NOT         ; [sum, i, i==0]
            JMPI done   ; [sum, i]
            DUP 0       ; [sum, i, i]
            SWAP 1      ; [i, i, sum]
            ADD         ; [i, i+sum]
            SWAP 0      ; [i+sum, i]
            PUSH 1
            SUB         ; [i+sum, i-1]
            JMP loop
        done:
            POP         ; drop i (== 0)
            RET
        ";
        let p = asm::assemble(src).expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 55);
    }

    #[test]
    fn storage_persists_across_calls() {
        let src = "PUSH 0\nSLOAD\nPUSH 1\nADD\nDUP 0\nPUSH 0\nSSTORE\nRET";
        let p = asm::assemble(src).expect("asm");
        let mut state = ContractState::new();
        let c = ctx();
        let r1 = execute(&p, &mut state, &c, &[], 10_000).expect("run1");
        let r2 = execute(&p, &mut state, &c, &[], 10_000).expect("run2");
        let r3 = execute(&p, &mut state, &c, &[], 10_000).expect("run3");
        assert_eq!((r1.ret, r2.ret, r3.ret), (1, 2, 3));
    }

    #[test]
    fn args_and_env() {
        let p = asm::assemble("ARG 0\nARG 1\nADD\nRET").expect("asm");
        assert_eq!(run(&p, &[40, 2]).expect("run").ret, 42);
        let p = asm::assemble("TIME\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 99_000);
        let p = asm::assemble("HEIGHT\nRET").expect("asm");
        assert_eq!(run(&p, &[]).expect("run").ret, 7);
        let p = asm::assemble("CALLER\nRET").expect("asm");
        assert!(run(&p, &[]).expect("run").ret > 0);
        let p = asm::assemble("ARG 3\nRET").expect("asm");
        assert_eq!(run(&p, &[1]).unwrap_err(), VmError::BadArg(3));
    }

    #[test]
    fn logs_are_emitted() {
        let p = asm::assemble("PUSH 7\nPUSH 42\nLOG\nHALT").expect("asm");
        let out = run(&p, &[]).expect("run");
        assert_eq!(out.logs.len(), 1);
        assert_eq!(out.logs[0].topic, "vm:7");
        assert!(out.logs[0].data.contains("42"));
    }

    #[test]
    fn traps() {
        let p = asm::assemble("PUSH 1\nPUSH 0\nDIV\nRET").expect("asm");
        assert_eq!(run(&p, &[]).unwrap_err(), VmError::DivByZero);
        let p = asm::assemble("POP\nRET").expect("asm");
        assert_eq!(run(&p, &[]).unwrap_err(), VmError::StackUnderflow);
        let p = vec![Op::Jmp(99), Op::Halt];
        assert_eq!(run(&p, &[]).unwrap_err(), VmError::BadJump(99));
        let p = asm::assemble("PUSH 1").expect("asm");
        assert_eq!(run(&p, &[]).unwrap_err(), VmError::MissingReturn);
        let p = asm::assemble("PUSH 13\nREVERT").expect("asm");
        assert_eq!(run(&p, &[]).unwrap_err(), VmError::Reverted(13));
    }

    #[test]
    fn out_of_gas_terminates_infinite_loop() {
        let p = asm::assemble("loop:\nJMP loop").expect("asm");
        let mut state = ContractState::new();
        let err = execute(&p, &mut state, &ctx(), &[], 500).unwrap_err();
        assert_eq!(err, VmError::OutOfGas);
    }

    #[test]
    fn gas_accounting_charges_storage_more() {
        let cheap = asm::assemble("PUSH 1\nRET").expect("asm");
        let pricey = asm::assemble("PUSH 1\nPUSH 0\nSSTORE\nPUSH 1\nRET").expect("asm");
        let g1 = run(&cheap, &[]).expect("run").gas_used;
        let g2 = run(&pricey, &[]).expect("run").gas_used;
        assert!(g2 > g1 + 15, "SSTORE should dominate: {g1} vs {g2}");
    }

    #[test]
    fn encode_decode_round_trip() {
        let src = "PUSH 5\nDUP 0\nADD\nPUSH -3\nSUB\nJMP 6\nHALT\nRET";
        let p = asm::assemble(src).expect("asm");
        let bytes = encode(&p);
        let back = decode(&bytes).expect("decode");
        assert_eq!(p, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0xff]).is_err());
        assert!(decode(&[0x01, 0x00]).is_err()); // truncated PUSH
        assert!(decode(&[0x30, 0x00]).is_err()); // truncated JMP
    }

    #[test]
    fn assembler_errors() {
        assert!(asm::assemble("BOGUS").is_err());
        assert!(asm::assemble("PUSH").is_err());
        assert!(asm::assemble("JMP nowhere").is_err());
        assert!(asm::assemble("a:\na:\nHALT").is_err());
    }

    #[test]
    fn method_dispatch_pattern() {
        // A two-method contract: "inc" bumps the counter, "get" reads it.
        let src = format!(
            r"
            ARG 0
            PUSH {inc}
            EQ
            JMPI do_inc
            ARG 0
            PUSH {get}
            EQ
            JMPI do_get
            PUSH 404
            REVERT
        do_inc:
            PUSH 0
            SLOAD
            PUSH 1
            ADD
            DUP 0
            PUSH 0
            SSTORE
            RET
        do_get:
            PUSH 0
            SLOAD
            RET
        ",
            inc = method_id("inc"),
            get = method_id("get"),
        );
        let p = asm::assemble(&src).expect("asm");
        let mut state = ContractState::new();
        let c = ctx();
        let r = execute(&p, &mut state, &c, &[method_id("inc")], 10_000).expect("inc");
        assert_eq!(r.ret, 1);
        execute(&p, &mut state, &c, &[method_id("inc")], 10_000).expect("inc");
        let r = execute(&p, &mut state, &c, &[method_id("get")], 10_000).expect("get");
        assert_eq!(r.ret, 2);
        let err = execute(&p, &mut state, &c, &[method_id("nope")], 10_000).unwrap_err();
        assert_eq!(err, VmError::Reverted(404));
    }

    #[test]
    fn method_id_is_nonnegative_and_distinct() {
        assert!(method_id("inc") >= 0);
        assert_ne!(method_id("inc"), method_id("get"));
    }
}
