//! # medledger-contracts
//!
//! The smart-contract layer: a deterministic contract runtime hosting
//!
//! * [`sharing::SharingContract`] — the paper's Fig. 3 "metadata collection"
//!   contract: per shared table it stores the sharing peers, per-attribute
//!   write permissions, the last update time and the permission-change
//!   authority, plus the `pending_acks` set that enforces the paper's
//!   "only when all sharing peers have the newest shared data can they
//!   execute further operations" rule;
//! * [`vm`] — **MedVM**, a gas-metered stack virtual machine with
//!   persistent storage, so the system also supports user-deployed
//!   bytecode contracts (standing in for the paper's EVM);
//! * [`runtime::ContractRuntime`] — deploys contracts, executes
//!   transactions with revert-on-error semantics, computes state roots for
//!   block headers and produces receipts with event logs.
//!
//! Execution is fully deterministic: the only ambient inputs are the
//! block timestamp, height and sender provided in [`runtime::CallCtx`],
//! which all replicas agree on. Reverted transactions leave no state
//! changes behind.

pub mod runtime;
pub mod sharing;
pub mod state;
pub mod vm;

pub use runtime::{CallCtx, ContractError, ContractRuntime};
pub use sharing::{SharedTableMeta, SharingContract};
pub use state::ContractState;
