//! Durable storage for a whole deployment: WAL flushes, snapshots, and
//! crash recovery.
//!
//! The in-memory [`System`] stays the default — nothing here runs until a
//! [`StorageBackend`] is attached (see [`System::attach_storage`] or the
//! facade's `MedLedgerBuilder::durable`). Once attached, every commit
//! boundary (propagation, group commit, share lifecycle) flushes through
//! the backend:
//!
//! * each peer database's mutation log drains into an append-only record
//!   stream (`peer/<name>`), one CRC-framed [`LogRecord`] per record,
//!   carrying the caller-attested `post_hash` the live system computed;
//! * every block above the persisted height appends to the `chain`
//!   stream (the chain stream is never compacted — recovery replays it
//!   from genesis to rebuild contract state and receipts);
//! * periodically — every [`StorageOptions::snapshot_every`] flushes, or
//!   forced on structural changes (new peer, share created/removed,
//!   contract deployed) — a full snapshot of every peer database plus its
//!   share bindings is written, and peer streams compact below it;
//! * finally one `SysMeta` commit record appends to the `sys` stream.
//!   **The `sys` record is the commit point**: stream appends that never
//!   got their `sys` record are rolled back (in-process before the next
//!   flush, at recovery by truncating to the recorded marks).
//!
//! Recovery (`System::recover`) picks the newest `SysMeta` whose
//! referenced snapshot and stream marks are intact, truncates every
//! stream to the recorded marks (discarding a torn uncommitted flush
//! suffix), rebuilds each peer from the snapshot plus WAL replay — every
//! replayed record re-verifies its attested post-state hash — and then
//! replays the entire chain through a fresh contract runtime, checking
//! each block's `state_root` as it goes. Before the system is returned,
//! the folded per-shard Merkle subroots of every recovered shared table
//! are re-verified against the contract state the recovered chain
//! produced ([`System::check_consistency`]); any disagreement fails
//! loudly instead of serving a database that contradicts its ledger.
//!
//! What is deliberately **not** persisted: peer signing keys (re-derived
//! from the deployment seed, fast-forwarded past the consumed one-time
//! signatures recorded in `SysMeta`) and the mempool (transactions not
//! yet in a block are lost on crash, exactly like a real node).

use crate::error::CoreError;
use crate::peer::PeerNode;
use crate::system::{System, SystemConfig, SystemStats};
use crate::Result;
use medledger_crypto::Hash256;
use medledger_ledger::Block;
use medledger_relational::{Database, LogRecord, Table, TableDelta};
use medledger_storage::codec::{put_bytes, put_seq, put_varint, take_seq, Reader};
use medledger_storage::{Decode, Encode, StorageBackend, StorageError};
use std::collections::BTreeMap;

/// Durable-storage tuning knobs (carried in
/// [`crate::system::SystemConfig::storage`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageOptions {
    /// Full snapshots are written every this many flushes (structural
    /// changes force one regardless). Lower = faster recovery, more
    /// snapshot I/O.
    pub snapshot_every: u64,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions { snapshot_every: 8 }
    }
}

/// The stream a peer's WAL records land in.
fn peer_stream(name: &str) -> String {
    format!("peer/{name}")
}

/// Per-peer portion of a flush commit record.
#[derive(Clone, Debug, PartialEq)]
struct PeerMeta {
    /// Peer display name (stream `peer/<name>`).
    name: String,
    /// Records of the peer stream covered by this flush.
    stream_mark: u64,
    /// Stream index WAL replay starts from (stream length when the
    /// referenced snapshot was taken).
    snapshot_mark: u64,
    /// The database's next mutation sequence number at flush time
    /// (sanity-checked after replay).
    next_seq: u64,
    /// Next ledger nonce.
    next_nonce: u64,
    /// One-time signing keys consumed so far.
    keys_used: u64,
    /// Last applied contract version per shared table.
    applied_versions: Vec<(String, u64)>,
    /// Per shared table: the inverse delta rewinding the stored copy to
    /// the committed baseline (empty entries omitted). Baselines and
    /// pending rows are *derived* state — this is all recovery needs to
    /// reconstruct both without persisting a second copy of any table.
    baseline_inverses: Vec<(String, TableDelta)>,
}

/// One flush commit record, appended to the `sys` stream. The newest
/// intact `SysMeta` defines the recovered state; everything beyond its
/// marks is an uncommitted flush suffix and gets truncated.
#[derive(Clone, Debug, PartialEq)]
struct SysMeta {
    /// Monotonic flush counter (1-based).
    epoch: u64,
    /// Snapshot id this flush builds on.
    snapshot_id: u64,
    /// Blocks of the `chain` stream covered (chain height at flush).
    chain_mark: u64,
    /// Virtual clock at flush.
    clock_ms: u64,
    /// Last block slot time.
    last_block_ms: u64,
    /// System PRG state `(counter, buffer position)`.
    prg_state: (u64, u64),
    /// PoW interval-model PRG state, when PoW consensus is configured.
    pow_state: Option<(u64, u64)>,
    /// One-time keys the admin keypair has consumed.
    admin_used: u64,
    /// The deployed sharing contract id, if any.
    contract: Option<Hash256>,
    /// Aggregate statistics (flattened; see `encode_stats`).
    stats: SystemStats,
    /// Per-peer watermarks and derived-state deltas.
    peers: Vec<PeerMeta>,
}

fn put_string_u64_pairs(out: &mut Vec<u8>, pairs: &[(String, u64)]) {
    put_varint(out, pairs.len() as u64);
    for (s, v) in pairs {
        s.encode_into(out);
        put_varint(out, *v);
    }
}

fn take_string_u64_pairs(r: &mut Reader<'_>) -> medledger_storage::Result<Vec<(String, u64)>> {
    let n = r.take_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s = String::decode_from(r)?;
        let v = r.take_varint()?;
        out.push((s, v));
    }
    Ok(out)
}

fn put_string_delta_pairs(out: &mut Vec<u8>, pairs: &[(String, TableDelta)]) {
    put_varint(out, pairs.len() as u64);
    for (s, d) in pairs {
        s.encode_into(out);
        d.encode_into(out);
    }
}

fn take_string_delta_pairs(
    r: &mut Reader<'_>,
) -> medledger_storage::Result<Vec<(String, TableDelta)>> {
    let n = r.take_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s = String::decode_from(r)?;
        let d = TableDelta::decode_from(r)?;
        out.push((s, d));
    }
    Ok(out)
}

fn encode_stats(out: &mut Vec<u8>, stats: &SystemStats) {
    for v in [
        stats.blocks,
        stats.txs,
        stats.reverted_txs,
        stats.consensus_msgs,
        stats.consensus_bytes,
        stats.p2p_transfers,
        stats.p2p_bytes,
        stats.data_plane.transfers,
        stats.data_plane.rows,
        stats.data_plane.bytes,
        stats.data_plane.full_table_equiv_bytes,
    ] {
        put_varint(out, v);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> medledger_storage::Result<SystemStats> {
    // Struct-literal fields evaluate in written order, matching
    // `encode_stats` exactly.
    Ok(SystemStats {
        blocks: r.take_varint()?,
        txs: r.take_varint()?,
        reverted_txs: r.take_varint()?,
        consensus_msgs: r.take_varint()?,
        consensus_bytes: r.take_varint()?,
        p2p_transfers: r.take_varint()?,
        p2p_bytes: r.take_varint()?,
        data_plane: medledger_network::DataPlaneStats {
            transfers: r.take_varint()?,
            rows: r.take_varint()?,
            bytes: r.take_varint()?,
            full_table_equiv_bytes: r.take_varint()?,
        },
    })
}

impl Encode for PeerMeta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        put_varint(out, self.stream_mark);
        put_varint(out, self.snapshot_mark);
        put_varint(out, self.next_seq);
        put_varint(out, self.next_nonce);
        put_varint(out, self.keys_used);
        put_string_u64_pairs(out, &self.applied_versions);
        put_string_delta_pairs(out, &self.baseline_inverses);
    }
}

impl Decode for PeerMeta {
    fn decode_from(r: &mut Reader<'_>) -> medledger_storage::Result<Self> {
        Ok(PeerMeta {
            name: String::decode_from(r)?,
            stream_mark: r.take_varint()?,
            snapshot_mark: r.take_varint()?,
            next_seq: r.take_varint()?,
            next_nonce: r.take_varint()?,
            keys_used: r.take_varint()?,
            applied_versions: take_string_u64_pairs(r)?,
            baseline_inverses: take_string_delta_pairs(r)?,
        })
    }
}

impl Encode for SysMeta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.epoch);
        put_varint(out, self.snapshot_id);
        put_varint(out, self.chain_mark);
        put_varint(out, self.clock_ms);
        put_varint(out, self.last_block_ms);
        put_varint(out, self.prg_state.0);
        put_varint(out, self.prg_state.1);
        match self.pow_state {
            None => out.push(0),
            Some((a, b)) => {
                out.push(1);
                put_varint(out, a);
                put_varint(out, b);
            }
        }
        put_varint(out, self.admin_used);
        self.contract.encode_into(out);
        encode_stats(out, &self.stats);
        put_seq(out, &self.peers);
    }
}

impl Decode for SysMeta {
    fn decode_from(r: &mut Reader<'_>) -> medledger_storage::Result<Self> {
        let epoch = r.take_varint()?;
        let snapshot_id = r.take_varint()?;
        let chain_mark = r.take_varint()?;
        let clock_ms = r.take_varint()?;
        let last_block_ms = r.take_varint()?;
        let prg_state = (r.take_varint()?, r.take_varint()?);
        let pow_state = match r.take_u8()? {
            0 => None,
            1 => Some((r.take_varint()?, r.take_varint()?)),
            t => {
                return Err(StorageError::Codec(format!("invalid pow-state tag {t}")));
            }
        };
        Ok(SysMeta {
            epoch,
            snapshot_id,
            chain_mark,
            clock_ms,
            last_block_ms,
            prg_state,
            pow_state,
            admin_used: r.take_varint()?,
            contract: Option::<Hash256>::decode_from(r)?,
            stats: decode_stats(r)?,
            peers: take_seq(r)?,
        })
    }
}

/// One peer's slice of a snapshot payload.
struct PeerSnapshot {
    name: String,
    owner: String,
    tables: Vec<(String, Table)>,
    versions: Vec<(String, u64)>,
    base_seq: u64,
    bindings_json: Vec<u8>,
}

impl Encode for PeerSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.owner.encode_into(out);
        put_varint(out, self.tables.len() as u64);
        for (name, table) in &self.tables {
            name.encode_into(out);
            table.encode_into(out);
        }
        put_string_u64_pairs(out, &self.versions);
        put_varint(out, self.base_seq);
        put_bytes(out, &self.bindings_json);
    }
}

impl Decode for PeerSnapshot {
    fn decode_from(r: &mut Reader<'_>) -> medledger_storage::Result<Self> {
        let name = String::decode_from(r)?;
        let owner = String::decode_from(r)?;
        let n = r.take_len()?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            let tname = String::decode_from(r)?;
            let table = Table::decode_from(r)?;
            tables.push((tname, table));
        }
        Ok(PeerSnapshot {
            name,
            owner,
            tables,
            versions: take_string_u64_pairs(r)?,
            base_seq: r.take_varint()?,
            bindings_json: r.take_bytes()?,
        })
    }
}

/// A full-deployment snapshot payload: every peer database plus its
/// share bindings, keyed by the snapshot id that names it.
struct Snapshot {
    id: u64,
    peers: Vec<PeerSnapshot>,
}

impl Encode for Snapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.id);
        put_seq(out, &self.peers);
    }
}

impl Decode for Snapshot {
    fn decode_from(r: &mut Reader<'_>) -> medledger_storage::Result<Self> {
        Ok(Snapshot {
            id: r.take_varint()?,
            peers: take_seq(r)?,
        })
    }
}

/// An attached durable-storage session: the backend plus the commit
/// watermarks of the last successful flush.
pub(crate) struct Persistence {
    backend: Box<dyn StorageBackend>,
    snapshot_every: u64,
    /// Flushes since the current snapshot was written.
    flushes_since_snapshot: u64,
    /// Flush counter (== epoch of the last committed `SysMeta`; 0 before
    /// the first flush).
    epoch: u64,
    /// Id of the snapshot the next `SysMeta` references.
    snapshot_id: u64,
    /// Committed record count per peer stream, keyed by peer name.
    peer_marks: BTreeMap<String, u64>,
    /// Database sequence number covered by each peer stream.
    peer_seqs: BTreeMap<String, u64>,
    /// Stream position replay starts from, per peer (stream length when
    /// the current snapshot was taken).
    snapshot_marks: BTreeMap<String, u64>,
    /// Blocks of the chain stream committed.
    chain_mark: u64,
    /// Set after a failed flush: the backend may hold a partial frame, so
    /// further flushes refuse to run rather than risk compounding damage.
    poisoned: bool,
}

impl Persistence {
    fn new(backend: Box<dyn StorageBackend>, options: StorageOptions) -> Self {
        Persistence {
            backend,
            snapshot_every: options.snapshot_every.max(1),
            flushes_since_snapshot: 0,
            epoch: 0,
            snapshot_id: 0,
            peer_marks: BTreeMap::new(),
            peer_seqs: BTreeMap::new(),
            snapshot_marks: BTreeMap::new(),
            chain_mark: 0,
            poisoned: false,
        }
    }
}

fn storage_err(e: impl std::fmt::Display) -> CoreError {
    CoreError::Storage(e.to_string())
}

/// Encodes the current deployment state as a snapshot payload.
fn build_snapshot(sys: &System, id: u64) -> Result<Vec<u8>> {
    let mut peers = Vec::with_capacity(sys.names.len());
    for (name, account) in &sys.names {
        let peer = sys.peers.get(account).ok_or_else(|| {
            CoreError::Storage(format!(
                "peer record missing for `{name}` while snapshotting"
            ))
        })?;
        let (owner, tables, versions, next_seq) = peer.db.export_parts();
        let bindings_json = serde_json::to_vec(peer.bindings_map()).map_err(storage_err)?;
        peers.push(PeerSnapshot {
            name: name.clone(),
            owner: owner.to_string(),
            tables: tables.iter().map(|(n, t)| (n.clone(), t.clone())).collect(),
            versions: versions.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            base_seq: next_seq,
            bindings_json,
        });
    }
    Ok(Snapshot { id, peers }.encoded())
}

/// One flush: drain peer logs and new blocks into the backend, maybe
/// snapshot, then commit with a `SysMeta` record. See the module docs for
/// the ordering contract.
fn flush_inner(sys: &mut System, p: &mut Persistence, force_snapshot: bool) -> Result<()> {
    if p.poisoned {
        return Err(CoreError::Storage(
            "storage backend poisoned by an earlier failed flush".into(),
        ));
    }
    let telemetry = sys.recorder().clone();
    let mut wal_bytes: u64 = 0;
    let mut chain_bytes: u64 = 0;
    // Phase 0 — roll back any uncommitted suffix a previously failed
    // flush left behind (appends without their commit record).
    for (name, mark) in p.peer_marks.clone() {
        let stream = peer_stream(&name);
        if p.backend.stream_len(&stream).map_err(storage_err)? > mark {
            p.backend.truncate_to(&stream, mark).map_err(storage_err)?;
        }
    }
    if p.backend.stream_len("chain").map_err(storage_err)? > p.chain_mark {
        p.backend
            .truncate_to("chain", p.chain_mark)
            .map_err(storage_err)?;
    }

    // Phase 1 — append every unpersisted peer mutation record.
    let mut new_marks: BTreeMap<String, u64> = BTreeMap::new();
    let mut new_seqs: BTreeMap<String, u64> = BTreeMap::new();
    for (name, account) in &sys.names {
        let peer = sys.peers.get(account).ok_or_else(|| {
            CoreError::Storage(format!("peer record missing for `{name}` during flush"))
        })?;
        let stream = peer_stream(name);
        let from_seq = p
            .peer_seqs
            .get(name)
            .copied()
            .unwrap_or_else(|| peer.db.base_seq());
        if peer.db.base_seq() > from_seq {
            p.poisoned = true;
            return Err(CoreError::Storage(format!(
                "peer {name} database log truncated past the persisted \
                 watermark ({} > {from_seq})",
                peer.db.base_seq()
            )));
        }
        let mut mark = p.peer_marks.get(name).copied().unwrap_or(0);
        let records = peer.db.log_since(from_seq);
        for rec in records {
            let frame = rec.encoded();
            wal_bytes += frame.len() as u64;
            if let Err(e) = p.backend.append(&stream, &frame) {
                p.poisoned = true;
                return Err(storage_err(e));
            }
            mark += 1;
        }
        new_marks.insert(name.clone(), mark);
        new_seqs.insert(name.clone(), from_seq + records.len() as u64);
    }

    // Phase 2 — append every block above the persisted height. The chain
    // stream holds blocks 1.. (genesis is reproduced from configuration).
    let height = sys.chain.height();
    for h in (p.chain_mark + 1)..=height {
        let block = sys.chain.block_at(h).ok_or_else(|| {
            CoreError::Storage(format!("chain height is {height} but block {h} is missing"))
        })?;
        let frame = block.encoded();
        chain_bytes += frame.len() as u64;
        if let Err(e) = p.backend.append("chain", &frame) {
            p.poisoned = true;
            return Err(storage_err(e));
        }
    }

    // Phase 3 — snapshot on cadence or structural change.
    let epoch = p.epoch + 1;
    let first_flush = p.epoch == 0;
    let take_snapshot =
        force_snapshot || first_flush || p.flushes_since_snapshot + 1 >= p.snapshot_every;
    let mut snapshot_id = p.snapshot_id;
    let mut snapshot_marks = p.snapshot_marks.clone();
    if take_snapshot {
        let started = telemetry.is_enabled().then(std::time::Instant::now);
        let payload = build_snapshot(sys, epoch)?;
        if let Err(e) = p.backend.write_snapshot(epoch, &payload) {
            p.poisoned = true;
            return Err(storage_err(e));
        }
        if let Some(t) = started {
            telemetry.record("storage.snapshot_us", t.elapsed().as_micros() as u64);
        }
        telemetry.add("storage.snapshots", 1);
        snapshot_id = epoch;
        snapshot_marks = new_marks.clone();
    }

    // Phase 4 — the commit record.
    let meta = SysMeta {
        epoch,
        snapshot_id,
        chain_mark: height,
        clock_ms: sys.clock_ms,
        last_block_ms: sys.last_block_ms,
        prg_state: {
            let (c, b) = sys.prg.state();
            (c, b as u64)
        },
        pow_state: sys.pow.as_ref().map(|m| {
            let (c, b) = m.prg_state();
            (c, b as u64)
        }),
        admin_used: sys.admin.used(),
        contract: sys.contract,
        stats: sys.stats,
        peers: {
            let mut metas = Vec::with_capacity(sys.names.len());
            for (name, account) in &sys.names {
                let peer = sys.peers.get(account).ok_or_else(|| {
                    CoreError::Storage(format!(
                        "peer record missing for `{name}` while writing sys meta"
                    ))
                })?;
                metas.push(PeerMeta {
                    name: name.clone(),
                    stream_mark: new_marks[name],
                    snapshot_mark: snapshot_marks.get(name).copied().unwrap_or(0),
                    next_seq: new_seqs[name],
                    next_nonce: peer.next_nonce,
                    keys_used: peer.keys.used(),
                    applied_versions: peer
                        .applied_versions
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                    baseline_inverses: peer.baseline_inverses(),
                });
            }
            metas
        },
    };
    if let Err(e) = p.backend.append("sys", &meta.encoded()) {
        p.poisoned = true;
        return Err(storage_err(e));
    }
    if let Err(e) = p.backend.sync() {
        p.poisoned = true;
        return Err(storage_err(e));
    }

    // Phase 5 — committed: advance watermarks, drain in-memory logs,
    // compact peer streams below the snapshot horizon.
    p.epoch = epoch;
    p.snapshot_id = snapshot_id;
    p.flushes_since_snapshot = if take_snapshot {
        0
    } else {
        p.flushes_since_snapshot + 1
    };
    p.chain_mark = height;
    p.peer_marks = new_marks;
    p.snapshot_marks = snapshot_marks;
    for (name, seq) in &new_seqs {
        let account = sys.names[name];
        let peer = sys.peers.get_mut(&account).ok_or_else(|| {
            CoreError::Storage(format!("peer record missing for `{name}` while compacting"))
        })?;
        peer.db.truncate_log(*seq);
        p.peer_seqs.insert(name.clone(), *seq);
        if take_snapshot {
            // Whole segments below the snapshot horizon can go.
            p.backend
                .compact(&peer_stream(name), p.snapshot_marks[name])
                .map_err(storage_err)?;
        }
    }
    if telemetry.is_enabled() {
        telemetry.add("storage.flushes", 1);
        telemetry.add("storage.wal_bytes", wal_bytes);
        telemetry.add("storage.chain_bytes", chain_bytes);
        telemetry
            .gauge("storage.segments")
            .set(p.backend.segment_count());
    }
    Ok(())
}

impl System {
    /// Attaches a durable-storage backend and writes an initial full
    /// flush (forced snapshot), so the stored state is complete from this
    /// point on. Tuning comes from [`SystemConfig::storage`].
    pub fn attach_storage(&mut self, backend: Box<dyn StorageBackend>) -> Result<()> {
        if self.persist.is_some() {
            return Err(CoreError::Storage("storage already attached".into()));
        }
        self.persist = Some(Persistence::new(backend, self.config.storage));
        self.flush_structural()
    }

    /// True when a storage backend is attached.
    pub fn storage_attached(&self) -> bool {
        self.persist.is_some()
    }

    /// Flushes all unpersisted state to the attached backend (no-op when
    /// none is attached). Commit boundaries call this automatically;
    /// callers staging writes outside those paths can force one.
    pub fn flush_storage(&mut self) -> Result<()> {
        self.flush_with(false)
    }

    /// A flush that also forces a snapshot — used after structural
    /// changes (peer added, share created/removed, contract deployed)
    /// whose setup mutations (table creation, view materialization)
    /// bypass the per-record WAL.
    pub(crate) fn flush_structural(&mut self) -> Result<()> {
        self.flush_with(true)
    }

    fn flush_with(&mut self, force_snapshot: bool) -> Result<()> {
        let Some(mut p) = self.persist.take() else {
            return Ok(());
        };
        let result = flush_inner(self, &mut p, force_snapshot);
        self.persist = Some(p);
        result
    }

    /// Recovers a deployment from a previously written backend.
    ///
    /// Returns [`Recovery::Fresh`] (handing the backend back) when it
    /// holds no committed flush — the caller should bootstrap normally
    /// and [`System::attach_storage`]. `config` must match the
    /// deployment that wrote the state (same seed, consensus, and shard
    /// layout); signing keys are re-derived from it.
    pub fn recover(config: SystemConfig, mut backend: Box<dyn StorageBackend>) -> Result<Recovery> {
        let sys_records = backend.read_from("sys", 0).map_err(storage_err)?;
        if sys_records.is_empty() {
            return Ok(Recovery::Fresh(backend));
        }
        let mut metas = Vec::with_capacity(sys_records.len());
        for rec in &sys_records {
            metas
                .push(SysMeta::decode(rec).map_err(|e| {
                    CoreError::Storage(format!("corrupt flush commit record: {e}"))
                })?);
        }
        // Newest meta whose snapshot and stream marks are all intact: a
        // crash between data-stream sync and commit-record sync can leave
        // the final record ahead of its data, in which case the previous
        // one defines the recovered state.
        let mut chosen: Option<(usize, SysMeta)> = None;
        'candidates: for (i, meta) in metas.into_iter().enumerate().rev() {
            if backend
                .read_snapshot(meta.snapshot_id)
                .map_err(storage_err)?
                .is_none()
            {
                continue;
            }
            if backend.stream_len("chain").map_err(storage_err)? < meta.chain_mark {
                continue;
            }
            for pm in &meta.peers {
                if backend
                    .stream_len(&peer_stream(&pm.name))
                    .map_err(storage_err)?
                    < pm.stream_mark
                {
                    continue 'candidates;
                }
            }
            chosen = Some((i, meta));
            break;
        }
        let Some((idx, meta)) = chosen else {
            return Err(CoreError::Storage(
                "no flush commit record matches the stored streams and snapshots".into(),
            ));
        };

        // Truncate every stream to the committed marks — anything beyond
        // is an uncommitted flush suffix.
        backend
            .truncate_to("sys", idx as u64 + 1)
            .map_err(storage_err)?;
        backend
            .truncate_to("chain", meta.chain_mark)
            .map_err(storage_err)?;
        for pm in &meta.peers {
            backend
                .truncate_to(&peer_stream(&pm.name), pm.stream_mark)
                .map_err(storage_err)?;
        }

        // Decode the snapshot and rebuild every peer: snapshot tables,
        // then WAL replay (each record re-verifies its attested hash),
        // then the derived state from the commit record.
        let snap_bytes = backend
            .read_snapshot(meta.snapshot_id)
            .map_err(storage_err)?
            .ok_or_else(|| {
                CoreError::Storage(format!(
                    "snapshot {} disappeared between probe and read",
                    meta.snapshot_id
                ))
            })?;
        let snapshot = Snapshot::decode(&snap_bytes)
            .map_err(|e| CoreError::Storage(format!("corrupt snapshot: {e}")))?;
        if snapshot.id != meta.snapshot_id {
            return Err(CoreError::Storage(format!(
                "snapshot payload claims id {}, commit record references {}",
                snapshot.id, meta.snapshot_id
            )));
        }
        let mut sys = System::new(config);
        let snap_peers: BTreeMap<&str, &PeerSnapshot> = snapshot
            .peers
            .iter()
            .map(|ps| (ps.name.as_str(), ps))
            .collect();
        for pm in &meta.peers {
            let ps = snap_peers.get(pm.name.as_str()).ok_or_else(|| {
                CoreError::Storage(format!(
                    "peer {} in commit record but missing from snapshot {}",
                    pm.name, snapshot.id
                ))
            })?;
            let mut db = Database::from_parts(
                ps.owner.clone(),
                ps.tables.iter().cloned().collect(),
                ps.versions.iter().cloned().collect(),
                ps.base_seq,
            );
            let wal = backend
                .read_from(&peer_stream(&pm.name), pm.snapshot_mark)
                .map_err(storage_err)?;
            for raw in &wal {
                let rec = LogRecord::decode(raw).map_err(|e| {
                    CoreError::Storage(format!("corrupt WAL record for peer {}: {e}", pm.name))
                })?;
                if rec.seq < db.next_seq() {
                    continue;
                }
                db.replay_record(&rec).map_err(|e| {
                    CoreError::Storage(format!("WAL replay failed for peer {}: {e}", pm.name))
                })?;
            }
            if db.next_seq() != pm.next_seq {
                return Err(CoreError::Storage(format!(
                    "peer {} replayed to seq {}, commit record attests {}",
                    pm.name,
                    db.next_seq(),
                    pm.next_seq
                )));
            }
            let bindings = serde_json::from_slice(&ps.bindings_json).map_err(|e| {
                CoreError::Storage(format!("corrupt bindings for peer {}: {e}", pm.name))
            })?;
            let peer = PeerNode::restore_from_parts(
                &pm.name,
                &sys.config.seed,
                sys.config.peer_key_capacity,
                sys.config.propagation,
                sys.config.shards_per_table,
                db,
                bindings,
                &pm.baseline_inverses,
                pm.applied_versions.iter().cloned().collect(),
                pm.next_nonce,
                pm.keys_used,
            )?;
            let account = peer.account;
            // Membership only grows; adding every recovered peer before
            // replay keeps historical blocks valid (supersets are safe).
            sys.chain.membership_mut().add_member(account);
            sys.names.insert(pm.name.clone(), account);
            sys.peers.insert(account, peer);
        }

        // Replay the chain from genesis through a fresh contract runtime,
        // verifying each block's state root commitment as we go. This
        // rebuilds contract state and the receipt index without trusting
        // anything but the chain itself. Pipelined consensus overlaps
        // round *preparation*, never commit order, so the replay also
        // re-verifies that wave attributions are non-decreasing — a chain
        // whose blocks sealed out of wave order was not produced by this
        // pipeline and must not serve.
        let raw_blocks = backend.read_from("chain", 0).map_err(storage_err)?;
        let mut last_wave: Option<u64> = None;
        for raw in &raw_blocks {
            let block = Block::decode(raw)
                .map_err(|e| CoreError::Storage(format!("corrupt block record: {e}")))?;
            let height = block.header.height;
            if let Some(wave) = block.header.wave {
                if let Some(prev) = last_wave {
                    if wave < prev {
                        return Err(CoreError::Storage(format!(
                            "block {height} attributed to wave {wave} after a block of wave {prev}"
                        )));
                    }
                }
                last_wave = Some(wave);
            }
            for stx in &block.txs {
                let receipt = sys.runtime.execute(stx, height, block.header.timestamp_ms);
                sys.receipts.insert(stx.id(), (height, receipt));
            }
            if sys.runtime.state_root() != block.header.state_root {
                return Err(CoreError::Storage(format!(
                    "replaying block {height} yields state root {}, header commits to {}",
                    sys.runtime.state_root().short(),
                    block.header.state_root.short()
                )));
            }
            // Re-seed the pipelined admission schedule from the chain's
            // own seal times: the admission rule is a pure function of
            // them, so the recovered node reproduces the exact timeline a
            // non-crashed node would have.
            sys.pipeline.sealed(block.header.timestamp_ms);
            sys.chain.append(block).map_err(|e| {
                CoreError::Storage(format!("recovered chain rejects block {height}: {e}"))
            })?;
        }
        if sys.chain.height() != meta.chain_mark {
            return Err(CoreError::Storage(format!(
                "recovered chain height {} does not match committed mark {}",
                sys.chain.height(),
                meta.chain_mark
            )));
        }

        // Restore the scalar machine state.
        sys.clock_ms = meta.clock_ms;
        sys.last_block_ms = meta.last_block_ms;
        sys.prg
            .restore_state(meta.prg_state.0, meta.prg_state.1 as usize);
        if let (Some(model), Some((c, b))) = (sys.pow.as_mut(), meta.pow_state) {
            model.restore_prg_state(c, b as usize);
        }
        sys.admin.restore_used(meta.admin_used);
        sys.contract = meta.contract;
        sys.stats = meta.stats;

        // Re-verify the folded per-shard Merkle subroots of every
        // recovered shared table against the contract state the recovered
        // chain just produced — a database that disagrees with its ledger
        // must never serve.
        if sys.contract.is_some() {
            sys.check_consistency().map_err(|e| {
                CoreError::Storage(format!("recovered state failed verification: {e}"))
            })?;
        }

        // Re-attach with the recovered watermarks.
        let mut p = Persistence::new(backend, sys.config.storage);
        p.epoch = meta.epoch;
        p.snapshot_id = meta.snapshot_id;
        p.chain_mark = meta.chain_mark;
        p.flushes_since_snapshot = meta.epoch.saturating_sub(meta.snapshot_id);
        for pm in &meta.peers {
            p.peer_marks.insert(pm.name.clone(), pm.stream_mark);
            p.peer_seqs.insert(pm.name.clone(), pm.next_seq);
            p.snapshot_marks.insert(pm.name.clone(), pm.snapshot_mark);
        }
        sys.persist = Some(p);
        Ok(Recovery::Resumed(Box::new(sys)))
    }
}

/// Result of [`System::recover`].
pub enum Recovery {
    /// A committed deployment was found, verified, and resumed.
    Resumed(Box<System>),
    /// The backend holds no committed flush; it is handed back so the
    /// caller can bootstrap and [`System::attach_storage`] it.
    Fresh(Box<dyn StorageBackend>),
}

#[cfg(test)]
mod tests {
    use crate::facade::MedLedger;
    use crate::scenario::{self, SHARE_PD};
    use crate::system::{ConsensusKind, SystemConfig};
    use medledger_relational::Value;
    use medledger_storage::SharedBackend;

    fn config(seed: &str) -> SystemConfig {
        SystemConfig {
            consensus: ConsensusKind::PrivatePbft {
                block_interval_ms: 100,
            },
            seed: seed.into(),
            peer_key_capacity: 64,
            ..Default::default()
        }
    }

    #[test]
    fn durable_ledger_recovers_byte_identical_and_keeps_working() {
        let backend = SharedBackend::new();
        let cfg = config("persist-smoke");
        let ledger = MedLedger::builder()
            .config(cfg.clone())
            .storage_backend(Box::new(backend.clone()))
            .snapshot_every(2)
            .build()
            .expect("boot durable");
        assert!(ledger.is_durable());
        let mut scn = scenario::populate(ledger).expect("populate");
        scenario::run_fig5(&mut scn).expect("fig5");

        let height = scn.ledger.chain().height();
        let audit = scn.ledger.audit(SHARE_PD);
        let stats = scn.ledger.stats();
        let fingerprints: Vec<_> = scn
            .ledger
            .system()
            .peers
            .values()
            .map(|p| (p.name.clone(), p.db.fingerprint()))
            .collect();
        let pd_hash = scn
            .ledger
            .session(scn.patient)
            .read(SHARE_PD)
            .expect("read")
            .content_hash();
        scn.ledger.close().expect("close");

        let mut recovered = MedLedger::builder()
            .config(cfg)
            .storage_backend(Box::new(backend))
            .build()
            .expect("recover");
        assert_eq!(recovered.chain().height(), height);
        assert_eq!(recovered.audit(SHARE_PD), audit);
        assert_eq!(recovered.stats(), stats);
        let recovered_fps: Vec<_> = recovered
            .system()
            .peers
            .values()
            .map(|p| (p.name.clone(), p.db.fingerprint()))
            .collect();
        assert_eq!(recovered_fps, fingerprints);
        let patient = recovered.peer_id("Patient").expect("patient");
        let doctor = recovered.peer_id("Doctor").expect("doctor");
        assert_eq!(
            recovered
                .session(patient)
                .read(SHARE_PD)
                .expect("read")
                .content_hash(),
            pd_hash
        );
        recovered.check_consistency().expect("consistent");

        // The recovered deployment is live: a fresh commit goes through
        // (keys, nonces and the contract all picked up where they left).
        recovered
            .session(doctor)
            .begin(SHARE_PD)
            .set(vec![Value::Int(188)], "dosage", Value::text("one tablet"))
            .commit()
            .expect("post-recovery commit");
        recovered.check_consistency().expect("still consistent");
        assert!(recovered.chain().height() > height);
    }
}
