//! The assembled system: peers + chain + contract + consensus, and the
//! Fig. 4 / Fig. 5 workflows.

use crate::agreement::SharingAgreement;
use crate::error::{CoreError, RevertInfo};
use crate::peer::PeerNode;
pub use crate::peer::PropagationMode;
use crate::Result;
use medledger_bx::{changed_attrs, changed_attrs_from_delta, TableDelta};
use medledger_consensus::{PbftConfig, PbftRound, PowModel, ProposerSchedule};
use medledger_contracts::sharing::{
    AckUpdateArgs, ChangePermissionArgs, RegisterShareArgs, RequestUpdateArgs,
};
use medledger_contracts::{ContractRuntime, SharedTableMeta, SharingContract};
use medledger_crypto::{Hash256, KeyPair, Prg};
use medledger_ledger::{
    audit, AccountId, Block, Chain, Membership, Mempool, Receipt, SignedTransaction, Transaction,
    TxId, TxPayload, TxStatus,
};
use medledger_network::{DataPlaneStats, DataTransfer, LatencyModel, PayloadKind};
use medledger_relational::WriteOp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Typed handle to a peer registered in a [`System`].
///
/// Wraps the peer's ledger account identity; obtained from
/// [`System::add_peer`] (or the facade's `MedLedger::add_peer`) and used
/// everywhere a peer used to be named by a raw `&str`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(AccountId);

impl PeerId {
    /// The underlying ledger account (also the public signing key).
    pub fn account(&self) -> AccountId {
        self.0
    }

    /// Short hex prefix for traces.
    pub fn short(&self) -> String {
        self.0.short()
    }

    pub(crate) fn from_account(account: AccountId) -> Self {
        PeerId(account)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.short())
    }
}

/// Which chain the system runs on (the paper's Sec. IV-3 comparison).
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusKind {
    /// Private permissioned chain: PBFT validators, fixed block interval.
    PrivatePbft {
        /// Target block interval (virtual ms).
        block_interval_ms: u64,
    },
    /// Public proof-of-work model: exponential block intervals (Ethereum's
    /// ~12 s mean in the paper's Sec. IV-1).
    PublicPow {
        /// Mean block interval (virtual ms).
        mean_interval_ms: u64,
    },
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of PBFT validators (ignored for PoW, which models external
    /// miners).
    pub n_validators: usize,
    /// Chain flavor.
    pub consensus: ConsensusKind,
    /// Validator-to-validator latency.
    pub validator_latency: LatencyModel,
    /// Peer-to-peer data-plane latency (the Fig. 2 "send/request updated
    /// data" path).
    pub p2p_latency: LatencyModel,
    /// Simulation seed.
    pub seed: String,
    /// Max transactions per block.
    pub max_block_txs: usize,
    /// One-time signing keys per peer (bounds how many txs each peer can
    /// send).
    pub peer_key_capacity: usize,
    /// How shared-table updates travel between peers: row-level deltas
    /// (the default hot path) or whole tables (the baseline).
    pub propagation: PropagationMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_validators: 4,
            consensus: ConsensusKind::PrivatePbft {
                block_interval_ms: 1_000,
            },
            validator_latency: LatencyModel::lan(),
            p2p_latency: LatencyModel::wan(),
            seed: "medledger".into(),
            max_block_txs: 128,
            peer_key_capacity: 256,
            propagation: PropagationMode::Delta,
        }
    }
}

/// Aggregate system statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed (including reverted ones).
    pub txs: u64,
    /// Transactions that reverted.
    pub reverted_txs: u64,
    /// Consensus protocol messages delivered.
    pub consensus_msgs: u64,
    /// Consensus protocol bytes sent.
    pub consensus_bytes: u64,
    /// Peer-to-peer shared-data transfers.
    pub p2p_transfers: u64,
    /// Peer-to-peer bytes moved (serialized delta size in delta mode,
    /// encoded table size in full-table mode).
    pub p2p_bytes: u64,
    /// Detailed data-plane accounting, including the full-table-equivalent
    /// bytes each transfer would have cost (the bandwidth-win metric).
    pub data_plane: DataPlaneStats,
}

/// One numbered step of a workflow trace (matching the Fig. 5 numbering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Step label ("1" … "11"; cascades get "7"…"11").
    pub number: String,
    /// Virtual time of the step.
    pub at_ms: u64,
    /// Acting peer or component.
    pub actor: String,
    /// What happened.
    pub description: String,
}

/// A numbered trace of one update propagation (Fig. 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkflowTrace {
    /// The steps, in order.
    pub steps: Vec<TraceStep>,
}

impl WorkflowTrace {
    fn push(
        &mut self,
        number: impl Into<String>,
        at_ms: u64,
        actor: &str,
        desc: impl Into<String>,
    ) {
        self.steps.push(TraceStep {
            number: number.into(),
            at_ms,
            actor: actor.to_string(),
            description: desc.into(),
        });
    }

    /// Renders the trace as numbered lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&format!(
                "Step {:<4} [t={:>8} ms] {:<12} {}\n",
                s.number, s.at_ms, s.actor, s.description
            ));
        }
        out
    }
}

/// The outcome of one propagated update (and its cascades).
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The shared table updated.
    pub table_id: String,
    /// The committed contract version.
    pub version: u64,
    /// When the update was submitted (virtual ms).
    pub submitted_ms: u64,
    /// When the permission-checked transaction committed on chain.
    pub committed_ms: u64,
    /// When the last sharing peer had fetched and applied the new data.
    pub visible_ms: u64,
    /// When all acks had committed (the table unlocked for new updates).
    pub synced_ms: u64,
    /// Attributes that changed (what permission was checked on).
    pub changed_attrs: Vec<String>,
    /// Rows shipped to each sharing peer (changed rows in delta mode,
    /// the whole table in full-table mode).
    pub rows_moved: u64,
    /// Total data-plane payload bytes this update moved (all receivers).
    pub bytes_moved: u64,
    /// The on-chain transactions this update produced, in commit order
    /// (the `request_update` first, then one ack per sharing peer).
    /// Cascade transactions live in the cascades' own reports.
    pub tx_ids: Vec<TxId>,
    /// Cascaded updates triggered by the Step-6 dependency check.
    pub cascades: Vec<UpdateReport>,
    /// Cascades that could not proceed (permission denied or
    /// untranslatable), recorded as `(table_id, reason)`. The parent
    /// update itself stays committed; the blocked peer retains a pending
    /// local difference it can retry after obtaining permission.
    pub failed_cascades: Vec<(String, String)>,
    /// The numbered Fig. 5 trace.
    pub trace: WorkflowTrace,
}

impl UpdateReport {
    /// End-to-end latency until all peers saw the data.
    pub fn visibility_latency_ms(&self) -> u64 {
        self.visible_ms - self.submitted_ms
    }

    /// Latency until the table was unlocked for the next update.
    pub fn sync_latency_ms(&self) -> u64 {
        self.synced_ms - self.submitted_ms
    }

    /// Total number of updates including cascades.
    pub fn total_updates(&self) -> usize {
        1 + self
            .cascades
            .iter()
            .map(UpdateReport::total_updates)
            .sum::<usize>()
    }
}

/// The whole simulated deployment.
pub struct System {
    /// Configuration.
    pub config: SystemConfig,
    peers: BTreeMap<AccountId, PeerNode>,
    names: BTreeMap<String, AccountId>,
    chain: Chain,
    runtime: ContractRuntime,
    mempool: Mempool,
    schedule: ProposerSchedule,
    admin: KeyPair,
    contract: Option<Hash256>,
    clock_ms: u64,
    last_block_ms: u64,
    pow: Option<PowModel>,
    prg: Prg,
    receipts: BTreeMap<TxId, (u64, Receipt)>,
    stats: SystemStats,
}

impl System {
    /// Builds a system with the given configuration.
    pub fn new(config: SystemConfig) -> Self {
        let validator_keys: Vec<KeyPair> = (0..config.n_validators.max(1))
            .map(|i| KeyPair::generate(&format!("{}-validator-{i}", config.seed), 2))
            .collect();
        let admin = KeyPair::generate(&format!("{}-admin", config.seed), 64);
        let mut membership = Membership::new([admin.public()]);
        for v in &validator_keys {
            membership.add_validator(v.public());
        }
        let schedule = ProposerSchedule::new(validator_keys.iter().map(|k| k.public()).collect());
        let genesis_proposer = schedule.proposer(0, 0);
        let chain = Chain::new(membership, genesis_proposer);
        let pow = match &config.consensus {
            ConsensusKind::PublicPow { mean_interval_ms } => {
                Some(PowModel::new(*mean_interval_ms, &config.seed))
            }
            ConsensusKind::PrivatePbft { .. } => None,
        };
        let prg = Prg::from_label(&format!("{}-system", config.seed));
        System {
            peers: BTreeMap::new(),
            names: BTreeMap::new(),
            chain,
            runtime: ContractRuntime::new(),
            mempool: Mempool::new(),
            schedule,
            admin,
            contract: None,
            clock_ms: 0,
            last_block_ms: 0,
            pow,
            prg,
            receipts: BTreeMap::new(),
            stats: SystemStats::default(),
            config,
        }
    }

    /// A default system with the sharing contract deployed.
    pub fn bootstrap(config: SystemConfig) -> Result<Self> {
        let mut sys = Self::new(config);
        sys.deploy_sharing_contract()?;
        Ok(sys)
    }

    // ----- accessors -------------------------------------------------

    /// Current virtual time (ms).
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// The chain.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The contract runtime.
    pub fn runtime(&self) -> &ContractRuntime {
        &self.runtime
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// The sharing contract id (after [`System::deploy_sharing_contract`]).
    pub fn sharing_contract(&self) -> Result<Hash256> {
        self.contract
            .ok_or_else(|| CoreError::BadAgreement("sharing contract not deployed".into()))
    }

    /// Looks up a registered peer's typed handle by display name.
    pub fn peer_id(&self, name: &str) -> Result<PeerId> {
        self.names
            .get(name)
            .copied()
            .map(PeerId::from_account)
            .ok_or_else(|| CoreError::UnknownPeer(name.to_string()))
    }

    /// All registered peers, in account order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers
            .keys()
            .copied()
            .map(PeerId::from_account)
            .collect()
    }

    /// Read access to a peer.
    pub fn peer(&self, peer: PeerId) -> Result<&PeerNode> {
        self.peers
            .get(&peer.account())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// Mutable access to a peer.
    pub fn peer_mut(&mut self, peer: PeerId) -> Result<&mut PeerNode> {
        self.peers
            .get_mut(&peer.account())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// The Fig. 3 metadata row for a shared table, from contract state.
    pub fn share_meta(&self, table_id: &str) -> Result<SharedTableMeta> {
        let contract = self.sharing_contract()?;
        let state = self
            .runtime
            .contract_state(&contract)
            .ok_or_else(|| CoreError::BadAgreement("contract state missing".into()))?;
        SharingContract::load_meta(state, table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// The chronological on-chain history of a shared table (the paper's
    /// auditability property).
    pub fn audit(&self, table_id: &str) -> Vec<audit::AuditEntry> {
        audit::history_for_key(&self.chain, table_id)
    }

    // ----- membership & deployment -----------------------------------

    /// Adds a peer to the network, returning its typed handle.
    pub fn add_peer(&mut self, name: &str) -> Result<PeerId> {
        if self.names.contains_key(name) {
            return Err(CoreError::BadAgreement(format!("peer `{name}` exists")));
        }
        let peer = PeerNode::new(
            name,
            &self.config.seed,
            self.config.peer_key_capacity,
            self.config.propagation,
        );
        let account = peer.account;
        self.chain.membership_mut().add_member(account);
        self.names.insert(name.to_string(), account);
        self.peers.insert(account, peer);
        Ok(PeerId::from_account(account))
    }

    /// Deploys the sharing contract (admin transaction + one block).
    pub fn deploy_sharing_contract(&mut self) -> Result<Hash256> {
        if let Some(c) = self.contract {
            return Ok(c);
        }
        let nonce = self.chain.expected_nonce(&self.admin.public());
        let tx = Transaction {
            sender: self.admin.public(),
            nonce,
            payload: TxPayload::DeployContract {
                code: SharingContract::CODE_TAG.to_vec(),
                init: vec![],
            },
            conflict_key: None,
        };
        let stx = tx.sign(&mut self.admin)?;
        let id = stx.id();
        let contract = ContractRuntime::contract_id(&self.admin.public(), nonce);
        self.mempool.add(stx);
        self.produce_blocks_until_receipt(&id, 16)?;
        self.expect_success(&id)?;
        self.contract = Some(contract);
        Ok(contract)
    }

    // ----- block production -------------------------------------------

    /// Produces one block: waits for the next block slot, runs consensus,
    /// executes transactions, appends.
    ///
    /// Crate-internal: callers drive the chain through the facade's
    /// `UpdateBatch::commit()` (or [`System::propagate_update`]), never
    /// block by block.
    pub(crate) fn produce_block(&mut self) -> Result<()> {
        let interval = match &self.config.consensus {
            ConsensusKind::PrivatePbft { block_interval_ms } => *block_interval_ms,
            ConsensusKind::PublicPow { .. } => self
                .pow
                .as_mut()
                .expect("pow model present")
                .next_interval_ms(),
        };
        let slot = self.last_block_ms + interval;
        self.clock_ms = self.clock_ms.max(slot);
        self.last_block_ms = slot;

        let txs = self
            .mempool
            .select(self.config.max_block_txs, &BTreeSet::new());
        let height = self.chain.height() + 1;

        // Consensus: PBFT rounds add commit latency; the PoW model's
        // latency is the interval itself (a found block is announced).
        if let ConsensusKind::PrivatePbft { .. } = self.config.consensus {
            let digest = Block::tx_root(&txs);
            let payload: usize = txs.iter().map(SignedTransaction::encoded_len).sum();
            let round = PbftRound::new(PbftConfig {
                n: self.config.n_validators,
                latency: self.config.validator_latency.clone(),
                drop_rate: 0.0,
                timeout_ms: 2_000,
                seed: format!("{}-pbft", self.config.seed),
            })
            .payload_bytes(payload.max(64));
            let out = round.run(height, digest, 3_600_000);
            let commit = out
                .all_commit_ms
                .ok_or_else(|| CoreError::ConsensusFailed(format!("height {height}")))?;
            self.clock_ms += commit;
            self.stats.consensus_msgs += out.messages;
            self.stats.consensus_bytes += out.bytes;
        }

        // Execute.
        for stx in &txs {
            let receipt = self.runtime.execute(stx, height, self.clock_ms);
            if !receipt.status.is_success() {
                self.stats.reverted_txs += 1;
            }
            self.receipts.insert(stx.id(), (height, receipt));
        }
        let state_root = self.runtime.state_root();
        let proposer = self.schedule.proposer(height, 0);
        let block = Block::assemble(
            height,
            self.chain.tip().hash(),
            state_root,
            self.clock_ms,
            proposer,
            txs.clone(),
        );
        self.chain.append(block)?;
        self.mempool.remove_committed(&txs);
        self.stats.blocks += 1;
        self.stats.txs += txs.len() as u64;
        Ok(())
    }

    /// Produces blocks until `tx` has a receipt (or `max_blocks` passed).
    fn produce_blocks_until_receipt(&mut self, tx: &TxId, max_blocks: usize) -> Result<()> {
        for _ in 0..max_blocks {
            if self.receipts.contains_key(tx) {
                return Ok(());
            }
            self.produce_block()?;
        }
        if self.receipts.contains_key(tx) {
            Ok(())
        } else {
            Err(CoreError::ConsensusFailed(format!(
                "tx {} not committed within {max_blocks} blocks",
                tx.short()
            )))
        }
    }

    /// The receipt of a committed transaction.
    pub fn receipt(&self, tx: &TxId) -> Option<&Receipt> {
        self.receipts.get(tx).map(|(_, r)| r)
    }

    fn expect_success(&self, tx: &TxId) -> Result<()> {
        match self.receipt(tx) {
            Some(r) => match &r.status {
                TxStatus::Success => Ok(()),
                TxStatus::Reverted { kind, reason } => Err(CoreError::TxReverted(RevertInfo {
                    tx_id: *tx,
                    kind: *kind,
                    reason: reason.clone(),
                })),
            },
            None => Err(CoreError::ConsensusFailed("receipt missing".into())),
        }
    }

    /// Signs and submits a contract call from a peer; returns the tx id.
    fn submit_call(
        &mut self,
        sender: AccountId,
        method: &str,
        args: &impl serde::Serialize,
        conflict_key: Option<String>,
    ) -> Result<TxId> {
        let contract = self.sharing_contract()?;
        let peer = self
            .peers
            .get_mut(&sender)
            .ok_or_else(|| CoreError::UnknownPeer(sender.to_string()))?;
        let tx = Transaction {
            sender,
            nonce: peer.take_nonce(),
            payload: TxPayload::CallContract {
                contract,
                method: method.into(),
                args: serde_json::to_vec(args).expect("args serialize"),
            },
            conflict_key,
        };
        let stx = tx.sign(&mut peer.keys)?;
        let id = stx.id();
        self.mempool.add(stx);
        Ok(id)
    }

    // ----- sharing lifecycle ------------------------------------------

    /// Creates a shared table from an agreement: verifies that every
    /// peer's lens produces the **same** initial view, registers the
    /// Fig. 3 metadata on the contract, and materializes local copies.
    pub fn create_share(&mut self, agreement: &SharingAgreement) -> Result<()> {
        if agreement.bindings.len() < 2 {
            return Err(CoreError::BadAgreement(
                "a share needs at least two peers".into(),
            ));
        }
        // Pre-check: identical initial views (the paper's "formats and
        // contents of shared data are predefined by sharing peers").
        let mut initial_hash: Option<Hash256> = None;
        for (account, binding) in &agreement.bindings {
            let peer = self
                .peers
                .get(account)
                .ok_or_else(|| CoreError::UnknownPeer(account.to_string()))?;
            let source = peer.db.table(&binding.source_table)?;
            let view = medledger_bx::exec::get(&binding.lens, source)?;
            let h = view.content_hash();
            match initial_hash {
                None => initial_hash = Some(h),
                Some(prev) if prev != h => {
                    return Err(CoreError::BadAgreement(format!(
                        "peer {} derives a different initial view for `{}` \
                         ({} vs {})",
                        peer.name,
                        agreement.table_id,
                        h.short(),
                        prev.short()
                    )));
                }
                _ => {}
            }
        }
        let initial_hash = initial_hash.expect("at least two bindings");

        // Register on chain (the authority is the registrar).
        let args = RegisterShareArgs {
            table_id: agreement.table_id.clone(),
            peers: agreement.peers(),
            write_permission: agreement.write_permission.clone(),
            authority: agreement.authority,
            initial_hash,
        };
        let tx = self.submit_call(
            agreement.authority,
            "register_share",
            &args,
            Some(agreement.table_id.clone()),
        )?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)?;

        // Materialize local copies.
        for (account, binding) in &agreement.bindings {
            let peer = self.peers.get_mut(account).expect("checked above");
            peer.join_share(&agreement.table_id, binding.clone())?;
        }
        Ok(())
    }

    /// Changes an attribute's writer set (authority only; Fig. 3's
    /// "Doctor can change the permission for updating Dosage").
    pub fn change_permission(
        &mut self,
        authority: PeerId,
        table_id: &str,
        attr: &str,
        writers: &[PeerId],
    ) -> Result<()> {
        let args = ChangePermissionArgs {
            table_id: table_id.to_string(),
            attr: attr.to_string(),
            writers: writers.iter().map(PeerId::account).collect(),
        };
        let tx = self.submit_call(
            authority.account(),
            "change_permission",
            &args,
            Some(table_id.to_string()),
        )?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)
    }

    /// Table-level delete (Fig. 4): the authority retires the share on
    /// chain; every participating peer then drops its local copy and
    /// binding. Sources keep the data — only the sharing relationship
    /// ends. The chain retains the full audit history.
    pub fn remove_share(&mut self, authority: PeerId, table_id: &str) -> Result<()> {
        let authority = authority.account();
        let meta = self.share_meta(table_id)?;
        let args = serde_json::json!({ "table_id": table_id });
        let tx = self.submit_call(authority, "remove_share", &args, Some(table_id.to_string()))?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)?;
        for account in &meta.peers {
            if let Some(peer) = self.peers.get_mut(account) {
                // A peer may have already left locally; ignore that case.
                let _ = peer.leave_share(table_id);
            }
        }
        Ok(())
    }

    // ----- the Fig. 5 workflow ----------------------------------------

    /// Propagates a pending local change of `table_id` from `updater` to
    /// all sharing peers, running the full Fig. 5 workflow including the
    /// Step-6 dependency check and recursive cascades (Steps 7–11).
    pub fn propagate_update(&mut self, updater: PeerId, table_id: &str) -> Result<UpdateReport> {
        let mut active = BTreeSet::new();
        self.propagate_inner(updater.account(), table_id, &mut active, 0)
    }

    fn propagate_inner(
        &mut self,
        updater: AccountId,
        table_id: &str,
        active: &mut BTreeSet<String>,
        depth: usize,
    ) -> Result<UpdateReport> {
        if depth > 16 {
            return Err(CoreError::ConsistencyViolation(
                "cascade depth exceeded 16 — cyclic sharing topology?".into(),
            ));
        }
        match self.config.propagation {
            PropagationMode::Delta => self.propagate_delta(updater, table_id, active, depth),
            PropagationMode::FullTable => self.propagate_full(updater, table_id, active, depth),
        }
    }

    /// Delta propagation: the hot path. The updater ships only the rows
    /// its update touched; every layer (diff, permission attrs, transfer,
    /// remote apply, baseline advance, step-6 check) runs in O(changed
    /// rows), with the incremental content digest carrying the hash
    /// verification.
    fn propagate_delta(
        &mut self,
        updater: AccountId,
        table_id: &str,
        active: &mut BTreeSet<String>,
        depth: usize,
    ) -> Result<UpdateReport> {
        active.insert(table_id.to_string());
        let mut trace = WorkflowTrace::default();
        let submitted_ms = self.clock_ms;

        // Step 1: the pending delta relative to the committed baseline
        // (tracked at write time; falls back to a full diff only for
        // out-of-band edits).
        let (updater_name, delta, attrs, new_hash) = {
            let peer = self
                .peers
                .get_mut(&updater)
                .ok_or_else(|| CoreError::UnknownPeer(updater.to_string()))?;
            let delta = peer.prepare_update_delta(table_id)?;
            if delta.is_empty() {
                active.remove(table_id);
                return Err(CoreError::NoChange(table_id.to_string()));
            }
            let attrs: Vec<String> = changed_attrs_from_delta(peer.baseline(table_id)?, &delta)
                .into_iter()
                .collect();
            let new_hash = peer.shared_hash(table_id)?;
            (peer.name.clone(), delta, attrs, new_hash)
        };
        trace.push(
            "1",
            self.clock_ms,
            &updater_name,
            format!(
                "computed `{table_id}` delta via BX-get-delta ({} row(s)); changed attrs: [{}]",
                delta.row_count(),
                attrs.join(", ")
            ),
        );

        // Pre-flight: every sharing peer must be able to translate the
        // delta into its source (`put_delta` must succeed) *before*
        // anything commits on chain. The translated source deltas are
        // kept and reused at apply time.
        let meta0 = self.share_meta(table_id)?;
        let mut source_deltas: BTreeMap<AccountId, TableDelta> = BTreeMap::new();
        for other in meta0.peers.iter().filter(|p| **p != updater) {
            let peer = self
                .peers
                .get(other)
                .ok_or_else(|| CoreError::UnknownPeer(other.to_string()))?;
            let translated = peer.translate_remote_delta(table_id, &delta)?;
            source_deltas.insert(*other, translated);
        }

        // Step 2: request the update from the smart contract (metadata
        // only — hash + changed attrs; the delta itself never touches
        // the chain).
        let args = RequestUpdateArgs {
            table_id: table_id.to_string(),
            new_hash,
            changed_attrs: attrs.clone(),
        };
        let tx = self.submit_call(updater, "request_update", &args, Some(table_id.to_string()))?;
        trace.push(
            "2",
            self.clock_ms,
            &updater_name,
            format!("sent update request tx {} to sharing contract", tx.short()),
        );

        // Step 3: consensus + permission verification.
        self.produce_blocks_until_receipt(&tx, 32)?;
        if let Err(e) = self.expect_success(&tx) {
            trace.push(
                "3",
                self.clock_ms,
                "contract",
                format!("permission DENIED: {e}"),
            );
            active.remove(table_id);
            return Err(e);
        }
        let committed_ms = self.clock_ms;
        let meta = self.share_meta(table_id)?;
        let version = meta.version;
        trace.push(
            "3",
            committed_ms,
            "contract",
            format!(
                "permission verified; update committed at height {} (version {version})",
                self.chain.height()
            ),
        );

        // The updater's baseline advances by the committed delta (its
        // stored copy already reflects it).
        {
            let peer = self.peers.get_mut(&updater).expect("updater exists");
            peer.commit_delta(table_id, &delta, version)?;
        }

        // Steps 4–5: every other sharing peer fetches the delta and
        // applies it — stored copy, source (via the pre-translated
        // put_delta result), and committed baseline all advance by
        // exactly the changed rows.
        let others: Vec<AccountId> = meta
            .peers
            .iter()
            .copied()
            .filter(|p| *p != updater)
            .collect();
        let delta_bytes = delta.encoded_size() as u64;
        let full_table_bytes: u64 = {
            let peer = self.peers.get(&updater).expect("updater exists");
            peer.shared_table(table_id)?
                .rows()
                .map(|r| r.encode().len() as u64)
                .sum()
        };
        let mut visible_ms = committed_ms;
        let mut bytes_moved = 0u64;
        let mut appliers: Vec<AccountId> = Vec::new();
        for other in &others {
            let notify = self.config.p2p_latency.sample(&mut self.prg);
            let fetch = self.config.p2p_latency.sample(&mut self.prg)
                + self.config.p2p_latency.sample(&mut self.prg);
            let t_applied = committed_ms + notify + fetch;
            visible_ms = visible_ms.max(t_applied);
            self.stats.p2p_transfers += 1;
            self.stats.p2p_bytes += delta_bytes;
            self.stats.data_plane.record(&DataTransfer {
                kind: PayloadKind::Delta,
                rows: delta.row_count() as u64,
                bytes: delta_bytes,
                full_table_bytes,
            });
            bytes_moved += delta_bytes;
            let source_delta = source_deltas.remove(other).expect("pre-flight ran");
            let peer = self.peers.get_mut(other).expect("peer exists");
            let peer_name = peer.name.clone();
            trace.push(
                "4",
                t_applied,
                &peer_name,
                format!(
                    "fetched `{table_id}` delta ({} row(s)) from {updater_name}",
                    delta.row_count()
                ),
            );
            peer.apply_remote_delta(table_id, &delta, &source_delta, new_hash, version)?;
            trace.push(
                "5",
                t_applied,
                &peer_name,
                format!("reflected `{table_id}` delta into source via BX-put"),
            );
            appliers.push(*other);
        }
        self.clock_ms = self.clock_ms.max(visible_ms);

        // Acks: peers confirm on chain; the table stays locked until all
        // acks commit (the paper's barrier).
        let mut ack_txs = Vec::with_capacity(others.len());
        for other in &others {
            let ack = AckUpdateArgs {
                table_id: table_id.to_string(),
                version,
                applied_hash: new_hash,
            };
            let tx = self.submit_call(*other, "ack_update", &ack, Some(table_id.to_string()))?;
            ack_txs.push(tx);
        }
        for tx in &ack_txs {
            self.produce_blocks_until_receipt(tx, 32)?;
            self.expect_success(tx)?;
        }
        let synced_ms = self.clock_ms;
        if !others.is_empty() {
            trace.push(
                "m",
                synced_ms,
                "contract",
                format!(
                    "all {} peer(s) acked version {version}; table unlocked",
                    others.len()
                ),
            );
        }

        // Step 6: dependency check. In delta mode the answer is already
        // tracked: applying the update stashed a pending delta on every
        // sibling share whose lens the source delta touched.
        let mut cascades = Vec::new();
        let mut failed_cascades: Vec<(String, String)> = Vec::new();
        let mut participants = appliers;
        participants.push(updater);
        for account in participants {
            let candidates = {
                let peer = self.peers.get(&account).expect("peer exists");
                peer.overlapping_shares(table_id)?
            };
            for other_table in candidates {
                if active.contains(&other_table) {
                    continue;
                }
                let (peer_name, differs) = {
                    let peer = self.peers.get(&account).expect("peer exists");
                    (peer.name.clone(), peer.has_pending_change(&other_table)?)
                };
                trace.push(
                    "6",
                    self.clock_ms,
                    &peer_name,
                    format!(
                        "dependency check: `{other_table}` overlaps `{table_id}`; {}",
                        if differs {
                            "content changed → cascade (steps 7-11)"
                        } else {
                            "content unchanged → no cascade"
                        }
                    ),
                );
                if differs {
                    match self.propagate_inner(account, &other_table, active, depth + 1) {
                        Ok(report) => cascades.push(report),
                        // A denied or untranslatable cascade must not roll
                        // back the committed parent update; record it. The
                        // blocked peer keeps its pending delta to retry.
                        Err(
                            e @ (CoreError::TxReverted(_)
                            | CoreError::Bx(_)
                            | CoreError::NoChange(_)),
                        ) => {
                            trace.push(
                                "6",
                                self.clock_ms,
                                &peer_name,
                                format!("cascade into `{other_table}` blocked: {e}"),
                            );
                            failed_cascades.push((other_table.clone(), e.to_string()));
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        active.remove(table_id);
        Ok(UpdateReport {
            table_id: table_id.to_string(),
            version,
            submitted_ms,
            committed_ms,
            visible_ms,
            synced_ms,
            changed_attrs: attrs,
            rows_moved: delta.row_count() as u64,
            bytes_moved,
            tx_ids: {
                let mut ids = vec![tx];
                ids.extend(ack_txs.iter().copied());
                ids
            },
            cascades,
            failed_cascades,
            trace,
        })
    }

    /// Full-table propagation: the paper-literal baseline. Whole tables
    /// are regenerated, diffed, exchanged and re-`put` on every update.
    fn propagate_full(
        &mut self,
        updater: AccountId,
        table_id: &str,
        active: &mut BTreeSet<String>,
        depth: usize,
    ) -> Result<UpdateReport> {
        active.insert(table_id.to_string());
        let mut trace = WorkflowTrace::default();
        let submitted_ms = self.clock_ms;

        // Step 1: regenerate the view from the updated source and diff
        // against the last committed baseline.
        let (updater_name, current_view, attrs) = {
            let peer = self
                .peers
                .get(&updater)
                .ok_or_else(|| CoreError::UnknownPeer(updater.to_string()))?;
            let current = peer.regenerate_view(table_id)?;
            let baseline = peer.baseline(table_id)?;
            let attrs: Vec<String> = changed_attrs(baseline, &current).into_iter().collect();
            (peer.name.clone(), current, attrs)
        };
        if attrs.is_empty() {
            active.remove(table_id);
            return Err(CoreError::NoChange(table_id.to_string()));
        }
        let new_hash = current_view.content_hash();
        trace.push(
            "1",
            self.clock_ms,
            &updater_name,
            format!(
                "regenerated `{table_id}` via BX-get; changed attrs: [{}]",
                attrs.join(", ")
            ),
        );

        // Pre-flight: every sharing peer must be able to translate the
        // new view into its source (`put` must succeed) *before* anything
        // commits on chain — otherwise a peer could be left unable to
        // apply an already-committed update.
        {
            let meta0 = self.share_meta(table_id)?;
            for other in meta0.peers.iter().filter(|p| **p != updater) {
                let peer = self
                    .peers
                    .get(other)
                    .ok_or_else(|| CoreError::UnknownPeer(other.to_string()))?;
                let binding = peer.binding(table_id)?;
                let source = peer.db.table(&binding.source_table)?;
                medledger_bx::exec::put(&binding.lens, source, &current_view)?;
            }
        }

        // Step 2: request the update from the smart contract.
        let args = RequestUpdateArgs {
            table_id: table_id.to_string(),
            new_hash,
            changed_attrs: attrs.clone(),
        };
        let tx = self.submit_call(updater, "request_update", &args, Some(table_id.to_string()))?;
        trace.push(
            "2",
            self.clock_ms,
            &updater_name,
            format!("sent update request tx {} to sharing contract", tx.short()),
        );

        // Step 3: consensus + permission verification.
        self.produce_blocks_until_receipt(&tx, 32)?;
        if let Err(e) = self.expect_success(&tx) {
            trace.push(
                "3",
                self.clock_ms,
                "contract",
                format!("permission DENIED: {e}"),
            );
            active.remove(table_id);
            return Err(e);
        }
        let committed_ms = self.clock_ms;
        let meta = self.share_meta(table_id)?;
        let version = meta.version;
        trace.push(
            "3",
            committed_ms,
            "contract",
            format!(
                "permission verified; update committed at height {} (version {version})",
                self.chain.height()
            ),
        );

        // The updater's copy and baseline advance to the committed view.
        {
            let peer = self.peers.get_mut(&updater).expect("updater exists");
            peer.commit_view(table_id, &current_view, version)?;
        }

        // Steps 4–5: every other sharing peer is notified, fetches the
        // data from the updater, applies it, and reflects it into its
        // source via BX-put.
        let others: Vec<AccountId> = meta
            .peers
            .iter()
            .copied()
            .filter(|p| *p != updater)
            .collect();
        let view_bytes: u64 = current_view.rows().map(|r| r.encode().len() as u64).sum();
        let mut visible_ms = committed_ms;
        let mut bytes_moved = 0u64;
        let mut appliers: Vec<AccountId> = Vec::new();
        for other in &others {
            let notify = self.config.p2p_latency.sample(&mut self.prg);
            let fetch = self.config.p2p_latency.sample(&mut self.prg)
                + self.config.p2p_latency.sample(&mut self.prg);
            let t_applied = committed_ms + notify + fetch;
            visible_ms = visible_ms.max(t_applied);
            self.stats.p2p_transfers += 1;
            self.stats.p2p_bytes += view_bytes;
            self.stats.data_plane.record(&DataTransfer {
                kind: PayloadKind::FullTable,
                rows: current_view.len() as u64,
                bytes: view_bytes,
                full_table_bytes: view_bytes,
            });
            bytes_moved += view_bytes;
            let peer = self.peers.get_mut(other).expect("peer exists");
            let peer_name = peer.name.clone();
            trace.push(
                "4",
                t_applied,
                &peer_name,
                format!("fetched updated `{table_id}` from {updater_name}"),
            );
            peer.apply_remote_view(table_id, &current_view, new_hash, version)?;
            trace.push(
                "5",
                t_applied,
                &peer_name,
                format!("reflected `{table_id}` into source via BX-put"),
            );
            appliers.push(*other);
        }
        self.clock_ms = self.clock_ms.max(visible_ms);

        // Acks: peers confirm on chain; the table stays locked until all
        // acks commit (the paper's barrier).
        let mut ack_txs = Vec::with_capacity(others.len());
        for other in &others {
            let ack = AckUpdateArgs {
                table_id: table_id.to_string(),
                version,
                applied_hash: new_hash,
            };
            let tx = self.submit_call(*other, "ack_update", &ack, Some(table_id.to_string()))?;
            ack_txs.push(tx);
        }
        for tx in &ack_txs {
            self.produce_blocks_until_receipt(tx, 32)?;
            self.expect_success(tx)?;
        }
        let synced_ms = self.clock_ms;
        if !others.is_empty() {
            trace.push(
                "m",
                synced_ms,
                "contract",
                format!(
                    "all {} peer(s) acked version {version}; table unlocked",
                    others.len()
                ),
            );
        }

        // Step 6: dependency check on every peer that applied the change
        // (and the updater itself): do other shares on the same source
        // overlap and now differ from their committed baseline?
        let mut cascades = Vec::new();
        let mut failed_cascades: Vec<(String, String)> = Vec::new();
        let mut participants = appliers;
        participants.push(updater);
        for account in participants {
            let candidates = {
                let peer = self.peers.get(&account).expect("peer exists");
                peer.overlapping_shares(table_id)?
            };
            for other_table in candidates {
                if active.contains(&other_table) {
                    continue;
                }
                let (peer_name, differs) = {
                    let peer = self.peers.get(&account).expect("peer exists");
                    let regenerated = peer.regenerate_view(&other_table)?;
                    let baseline = peer.baseline(&other_table)?;
                    (
                        peer.name.clone(),
                        !changed_attrs(baseline, &regenerated).is_empty(),
                    )
                };
                trace.push(
                    "6",
                    self.clock_ms,
                    &peer_name,
                    format!(
                        "dependency check: `{other_table}` overlaps `{table_id}`; {}",
                        if differs {
                            "content changed → cascade (steps 7-11)"
                        } else {
                            "content unchanged → no cascade"
                        }
                    ),
                );
                if differs {
                    match self.propagate_inner(account, &other_table, active, depth + 1) {
                        Ok(report) => cascades.push(report),
                        // A denied or untranslatable cascade must not roll
                        // back the committed parent update; record it.
                        Err(
                            e @ (CoreError::TxReverted(_)
                            | CoreError::Bx(_)
                            | CoreError::NoChange(_)),
                        ) => {
                            trace.push(
                                "6",
                                self.clock_ms,
                                &peer_name,
                                format!("cascade into `{other_table}` blocked: {e}"),
                            );
                            failed_cascades.push((other_table.clone(), e.to_string()));
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        active.remove(table_id);
        Ok(UpdateReport {
            table_id: table_id.to_string(),
            version,
            submitted_ms,
            committed_ms,
            visible_ms,
            synced_ms,
            changed_attrs: attrs,
            rows_moved: current_view.len() as u64,
            bytes_moved,
            tx_ids: {
                let mut ids = vec![tx];
                ids.extend(ack_txs.iter().copied());
                ids
            },
            cascades,
            failed_cascades,
            trace,
        })
    }

    // ----- Fig. 4 CRUD on shared data ----------------------------------

    /// Entry-level create on a shared table: insert locally (reflected
    /// into the source via `put`), then propagate.
    pub fn create_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        row: medledger_relational::Row,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Insert { row })?;
        self.propagate_update(peer, table_id)
    }

    /// Entry-level update on a shared table.
    pub fn update_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        key: Vec<medledger_relational::Value>,
        assignments: Vec<(String, medledger_relational::Value)>,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Update { key, assignments })?;
        self.propagate_update(peer, table_id)
    }

    /// Entry-level delete on a shared table.
    pub fn delete_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        key: Vec<medledger_relational::Value>,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Delete { key })?;
        self.propagate_update(peer, table_id)
    }

    /// Read: query the local database directly (the paper's Fig. 4 read
    /// path — no chain interaction).
    pub fn read_shared(&self, peer: PeerId, table_id: &str) -> Result<medledger_relational::Table> {
        Ok(self.peer(peer)?.shared_table(table_id)?.clone())
    }

    // ----- invariants ---------------------------------------------------

    /// Verifies the paper's core promise: for every *synced* shared
    /// table, every sharing peer's committed data matches the hash the
    /// contract committed, **and** the peer's stored copy agrees with
    /// that committed state plus whatever pending local delta it tracks
    /// (a peer with a permission-blocked cascade awaiting retry carries
    /// such a pending change; everything it serves is still accounted
    /// for). See [`PeerNode::check_share_integrity`].
    pub fn check_consistency(&self) -> Result<()> {
        let contract = self.sharing_contract()?;
        let state = self
            .runtime
            .contract_state(&contract)
            .ok_or_else(|| CoreError::BadAgreement("contract state missing".into()))?;
        for table_id in SharingContract::table_ids(state) {
            let meta =
                SharingContract::load_meta(state, &table_id).expect("listed tables have metadata");
            if !meta.synced() {
                continue;
            }
            for account in &meta.peers {
                let peer = self
                    .peers
                    .get(account)
                    .ok_or_else(|| CoreError::UnknownPeer(account.to_string()))?;
                peer.check_share_integrity(&table_id, meta.content_hash)?;
            }
        }
        Ok(())
    }
}
