//! The assembled system: peers + chain + contract + consensus, and the
//! Fig. 4 / Fig. 5 workflows.

use crate::agreement::SharingAgreement;
use crate::error::{CoreError, RevertInfo};
pub use crate::peer::PropagationMode;
use crate::peer::{run_shard_job, PeerNode, RemoteApply, RemoteShardPlan};
use crate::Result;
use medledger_bx::{changed_attrs, changed_attrs_from_delta, TableDelta};
use medledger_consensus::{PbftConfig, PbftRound, PipelineSchedule, PowModel, ProposerSchedule};
use medledger_contracts::sharing::{
    AckAggregateArgs, AckUpdateArgs, ChangePermissionArgs, CoRequestUpdateArgs, RegisterShareArgs,
    RequestUpdateArgs,
};
use medledger_contracts::{ContractRuntime, SharedTableMeta, SharingContract};
use medledger_crypto::{ack_message, fold_attestation, Hash256, KeyPair, Prg, Signature};
use medledger_ledger::{
    audit, AccountId, Block, Chain, Membership, Mempool, Receipt, SignedTransaction, Transaction,
    TxId, TxPayload, TxStatus,
};
use medledger_network::{fanout, DataPlaneStats, DataTransfer, LatencyModel, PayloadKind};
use medledger_relational::normalize_shard_count;
use medledger_relational::{Table, WriteOp};
use medledger_telemetry::{Recorder, StageTimer};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Typed handle to a peer registered in a [`System`].
///
/// Wraps the peer's ledger account identity; obtained from
/// [`System::add_peer`] (or the facade's `MedLedger::add_peer`) and used
/// everywhere a peer used to be named by a raw `&str`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(AccountId);

impl PeerId {
    /// The underlying ledger account (also the public signing key).
    pub fn account(&self) -> AccountId {
        self.0
    }

    /// Short hex prefix for traces.
    pub fn short(&self) -> String {
        self.0.short()
    }

    pub(crate) fn from_account(account: AccountId) -> Self {
        PeerId(account)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.short())
    }
}

/// Which chain the system runs on (the paper's Sec. IV-3 comparison).
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusKind {
    /// Private permissioned chain: PBFT validators, fixed block interval.
    PrivatePbft {
        /// Target block interval (virtual ms).
        block_interval_ms: u64,
    },
    /// Public proof-of-work model: exponential block intervals (Ethereum's
    /// ~12 s mean in the paper's Sec. IV-1).
    PublicPow {
        /// Mean block interval (virtual ms).
        mean_interval_ms: u64,
    },
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of PBFT validators (ignored for PoW, which models external
    /// miners).
    pub n_validators: usize,
    /// Chain flavor.
    pub consensus: ConsensusKind,
    /// Validator-to-validator latency.
    pub validator_latency: LatencyModel,
    /// Peer-to-peer data-plane latency (the Fig. 2 "send/request updated
    /// data" path).
    pub p2p_latency: LatencyModel,
    /// Simulation seed.
    pub seed: String,
    /// Max transactions per block.
    pub max_block_txs: usize,
    /// One-time signing keys per peer (bounds how many txs each peer can
    /// send).
    pub peer_key_capacity: usize,
    /// How shared-table updates travel between peers: row-level deltas
    /// (the default hot path) or whole tables (the baseline).
    pub propagation: PropagationMode,
    /// Parallel data-plane channels for the per-receiver fan-out
    /// (Fig. 5 steps 4–5): how many receivers fetch and apply an update
    /// concurrently. `0` (the default) means one channel per receiver —
    /// every transfer overlaps — while `1` models the paper-literal
    /// serial baseline where receivers are served one after another. The
    /// same number sizes the `std::thread` worker pool that executes the
    /// per-receiver verify/apply work (with `0` using whatever
    /// parallelism the host offers). Thread count never changes results,
    /// only wall-clock; the virtual-time schedule depends only on this
    /// configured value.
    pub fanout_workers: usize,
    /// Key-range shards per shared table (normalized to a power of two
    /// in `1..=256`). With `1` — the default and the equivalence
    /// baseline — peers store shared tables exactly as before. A larger
    /// value splits every peer's stored copies and baselines into
    /// digest-aligned shards (delta mode): deltas route to the shards
    /// they land in, hash verification folds cached per-shard Merkle
    /// subroots instead of rehashing the whole chunk tree, and one
    /// receiver's disjoint shards apply in parallel on the fan-out
    /// worker pool. Final state, hashes, traces and receipts are
    /// byte-identical for every setting.
    pub shards_per_table: usize,
    /// Fold every receiver's acknowledgement of a committed update into
    /// **one** aggregated threshold-ack transaction per `(table, wave)`
    /// (the default): each receiver signs the canonical ack message with
    /// its own one-time key, the updater verifies the shares off-chain,
    /// folds them into a single attestation and submits
    /// `ack_update_aggregate` under a derived conflict key — so the ack
    /// side of a wave costs O(1) blocks regardless of the receiver
    /// count. `false` restores the legacy one-`ack_update`-per-receiver
    /// round (still exercised by the equivalence tests).
    pub aggregated_acks: bool,
    /// Consensus pipeline depth. `1` (the default) is the serial
    /// schedule: a round's PBFT pre-prepare waits for the previous
    /// wave's fan-out. `d > 1` overlaps up to `d` rounds: the next
    /// round is admitted as soon as the block `d - 1` rounds back was
    /// sealed, hiding consensus latency behind the data plane (see
    /// [`medledger_consensus::PipelineSchedule`]). Replay-deterministic:
    /// recovery reseeds the schedule from the chain's block timestamps.
    pub pipeline_depth: usize,
    /// Durable-storage tuning (snapshot cadence). Only consulted when a
    /// [`medledger_storage::StorageBackend`] is attached — the default
    /// in-memory deployment ignores it entirely.
    pub storage: crate::persist::StorageOptions,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_validators: 4,
            consensus: ConsensusKind::PrivatePbft {
                block_interval_ms: 1_000,
            },
            validator_latency: LatencyModel::lan(),
            p2p_latency: LatencyModel::wan(),
            seed: "medledger".into(),
            max_block_txs: 128,
            peer_key_capacity: 256,
            propagation: PropagationMode::Delta,
            fanout_workers: 0,
            shards_per_table: 1,
            aggregated_acks: true,
            pipeline_depth: 1,
            storage: crate::persist::StorageOptions::default(),
        }
    }
}

/// Aggregate system statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed (including reverted ones).
    pub txs: u64,
    /// Transactions that reverted.
    pub reverted_txs: u64,
    /// Consensus protocol messages delivered.
    pub consensus_msgs: u64,
    /// Consensus protocol bytes sent.
    pub consensus_bytes: u64,
    /// Peer-to-peer shared-data transfers.
    pub p2p_transfers: u64,
    /// Peer-to-peer bytes moved (serialized delta size in delta mode,
    /// encoded table size in full-table mode).
    pub p2p_bytes: u64,
    /// Detailed data-plane accounting, including the full-table-equivalent
    /// bytes each transfer would have cost (the bandwidth-win metric).
    pub data_plane: DataPlaneStats,
}

/// One numbered step of a workflow trace (matching the Fig. 5 numbering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Step label ("1" … "11"; cascades get "7"…"11").
    pub number: String,
    /// Virtual time of the step.
    pub at_ms: u64,
    /// Acting peer or component.
    pub actor: String,
    /// What happened.
    pub description: String,
}

/// A numbered trace of one update propagation (Fig. 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkflowTrace {
    /// The steps, in order.
    pub steps: Vec<TraceStep>,
}

impl WorkflowTrace {
    fn push(
        &mut self,
        number: impl Into<String>,
        at_ms: u64,
        actor: &str,
        desc: impl Into<String>,
    ) {
        self.steps.push(TraceStep {
            number: number.into(),
            at_ms,
            actor: actor.to_string(),
            description: desc.into(),
        });
    }

    /// Renders the trace as numbered lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&format!(
                "Step {:<4} [t={:>8} ms] {:<12} {}\n",
                s.number, s.at_ms, s.actor, s.description
            ));
        }
        out
    }
}

/// The outcome of one propagated update (and its cascades).
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The shared table updated.
    pub table_id: String,
    /// The committed contract version.
    pub version: u64,
    /// When the update was submitted (virtual ms).
    pub submitted_ms: u64,
    /// When the permission-checked transaction committed on chain.
    pub committed_ms: u64,
    /// When the last sharing peer had fetched and applied the new data.
    pub visible_ms: u64,
    /// When all acks had committed (the table unlocked for new updates).
    pub synced_ms: u64,
    /// Attributes that changed (what permission was checked on).
    pub changed_attrs: Vec<String>,
    /// Rows shipped to each sharing peer (changed rows in delta mode,
    /// the whole table in full-table mode).
    pub rows_moved: u64,
    /// Total data-plane payload bytes this update moved (all receivers).
    pub bytes_moved: u64,
    /// The on-chain transactions this update produced, in commit order:
    /// the `request_update` first, then the ack side — one aggregated
    /// threshold ack per wave by default (plus any individual dissent
    /// acks), or one ack per sharing peer in legacy mode.
    /// Cascade transactions live in the cascades' own reports.
    pub tx_ids: Vec<TxId>,
    /// Cascaded updates triggered by the Step-6 dependency check.
    pub cascades: Vec<UpdateReport>,
    /// Cascades that could not proceed (permission denied or
    /// untranslatable), recorded as `(table_id, reason)`. The parent
    /// update itself stays committed; the blocked peer retains a pending
    /// local difference it can retry after obtaining permission.
    pub failed_cascades: Vec<(String, String)>,
    /// The numbered Fig. 5 trace.
    pub trace: WorkflowTrace,
}

impl UpdateReport {
    /// End-to-end latency until all peers saw the data.
    pub fn visibility_latency_ms(&self) -> u64 {
        self.visible_ms - self.submitted_ms
    }

    /// Latency until the table was unlocked for the next update.
    pub fn sync_latency_ms(&self) -> u64 {
        self.synced_ms - self.submitted_ms
    }

    /// Total number of updates including cascades.
    pub fn total_updates(&self) -> usize {
        1 + self
            .cascades
            .iter()
            .map(UpdateReport::total_updates)
            .sum::<usize>()
    }
}

/// A co-author of a write-combined group member: a peer whose own delta
/// was composed into the lead updater's staged change. Each co-submitter
/// gets its own `co_request_update` transaction in the same block —
/// permission-checked on **its** declared attributes and individually
/// receipted (including denials, for which the engine deliberately
/// includes pre-screened riders so the refusal is on-chain auditable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoSubmitter {
    /// The co-authoring peer.
    pub peer: PeerId,
    /// The attributes this co-author's delta changed.
    pub attrs: Vec<String>,
}

/// One member of a group commit: a pending local change of `table_id`
/// already staged on `updater`, to be committed alongside the other
/// members in a single block and a single scheduled consensus round (see
/// [`System::commit_group`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupEntry {
    /// The peer whose staged change is being committed.
    pub updater: PeerId,
    /// The shared table the change targets (distinct per group member).
    pub table_id: String,
    /// For a write-combined member: the attributes the **lead** updater
    /// itself changed — what its `request_update` declares instead of the
    /// full (composed) changed-attribute set, so the contract checks each
    /// author's permission on each author's own attributes. `None` means
    /// the member is sole-authored and declares everything it changed.
    pub declared_attrs: Option<Vec<String>>,
    /// Co-authors whose deltas were composed into the member (empty for
    /// sole-authored members).
    pub co_submitters: Vec<CoSubmitter>,
}

impl GroupEntry {
    /// Convenience constructor for a sole-authored member.
    pub fn new(updater: PeerId, table_id: impl Into<String>) -> Self {
        GroupEntry {
            updater,
            table_id: table_id.into(),
            declared_attrs: None,
            co_submitters: Vec::new(),
        }
    }

    /// Restricts the lead's declared attributes (write-combined members).
    pub fn declaring(mut self, attrs: Vec<String>) -> Self {
        self.declared_attrs = Some(attrs);
        self
    }

    /// Adds a co-author with its declared attributes.
    pub fn with_co_submitter(mut self, peer: PeerId, attrs: Vec<String>) -> Self {
        self.co_submitters.push(CoSubmitter { peer, attrs });
        self
    }
}

/// How [`System::commit_group_with`] treats the Fig. 5 Step-6 cascades a
/// committed member triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CascadeMode {
    /// Run each member's cascades recursively right after the group (the
    /// classic blocking behavior of [`System::commit_group`]).
    Inline,
    /// Only *detect* the cascades and return them as
    /// [`DeferredCascade`]s, so a pipelined caller (the engine's
    /// `LedgerService`) can re-enter cascades touching distinct tables
    /// into its **next wave** — one more shared block and one more
    /// scheduled round for all of them — instead of propagating each
    /// serially.
    Defer,
}

/// A Step-6 cascade detected but not run (see [`CascadeMode::Defer`]):
/// `peer` holds a pending change of `table_id` caused by the committed
/// update of `origin`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeferredCascade {
    /// The peer whose sibling share now differs.
    pub peer: PeerId,
    /// The table carrying the pending cascade delta.
    pub table_id: String,
    /// The committed table whose update triggered the cascade.
    pub origin: String,
}

/// What [`System::commit_group_with`] returns: per-member results, the
/// co-authors' transaction ids (aligned with each entry's
/// `co_submitters`, for per-submitter receipt demultiplexing), and the
/// cascades deferred to the caller's next wave.
#[derive(Debug)]
pub struct GroupCommitOutcome {
    /// Per-member outcome, in entry order.
    pub results: Vec<GroupEntryResult>,
    /// Per-member co-author transactions: `co_txs[i][j]` is the
    /// `co_request_update` of `entries[i].co_submitters[j]` (resolve its
    /// receipt via [`System::receipt`]). Empty when a member failed
    /// before its transactions were submitted.
    pub co_txs: Vec<Vec<TxId>>,
    /// Cascades detected under [`CascadeMode::Defer`], deduplicated.
    pub deferred: Vec<DeferredCascade>,
}

/// Why one member of a group commit failed while the group proceeded.
#[derive(Clone, Debug)]
pub struct GroupEntryFailure {
    /// The underlying failure.
    pub error: CoreError,
    /// True iff the member's update reached the chain before the failure
    /// — the caller must then *keep* the updater's local state (it
    /// already matches the chain and the other peers); false means
    /// nothing committed and the member's staged writes should be rolled
    /// back via their inverse deltas.
    pub committed_on_chain: bool,
}

/// Per-member outcome of [`System::commit_group`].
pub type GroupEntryResult = std::result::Result<UpdateReport, GroupEntryFailure>;

/// Mode-specific payload of a prepared update (what the receivers fetch).
enum PreparedPayload {
    /// Row-level delta plus every receiver's pre-translated `put_delta`
    /// result (computed at pre-flight, consumed at apply time).
    Delta {
        delta: TableDelta,
        source_deltas: BTreeMap<AccountId, TableDelta>,
    },
    /// The regenerated whole view (the full-table baseline).
    Full { view: Table },
}

/// A Step-1-and-pre-flight-complete update, ready to submit on chain.
struct PreparedUpdate {
    updater: AccountId,
    updater_name: String,
    table_id: String,
    attrs: Vec<String>,
    new_hash: Hash256,
    payload: PreparedPayload,
}

/// Completed and blocked cascades of one Step-6 dependency sweep:
/// `(reports, failed)` where `failed` records `(table_id, reason)`.
type CascadeOutcome = (Vec<UpdateReport>, Vec<(String, String)>);

/// Below this much total fan-out work (payload rows × receivers), the
/// auto-sized worker pool runs inline — thread spawn would cost more
/// than the per-receiver applies. Explicit `fanout_workers` settings
/// bypass this. Results are identical either way; only wall-clock
/// differs.
const PARALLEL_FANOUT_MIN_ROWS: u64 = 256;

/// What the receiver fan-out produced for one committed update.
struct FanoutSummary {
    /// The receivers, in canonical (account) order.
    others: Vec<AccountId>,
    /// When the last receiver had applied the data (virtual ms).
    visible_ms: u64,
    /// Total data-plane payload bytes moved to all receivers.
    bytes_moved: u64,
    /// Rows shipped to each receiver.
    rows_moved: u64,
}

/// The whole simulated deployment.
pub struct System {
    /// Configuration.
    pub config: SystemConfig,
    pub(crate) peers: BTreeMap<AccountId, PeerNode>,
    pub(crate) names: BTreeMap<String, AccountId>,
    pub(crate) chain: Chain,
    pub(crate) runtime: ContractRuntime,
    pub(crate) mempool: Mempool,
    schedule: ProposerSchedule,
    /// Pipelined consensus-round admission (depth from
    /// `config.pipeline_depth`; depth 1 is the serial schedule).
    pub(crate) pipeline: PipelineSchedule,
    pub(crate) admin: KeyPair,
    pub(crate) contract: Option<Hash256>,
    pub(crate) clock_ms: u64,
    pub(crate) last_block_ms: u64,
    pub(crate) pow: Option<PowModel>,
    pub(crate) prg: Prg,
    pub(crate) receipts: BTreeMap<TxId, (u64, Receipt)>,
    pub(crate) stats: SystemStats,
    /// The commit-pipeline wave currently producing blocks, if any
    /// (stamped into every block header; see `BlockHeader::wave`).
    wave: Option<u64>,
    /// The attached durable-storage session, if any (see
    /// [`crate::persist`]). `None` — the default — keeps the system fully
    /// in-memory, exactly as before.
    pub(crate) persist: Option<crate::persist::Persistence>,
    /// Live-telemetry handle. Disabled by default — every metric call
    /// is a no-op until [`System::set_recorder`] installs a registry.
    pub(crate) telemetry: Recorder,
}

impl System {
    /// Builds a system with the given configuration.
    pub fn new(mut config: SystemConfig) -> Self {
        config.shards_per_table = normalize_shard_count(config.shards_per_table);
        let validator_keys: Vec<KeyPair> = (0..config.n_validators.max(1))
            .map(|i| KeyPair::generate(&format!("{}-validator-{i}", config.seed), 2))
            .collect();
        let admin = KeyPair::generate(&format!("{}-admin", config.seed), 64);
        let mut membership = Membership::new([admin.public()]);
        for v in &validator_keys {
            membership.add_validator(v.public());
        }
        let schedule = ProposerSchedule::new(validator_keys.iter().map(|k| k.public()).collect());
        let genesis_proposer = schedule.proposer(0, 0);
        let chain = Chain::new(membership, genesis_proposer);
        let pow = match &config.consensus {
            ConsensusKind::PublicPow { mean_interval_ms } => {
                Some(PowModel::new(*mean_interval_ms, &config.seed))
            }
            ConsensusKind::PrivatePbft { .. } => None,
        };
        let prg = Prg::from_label(&format!("{}-system", config.seed));
        let pipeline = PipelineSchedule::new(config.pipeline_depth);
        System {
            peers: BTreeMap::new(),
            names: BTreeMap::new(),
            chain,
            runtime: ContractRuntime::new(),
            mempool: Mempool::new(),
            schedule,
            pipeline,
            admin,
            contract: None,
            clock_ms: 0,
            last_block_ms: 0,
            pow,
            prg,
            receipts: BTreeMap::new(),
            stats: SystemStats::default(),
            wave: None,
            persist: None,
            telemetry: Recorder::disabled(),
            config,
        }
    }

    /// Installs a live-telemetry recorder on the system and every
    /// attached peer. Call once after construction (or any time — later
    /// peers pick the recorder up as they attach). Passing a disabled
    /// recorder turns telemetry back off.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        for peer in self.peers.values_mut() {
            peer.set_recorder(&recorder);
        }
        self.telemetry = recorder;
    }

    /// The currently installed recorder (disabled unless
    /// [`System::set_recorder`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.telemetry
    }

    /// Marks the start of a commit-pipeline wave: every block produced
    /// until [`System::end_wave`] carries `wave` in its header, so the
    /// chain records which consensus rounds each wave paid for.
    pub fn begin_wave(&mut self, wave: u64) {
        self.wave = Some(wave);
    }

    /// Ends the current wave (blocks go back to unattributed).
    pub fn end_wave(&mut self) {
        self.wave = None;
    }

    /// A default system with the sharing contract deployed.
    pub fn bootstrap(config: SystemConfig) -> Result<Self> {
        let mut sys = Self::new(config);
        sys.deploy_sharing_contract()?;
        Ok(sys)
    }

    // ----- accessors -------------------------------------------------

    /// Current virtual time (ms).
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// The chain.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The contract runtime.
    pub fn runtime(&self) -> &ContractRuntime {
        &self.runtime
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// The sharing contract id (after [`System::deploy_sharing_contract`]).
    pub fn sharing_contract(&self) -> Result<Hash256> {
        self.contract
            .ok_or_else(|| CoreError::BadAgreement("sharing contract not deployed".into()))
    }

    /// Looks up a registered peer's typed handle by display name.
    pub fn peer_id(&self, name: &str) -> Result<PeerId> {
        self.names
            .get(name)
            .copied()
            .map(PeerId::from_account)
            .ok_or_else(|| CoreError::UnknownPeer(name.to_string()))
    }

    /// All registered peers, in account order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers
            .keys()
            .copied()
            .map(PeerId::from_account)
            .collect()
    }

    /// Read access to a peer.
    pub fn peer(&self, peer: PeerId) -> Result<&PeerNode> {
        self.peers
            .get(&peer.account())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// Mutable access to a peer.
    pub fn peer_mut(&mut self, peer: PeerId) -> Result<&mut PeerNode> {
        self.peers
            .get_mut(&peer.account())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// Removes a peer's node state from the system, transferring
    /// ownership to the caller. The name registration stays, so the
    /// peer is expected back: a system with detached peers must not run
    /// updates or flushes until every peer is [re-attached]. This is
    /// the ownership seam the `medledger-node` runtime is built on —
    /// between waves each per-peer event loop owns its `PeerNode`; the
    /// wave pump checks peers out, ticks, and checks them back in.
    ///
    /// [re-attached]: System::attach_peer
    pub fn detach_peer(&mut self, peer: PeerId) -> Result<PeerNode> {
        self.peers
            .remove(&peer.account())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// Returns a [detached] peer's node state to the system. Rejects a
    /// node whose account was never registered here (the name map is
    /// the registration of record) or whose slot is already occupied.
    ///
    /// [detached]: System::detach_peer
    pub fn attach_peer(&mut self, mut node: PeerNode) -> Result<()> {
        if self.names.get(&node.name) != Some(&node.account) {
            return Err(CoreError::UnknownPeer(node.name.clone()));
        }
        if self.peers.contains_key(&node.account) {
            return Err(CoreError::BadAgreement(format!(
                "peer `{}` is already attached",
                node.name
            )));
        }
        if self.telemetry.is_enabled() {
            node.set_recorder(&self.telemetry);
        }
        self.peers.insert(node.account, node);
        Ok(())
    }

    /// A peer's display name, falling back to the short id.
    fn peer_name_or_id(&self, peer: PeerId) -> String {
        self.peers
            .get(&peer.account())
            .map(|p| p.name.clone())
            .unwrap_or_else(|| peer.to_string())
    }

    /// The Fig. 3 metadata row for a shared table, from contract state.
    pub fn share_meta(&self, table_id: &str) -> Result<SharedTableMeta> {
        let contract = self.sharing_contract()?;
        let state = self
            .runtime
            .contract_state(&contract)
            .ok_or_else(|| CoreError::BadAgreement("contract state missing".into()))?;
        SharingContract::load_meta(state, table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// The chronological on-chain history of a shared table (the paper's
    /// auditability property).
    pub fn audit(&self, table_id: &str) -> Vec<audit::AuditEntry> {
        audit::history_for_key(&self.chain, table_id)
    }

    // ----- membership & deployment -----------------------------------

    /// Adds a peer to the network, returning its typed handle.
    pub fn add_peer(&mut self, name: &str) -> Result<PeerId> {
        if self.names.contains_key(name) {
            return Err(CoreError::BadAgreement(format!("peer `{name}` exists")));
        }
        let mut peer = PeerNode::new(
            name,
            &self.config.seed,
            self.config.peer_key_capacity,
            self.config.propagation,
            self.config.shards_per_table,
        );
        if self.telemetry.is_enabled() {
            peer.set_recorder(&self.telemetry);
        }
        let account = peer.account;
        self.chain.membership_mut().add_member(account);
        self.names.insert(name.to_string(), account);
        self.peers.insert(account, peer);
        self.flush_structural()?;
        Ok(PeerId::from_account(account))
    }

    /// Deploys the sharing contract (admin transaction + one block).
    pub fn deploy_sharing_contract(&mut self) -> Result<Hash256> {
        if let Some(c) = self.contract {
            return Ok(c);
        }
        let nonce = self.chain.expected_nonce(&self.admin.public());
        let tx = Transaction {
            sender: self.admin.public(),
            nonce,
            payload: TxPayload::DeployContract {
                code: SharingContract::CODE_TAG.to_vec(),
                init: vec![],
            },
            conflict_key: None,
        };
        let stx = tx.sign(&mut self.admin)?;
        let id = stx.id();
        let contract = ContractRuntime::contract_id(&self.admin.public(), nonce);
        self.mempool.add(stx);
        self.produce_blocks_until_receipt(&id, 16)?;
        self.expect_success(&id)?;
        self.contract = Some(contract);
        self.flush_structural()?;
        Ok(contract)
    }

    // ----- block production -------------------------------------------

    /// Produces one block: waits for the next block slot, runs consensus,
    /// executes transactions, appends.
    ///
    /// Crate-internal: callers drive the chain through the facade's
    /// `UpdateBatch::commit()` (or [`System::propagate_update`]), never
    /// block by block.
    pub(crate) fn produce_block(&mut self) -> Result<()> {
        let interval = match &self.config.consensus {
            ConsensusKind::PrivatePbft { block_interval_ms } => *block_interval_ms,
            ConsensusKind::PublicPow { .. } => self
                .pow
                .as_mut()
                .expect("pow model present")
                .next_interval_ms(),
        };
        let slot = self.last_block_ms + interval;
        // Round admission. The serial schedule (pipeline depth 1) starts
        // consensus at the current clock — i.e. after the previous wave's
        // fan-out advanced it. A pipelined round instead starts the moment
        // its pipeline slot frees up (the seal of the block `depth - 1`
        // rounds back), so its PBFT pre-prepare/prepare overlap the
        // previous wave's data-plane fan-out in virtual time. The PoW
        // interval model announces found blocks and has no phases to
        // overlap, so it always admits serially.
        let start = match self.config.consensus {
            ConsensusKind::PrivatePbft { .. } => self.pipeline.admit(self.clock_ms).max(slot),
            ConsensusKind::PublicPow { .. } => self.clock_ms.max(slot),
        };
        self.last_block_ms = slot;

        let txs = self
            .mempool
            .select(self.config.max_block_txs, &BTreeSet::new());
        let height = self.chain.height() + 1;

        // Consensus: one scheduled PBFT round decides the whole block (the
        // pre-prepare carries every transaction, so a group-committed
        // multi-tx block still costs a single round); the PoW model's
        // latency is the interval itself (a found block is announced).
        let mut deciding_view = 0u64;
        let mut seal_ms = start;
        if let ConsensusKind::PrivatePbft { .. } = self.config.consensus {
            let digest = Block::tx_root(&txs);
            let payload: usize = txs.iter().map(SignedTransaction::encoded_len).sum();
            let round = PbftRound::new(PbftConfig {
                n: self.config.n_validators,
                latency: self.config.validator_latency.clone(),
                drop_rate: 0.0,
                timeout_ms: 2_000,
                seed: format!("{}-pbft", self.config.seed),
            })
            .payload_bytes(payload.max(64));
            let out = round.run(height, digest, 3_600_000);
            let commit = out
                .all_commit_ms
                .ok_or_else(|| CoreError::ConsensusFailed(format!("height {height}")))?;
            seal_ms = start + commit;
            deciding_view = out.deciding_view;
            self.stats.consensus_msgs += out.messages;
            self.stats.consensus_bytes += out.bytes;
        }
        // Commit order stays serial even when consensus rounds overlap:
        // a pipelined round that finished early still seals after its
        // predecessor, keeping block timestamps monotonic.
        seal_ms = seal_ms.max(self.chain.tip().header.timestamp_ms);

        // Execute at the seal time (identical to the old clock time on
        // the serial schedule).
        for stx in &txs {
            let receipt = self.runtime.execute(stx, height, seal_ms);
            if !receipt.status.is_success() {
                self.stats.reverted_txs += 1;
            }
            self.receipts.insert(stx.id(), (height, receipt));
        }
        let state_root = self.runtime.state_root();
        // Attribute the block to the proposer of the round that actually
        // decided it (view 0 normally; later views after view changes).
        let proposer = self.schedule.proposer(height, deciding_view);
        let block = Block::assemble(
            height,
            self.chain.tip().hash(),
            state_root,
            seal_ms,
            proposer,
            txs.clone(),
        )
        .in_wave(self.wave);
        self.chain.append(block)?;
        self.mempool.remove_committed(&txs);
        self.clock_ms = self.clock_ms.max(seal_ms);
        self.pipeline.sealed(seal_ms);
        self.stats.blocks += 1;
        self.stats.txs += txs.len() as u64;
        Ok(())
    }

    /// Produces blocks until `tx` has a receipt (or `max_blocks` passed).
    fn produce_blocks_until_receipt(&mut self, tx: &TxId, max_blocks: usize) -> Result<()> {
        for _ in 0..max_blocks {
            if self.receipts.contains_key(tx) {
                return Ok(());
            }
            self.produce_block()?;
        }
        if self.receipts.contains_key(tx) {
            Ok(())
        } else {
            Err(CoreError::ConsensusFailed(format!(
                "tx {} not committed within {max_blocks} blocks",
                tx.short()
            )))
        }
    }

    /// The receipt of a committed transaction.
    pub fn receipt(&self, tx: &TxId) -> Option<&Receipt> {
        self.receipts.get(tx).map(|(_, r)| r)
    }

    fn expect_success(&self, tx: &TxId) -> Result<()> {
        match self.receipt(tx) {
            Some(r) => match &r.status {
                TxStatus::Success => Ok(()),
                TxStatus::Reverted { kind, reason } => Err(CoreError::TxReverted(RevertInfo {
                    tx_id: *tx,
                    kind: *kind,
                    reason: reason.clone(),
                })),
            },
            None => Err(CoreError::ConsensusFailed("receipt missing".into())),
        }
    }

    /// Signs and submits a contract call from a peer; returns the tx id.
    fn submit_call(
        &mut self,
        sender: AccountId,
        method: &str,
        args: &impl serde::Serialize,
        conflict_key: Option<String>,
    ) -> Result<TxId> {
        let contract = self.sharing_contract()?;
        let peer = self
            .peers
            .get_mut(&sender)
            .ok_or_else(|| CoreError::UnknownPeer(sender.to_string()))?;
        let tx = Transaction {
            sender,
            nonce: peer.take_nonce(),
            payload: TxPayload::CallContract {
                contract,
                method: method.into(),
                args: serde_json::to_vec(args).expect("args serialize"),
            },
            conflict_key,
        };
        let stx = tx.sign(&mut peer.keys)?;
        let id = stx.id();
        self.mempool.add(stx);
        Ok(id)
    }

    // ----- sharing lifecycle ------------------------------------------

    /// Creates a shared table from an agreement: verifies that every
    /// peer's lens produces the **same** initial view, registers the
    /// Fig. 3 metadata on the contract, and materializes local copies.
    pub fn create_share(&mut self, agreement: &SharingAgreement) -> Result<()> {
        if agreement.bindings.len() < 2 {
            return Err(CoreError::BadAgreement(
                "a share needs at least two peers".into(),
            ));
        }
        // Pre-check: identical initial views (the paper's "formats and
        // contents of shared data are predefined by sharing peers").
        let mut initial_hash: Option<Hash256> = None;
        for (account, binding) in &agreement.bindings {
            let peer = self
                .peers
                .get(account)
                .ok_or_else(|| CoreError::UnknownPeer(account.to_string()))?;
            let source = peer.db.table(&binding.source_table)?;
            let view = medledger_bx::exec::get(&binding.lens, source)?;
            let h = view.content_hash();
            match initial_hash {
                None => initial_hash = Some(h),
                Some(prev) if prev != h => {
                    return Err(CoreError::BadAgreement(format!(
                        "peer {} derives a different initial view for `{}` \
                         ({} vs {})",
                        peer.name,
                        agreement.table_id,
                        h.short(),
                        prev.short()
                    )));
                }
                _ => {}
            }
        }
        let initial_hash = initial_hash.expect("at least two bindings");

        // Register on chain (the authority is the registrar).
        let args = RegisterShareArgs {
            table_id: agreement.table_id.clone(),
            peers: agreement.peers(),
            write_permission: agreement.write_permission.clone(),
            authority: agreement.authority,
            initial_hash,
        };
        let tx = self.submit_call(
            agreement.authority,
            "register_share",
            &args,
            Some(agreement.table_id.clone()),
        )?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)?;

        // Materialize local copies.
        for (account, binding) in &agreement.bindings {
            let peer = self.peers.get_mut(account).expect("checked above");
            peer.join_share(&agreement.table_id, binding.clone())?;
        }
        self.flush_structural()?;
        Ok(())
    }

    /// Changes an attribute's writer set (authority only; Fig. 3's
    /// "Doctor can change the permission for updating Dosage").
    pub fn change_permission(
        &mut self,
        authority: PeerId,
        table_id: &str,
        attr: &str,
        writers: &[PeerId],
    ) -> Result<()> {
        let args = ChangePermissionArgs {
            table_id: table_id.to_string(),
            attr: attr.to_string(),
            writers: writers.iter().map(PeerId::account).collect(),
        };
        let tx = self.submit_call(
            authority.account(),
            "change_permission",
            &args,
            Some(table_id.to_string()),
        )?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)?;
        self.flush_storage()?;
        Ok(())
    }

    /// Table-level delete (Fig. 4): the authority retires the share on
    /// chain; every participating peer then drops its local copy and
    /// binding. Sources keep the data — only the sharing relationship
    /// ends. The chain retains the full audit history.
    pub fn remove_share(&mut self, authority: PeerId, table_id: &str) -> Result<()> {
        let authority = authority.account();
        let meta = self.share_meta(table_id)?;
        let args = serde_json::json!({ "table_id": table_id });
        let tx = self.submit_call(authority, "remove_share", &args, Some(table_id.to_string()))?;
        self.produce_blocks_until_receipt(&tx, 16)?;
        self.expect_success(&tx)?;
        for account in &meta.peers {
            if let Some(peer) = self.peers.get_mut(account) {
                // A peer may have already left locally; ignore that case.
                let _ = peer.leave_share(table_id);
            }
        }
        self.flush_structural()?;
        Ok(())
    }

    // ----- the Fig. 5 workflow ----------------------------------------

    /// Propagates a pending local change of `table_id` from `updater` to
    /// all sharing peers, running the full Fig. 5 workflow including the
    /// Step-6 dependency check and recursive cascades (Steps 7–11).
    pub fn propagate_update(&mut self, updater: PeerId, table_id: &str) -> Result<UpdateReport> {
        let mut active = BTreeSet::new();
        let report = self.propagate_inner(updater.account(), table_id, &mut active, 0)?;
        self.flush_storage()?;
        Ok(report)
    }

    /// One update through the whole pipeline: Step 1 + pre-flight,
    /// request transaction, consensus, parallel receiver fan-out, acks,
    /// Step-6 cascades. Both propagation modes share this skeleton; the
    /// mode decides how [`System::prepare_update`] computes the payload
    /// and how the fan-out applies it.
    fn propagate_inner(
        &mut self,
        updater: AccountId,
        table_id: &str,
        active: &mut BTreeSet<String>,
        depth: usize,
    ) -> Result<UpdateReport> {
        if depth > 16 {
            return Err(CoreError::ConsistencyViolation(
                "cascade depth exceeded 16 — cyclic sharing topology?".into(),
            ));
        }
        active.insert(table_id.to_string());
        let mut trace = WorkflowTrace::default();
        let submitted_ms = self.clock_ms;

        // Step 1 + pre-flight translatability check.
        let mut prepared = match self.prepare_update(updater, table_id, &mut trace) {
            Ok(p) => p,
            Err(e) => {
                active.remove(table_id);
                return Err(e);
            }
        };

        // Step 2: request the update from the smart contract (metadata
        // only — hash + changed attrs; the data itself never touches the
        // chain).
        let args = RequestUpdateArgs {
            table_id: table_id.to_string(),
            new_hash: prepared.new_hash,
            changed_attrs: prepared.attrs.clone(),
        };
        let tx = self.submit_call(updater, "request_update", &args, Some(table_id.to_string()))?;
        trace.push(
            "2",
            self.clock_ms,
            &prepared.updater_name,
            format!("sent update request tx {} to sharing contract", tx.short()),
        );

        // Step 3: consensus + permission verification.
        self.produce_blocks_until_receipt(&tx, 32)?;
        if let Err(e) = self.expect_success(&tx) {
            trace.push(
                "3",
                self.clock_ms,
                "contract",
                format!("permission DENIED: {e}"),
            );
            active.remove(table_id);
            return Err(e);
        }
        let committed_ms = self.clock_ms;
        let version = self.share_meta(table_id)?.version;
        trace.push(
            "3",
            committed_ms,
            "contract",
            format!(
                "permission verified; update committed at height {} (version {version})",
                self.chain.height()
            ),
        );

        // The updater's stored copy and committed baseline advance to the
        // committed state.
        self.commit_local(&prepared, version)?;

        // Steps 4–5: parallel fan-out to every other sharing peer.
        let fan = self.fanout_apply(&mut prepared, version, committed_ms, &mut trace)?;

        // Acks: peers confirm on chain; the table stays locked until all
        // acks commit (the paper's barrier). One aggregated attestation
        // transaction by default; one tx per receiver in legacy mode.
        let ack_txs =
            self.submit_ack_round(table_id, version, prepared.new_hash, updater, &fan.others)?;
        self.produce_blocks_until_all(&ack_txs)?;
        for t in &ack_txs {
            self.expect_success(t)?;
        }
        let synced_ms = self.clock_ms;
        if !fan.others.is_empty() {
            trace.push(
                "m",
                synced_ms,
                "contract",
                format!(
                    "all {} peer(s) acked version {version}; table unlocked",
                    fan.others.len()
                ),
            );
        }

        // Step 6: dependency check on every peer that applied the change
        // (and the updater itself), with recursive cascades.
        let mut participants = fan.others.clone();
        participants.push(updater);
        let (cascades, failed_cascades) =
            self.step6_cascades(table_id, &participants, active, depth, &mut trace)?;

        active.remove(table_id);
        Ok(UpdateReport {
            table_id: table_id.to_string(),
            version,
            submitted_ms,
            committed_ms,
            visible_ms: fan.visible_ms,
            synced_ms,
            changed_attrs: prepared.attrs,
            rows_moved: fan.rows_moved,
            bytes_moved: fan.bytes_moved,
            tx_ids: {
                let mut ids = vec![tx];
                ids.extend(ack_txs.iter().copied());
                ids
            },
            cascades,
            failed_cascades,
            trace,
        })
    }

    /// Fig. 5 Step 1 plus the pre-flight translatability check, per
    /// propagation mode.
    ///
    /// * Delta — the pending delta relative to the committed baseline
    ///   (tracked at write time; falls back to a full diff only for
    ///   out-of-band edits), plus every sharing peer's pre-translated
    ///   `put_delta` result, kept and reused at apply time.
    /// * FullTable — the regenerated whole view, with every sharing
    ///   peer's full `put` checked before anything commits on chain.
    fn prepare_update(
        &mut self,
        updater: AccountId,
        table_id: &str,
        trace: &mut WorkflowTrace,
    ) -> Result<PreparedUpdate> {
        match self.config.propagation {
            PropagationMode::Delta => {
                let (updater_name, delta, attrs, new_hash) = {
                    let peer = self
                        .peers
                        .get_mut(&updater)
                        .ok_or_else(|| CoreError::UnknownPeer(updater.to_string()))?;
                    let delta = peer.prepare_update_delta(table_id)?;
                    if delta.is_empty() {
                        return Err(CoreError::NoChange(table_id.to_string()));
                    }
                    let attrs: Vec<String> =
                        changed_attrs_from_delta(peer.baseline(table_id)?, &delta)
                            .into_iter()
                            .collect();
                    let new_hash = peer.shared_hash(table_id)?;
                    (peer.name.clone(), delta, attrs, new_hash)
                };
                trace.push(
                    "1",
                    self.clock_ms,
                    &updater_name,
                    format!(
                        "computed `{table_id}` delta via BX-get-delta ({} row(s)); changed attrs: [{}]",
                        delta.row_count(),
                        attrs.join(", ")
                    ),
                );
                // Pre-flight: every sharing peer must be able to translate
                // the delta into its source (`put_delta` must succeed)
                // *before* anything commits on chain.
                let meta0 = self.share_meta(table_id)?;
                let mut source_deltas: BTreeMap<AccountId, TableDelta> = BTreeMap::new();
                for other in meta0.peers.iter().filter(|p| **p != updater) {
                    let peer = self
                        .peers
                        .get(other)
                        .ok_or_else(|| CoreError::UnknownPeer(other.to_string()))?;
                    source_deltas.insert(*other, peer.translate_remote_delta(table_id, &delta)?);
                }
                Ok(PreparedUpdate {
                    updater,
                    updater_name,
                    table_id: table_id.to_string(),
                    attrs,
                    new_hash,
                    payload: PreparedPayload::Delta {
                        delta,
                        source_deltas,
                    },
                })
            }
            PropagationMode::FullTable => {
                let (updater_name, current_view, attrs) = {
                    let peer = self
                        .peers
                        .get(&updater)
                        .ok_or_else(|| CoreError::UnknownPeer(updater.to_string()))?;
                    let current = peer.regenerate_view(table_id)?;
                    let baseline = peer.baseline(table_id)?;
                    let attrs: Vec<String> =
                        changed_attrs(baseline, &current).into_iter().collect();
                    (peer.name.clone(), current, attrs)
                };
                if attrs.is_empty() {
                    return Err(CoreError::NoChange(table_id.to_string()));
                }
                let new_hash = current_view.content_hash();
                trace.push(
                    "1",
                    self.clock_ms,
                    &updater_name,
                    format!(
                        "regenerated `{table_id}` via BX-get; changed attrs: [{}]",
                        attrs.join(", ")
                    ),
                );
                // Pre-flight: every sharing peer must be able to translate
                // the new view into its source (`put` must succeed) before
                // anything commits on chain.
                let meta0 = self.share_meta(table_id)?;
                for other in meta0.peers.iter().filter(|p| **p != updater) {
                    let peer = self
                        .peers
                        .get(other)
                        .ok_or_else(|| CoreError::UnknownPeer(other.to_string()))?;
                    let binding = peer.binding(table_id)?;
                    let source = peer.db.table(&binding.source_table)?;
                    medledger_bx::exec::put(&binding.lens, source, &current_view)?;
                }
                Ok(PreparedUpdate {
                    updater,
                    updater_name,
                    table_id: table_id.to_string(),
                    attrs,
                    new_hash,
                    payload: PreparedPayload::Full { view: current_view },
                })
            }
        }
    }

    /// Advances the updater's own stored copy and committed baseline to
    /// the state the contract just committed.
    fn commit_local(&mut self, prepared: &PreparedUpdate, version: u64) -> Result<()> {
        let peer = self
            .peers
            .get_mut(&prepared.updater)
            .expect("updater exists");
        match &prepared.payload {
            PreparedPayload::Delta { delta, .. } => {
                peer.commit_delta(&prepared.table_id, delta, version)
            }
            PreparedPayload::Full { view } => peer.commit_view(&prepared.table_id, view, version),
        }
    }

    /// Steps 4–5 for every sharing peer other than the updater: fetch the
    /// committed payload, verify it against the announced hash, apply it,
    /// and reflect it into the local source via BX-put.
    ///
    /// The per-receiver verify/apply work runs on a pool of scoped
    /// `std::thread` workers ([`fanout::run_partitioned`]): receivers map
    /// to **disjoint** `&mut PeerNode`s, so the workers share no state and
    /// need no locks. Everything order-sensitive — PRG latency draws,
    /// transfer accounting, trace lines — happens serially outside the
    /// pool, and results merge back in receiver order, so traces,
    /// receipts and stats are byte-identical regardless of the host's
    /// core count. Virtual time follows the same partition via
    /// [`fanout::schedule_ms`]: `fanout_workers` parallel data channels,
    /// each serving its chunk of receivers sequentially (0 = one channel
    /// per receiver, i.e. full overlap).
    fn fanout_apply(
        &mut self,
        prepared: &mut PreparedUpdate,
        version: u64,
        committed_ms: u64,
        trace: &mut WorkflowTrace,
    ) -> Result<FanoutSummary> {
        let table_id = prepared.table_id.clone();
        let updater_name = prepared.updater_name.clone();
        let meta = self.share_meta(&table_id)?;
        let others: Vec<AccountId> = meta
            .peers
            .iter()
            .copied()
            .filter(|p| *p != prepared.updater)
            .collect();

        // Payload accounting, identical for every receiver.
        let (kind, rows_moved, payload_bytes, full_table_bytes) = match &prepared.payload {
            PreparedPayload::Delta { delta, .. } => {
                let peer = self.peers.get(&prepared.updater).expect("updater exists");
                let full: u64 = peer
                    .shared_table(&table_id)?
                    .rows()
                    .map(|r| r.encode().len() as u64)
                    .sum();
                (
                    PayloadKind::Delta,
                    delta.row_count() as u64,
                    delta.encoded_size() as u64,
                    full,
                )
            }
            PreparedPayload::Full { view } => {
                let bytes: u64 = view.rows().map(|r| r.encode().len() as u64).sum();
                (PayloadKind::FullTable, view.len() as u64, bytes, bytes)
            }
        };

        // Per-receiver latency draws, in receiver order (the PRG sequence
        // is part of the deterministic contract — thread count must never
        // change it).
        let mut service: Vec<u64> = Vec::with_capacity(others.len());
        for _ in &others {
            let notify = self.config.p2p_latency.sample(&mut self.prg);
            let fetch = self.config.p2p_latency.sample(&mut self.prg)
                + self.config.p2p_latency.sample(&mut self.prg);
            service.push(notify + fetch);
        }
        let virtual_channels = match self.config.fanout_workers {
            0 => others.len().max(1),
            w => w,
        };
        let applied_at = fanout::schedule_ms(committed_ms, &service, virtual_channels);
        let names: Vec<String> = others
            .iter()
            .map(|a| {
                self.peers
                    .get(a)
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| a.to_string())
            })
            .collect();

        let new_hash = prepared.new_hash;
        let tid: &str = &table_id;
        let results: Vec<Result<()>> = match &mut prepared.payload {
            // Sharded deployments route each receiver's delta to its
            // owning shards and run ALL receivers' shard jobs on one
            // shard-granular pool — see
            // [`System::fanout_apply_shard_routed`].
            PreparedPayload::Delta {
                delta,
                source_deltas,
            } if self.config.shards_per_table > 1 => self.fanout_apply_shard_routed(
                tid,
                delta,
                source_deltas,
                &others,
                rows_moved,
                new_hash,
                version,
            ),
            payload => {
                // Parallel apply over disjoint mutable peer references.
                let exec_workers = self.fanout_pool_workers(others.len(), rows_moved, others.len());
                let wanted: BTreeSet<AccountId> = others.iter().copied().collect();
                let mut refs: BTreeMap<AccountId, &mut PeerNode> = self
                    .peers
                    .iter_mut()
                    .filter(|(a, _)| wanted.contains(a))
                    .map(|(a, p)| (*a, p))
                    .collect();
                match payload {
                    PreparedPayload::Delta {
                        delta,
                        source_deltas,
                    } => {
                        let jobs: Vec<(&mut PeerNode, TableDelta)> = others
                            .iter()
                            .map(|a| {
                                (
                                    refs.remove(a).expect("sharing peer exists"),
                                    source_deltas.remove(a).expect("pre-flight ran"),
                                )
                            })
                            .collect();
                        let delta: &TableDelta = delta;
                        fanout::run_partitioned(jobs, exec_workers, move |(peer, source_delta)| {
                            peer.apply_remote_delta(tid, delta, &source_delta, new_hash, version)
                        })
                    }
                    PreparedPayload::Full { view } => {
                        let jobs: Vec<&mut PeerNode> = others
                            .iter()
                            .map(|a| refs.remove(a).expect("sharing peer exists"))
                            .collect();
                        let view: &Table = view;
                        fanout::run_partitioned(jobs, exec_workers, move |peer| {
                            peer.apply_remote_view(tid, view, new_hash, version)
                        })
                    }
                }
            }
        };

        // Deterministic merge in receiver order. Unlike the old serial
        // pipeline (which stopped at the first failed receiver), the
        // pool contacts EVERY receiver — so every receiver's transfer is
        // accounted and traced, keeping stats in agreement with actual
        // peer state even on the error path. A receiver whose apply
        // failed self-reverted; its trace records the failure, and the
        // first error is surfaced after the merge. (Workers could
        // accumulate their own `DataPlaneStats` and fold them with
        // `DataPlaneStats::merge`; since every transfer of one update is
        // identical, recording here in receiver order is byte-identical
        // and simpler.)
        let mut visible_ms = committed_ms;
        let mut bytes_moved = 0u64;
        let mut first_err: Option<CoreError> = None;
        for i in 0..others.len() {
            visible_ms = visible_ms.max(applied_at[i]);
            self.stats.p2p_transfers += 1;
            self.stats.p2p_bytes += payload_bytes;
            self.stats.data_plane.record(&DataTransfer {
                kind,
                rows: rows_moved,
                bytes: payload_bytes,
                full_table_bytes,
            });
            bytes_moved += payload_bytes;
            let fetched = match kind {
                PayloadKind::Delta => {
                    format!("fetched `{table_id}` delta ({rows_moved} row(s)) from {updater_name}")
                }
                PayloadKind::FullTable => {
                    format!("fetched updated `{table_id}` from {updater_name}")
                }
            };
            trace.push("4", applied_at[i], &names[i], fetched);
            match &results[i] {
                Err(e) => {
                    trace.push(
                        "5",
                        applied_at[i],
                        &names[i],
                        format!("FAILED to apply `{table_id}` (local copy self-reverted): {e}"),
                    );
                    if first_err.is_none() {
                        first_err = Some(e.clone());
                    }
                }
                Ok(()) => {
                    let reflected = match kind {
                        PayloadKind::Delta => {
                            format!("reflected `{table_id}` delta into source via BX-put")
                        }
                        PayloadKind::FullTable => {
                            format!("reflected `{table_id}` into source via BX-put")
                        }
                    };
                    trace.push("5", applied_at[i], &names[i], reflected);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        self.clock_ms = self.clock_ms.max(visible_ms);
        Ok(FanoutSummary {
            others,
            visible_ms,
            bytes_moved,
            rows_moved,
        })
    }

    /// The shard-routed variant of the receiver fan-out (delta mode with
    /// `shards_per_table > 1`), in three phases:
    ///
    /// 1. **Plan** (read-only): each receiver splits the committed view
    ///    delta by shard and pre-derives its sibling cascade deltas.
    /// 2. **Shard jobs**: every receiver's touched shards become
    ///    independent jobs on ONE pool in [`fanout::run_sharded`]'s
    ///    shard-granular partitioning mode — so even a single receiver's
    ///    disjoint shards apply (and pre-warm their Merkle subroots) in
    ///    parallel.
    /// 3. **Finish** (serial, receiver order): fold-verify the announced
    ///    hash, advance the assembled copy, reflect into the source via
    ///    BX-put, stash sibling cascades, advance the baseline.
    ///
    /// Receivers that cannot take the shard path (a conflicted pending
    /// change) fall back to the whole-table resolution, still slotted in
    /// receiver order. Results are byte-identical to the unsharded pipe
    /// for any worker count.
    #[allow(clippy::too_many_arguments)]
    fn fanout_apply_shard_routed(
        &mut self,
        table_id: &str,
        delta: &TableDelta,
        source_deltas: &mut BTreeMap<AccountId, TableDelta>,
        others: &[AccountId],
        rows_moved: u64,
        new_hash: Hash256,
        version: u64,
    ) -> Vec<Result<()>> {
        let mut slots: Vec<Option<Result<()>>> = others.iter().map(|_| None).collect();

        // Phase 1 — plan per receiver.
        let mut sharded: Vec<(usize, RemoteShardPlan)> = Vec::new();
        let mut serial: Vec<usize> = Vec::new();
        for (i, a) in others.iter().enumerate() {
            let Some(peer) = self.peers.get(a) else {
                slots[i] = Some(Err(CoreError::UnknownPeer(a.to_string())));
                continue;
            };
            let sd = source_deltas.get(a).expect("pre-flight ran");
            match peer.plan_remote_apply(table_id, delta, sd) {
                Ok(RemoteApply::Sharded(plan)) => sharded.push((i, plan)),
                Ok(RemoteApply::Serial) => serial.push(i),
                Err(e) => slots[i] = Some(Err(e)),
            }
        }

        // Phase 2 — all receivers' shard jobs on one pool, shard-granular.
        let total_jobs: usize = sharded.iter().map(|(_, p)| p.job_count()).sum();
        let workers = self.fanout_pool_workers(total_jobs, rows_moved, others.len());
        let shard_results: Vec<Vec<medledger_relational::Result<TableDelta>>> = {
            let wanted: BTreeSet<AccountId> = sharded.iter().map(|(i, _)| others[*i]).collect();
            let mut refs: BTreeMap<AccountId, &mut PeerNode> = self
                .peers
                .iter_mut()
                .filter(|(a, _)| wanted.contains(a))
                .map(|(a, p)| (*a, p))
                .collect();
            let groups = sharded
                .iter()
                .map(|(i, plan)| {
                    refs.remove(&others[*i])
                        .expect("sharing peer exists")
                        .remote_shard_jobs(table_id, plan)
                })
                .collect();
            fanout::run_sharded(groups, workers, run_shard_job)
        };

        // Phase 3 — serial tails, receiver order; conflicted receivers
        // resolve through the whole-table path.
        for ((i, plan), res) in sharded.into_iter().zip(shard_results) {
            let a = others[i];
            let sd = source_deltas.remove(&a).expect("pre-flight ran");
            let r = self
                .peers
                .get_mut(&a)
                .expect("sharing peer exists")
                .finish_remote_apply(table_id, plan, res, delta, &sd, new_hash, version);
            slots[i] = Some(r);
        }
        for i in serial {
            let a = others[i];
            let sd = source_deltas.remove(&a).expect("pre-flight ran");
            let r = self
                .peers
                .get_mut(&a)
                .expect("sharing peer exists")
                .apply_remote_delta(table_id, delta, &sd, new_hash, version);
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every receiver resolved"))
            .collect()
    }

    /// OS threads for one fan-out pool run over `total_jobs` jobs
    /// (receivers, or receiver×shard jobs in shard-granular mode). In
    /// auto mode (`fanout_workers == 0`) tiny payloads run inline — a
    /// one-row delta's per-receiver apply is microseconds, not worth a
    /// thread spawn; an explicit worker count is always honored. The
    /// single home of the inline threshold for both partition grains.
    fn fanout_pool_workers(&self, total_jobs: usize, rows_moved: u64, receivers: usize) -> usize {
        if self.config.fanout_workers == 0
            && rows_moved * (receivers as u64) < PARALLEL_FANOUT_MIN_ROWS
        {
            1
        } else {
            self.exec_fanout_workers(total_jobs)
        }
    }

    /// OS threads for the fan-out pool: the configured channel count, or
    /// (auto, `0`) whatever parallelism the host offers, capped at the
    /// receiver count.
    fn exec_fanout_workers(&self, receivers: usize) -> usize {
        let w = match self.config.fanout_workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            w => w,
        };
        w.min(receivers.max(1))
    }

    /// Submits the acknowledgement round for one committed update (the
    /// paper's barrier: the table stays locked until all acks commit).
    ///
    /// With `aggregated_acks` (the default), every receiver signs the
    /// canonical ack message with its own one-time key (the same key
    /// budget the per-receiver round consumed), the updater verifies each
    /// share off-chain, folds the verified shares into one attestation
    /// and submits a **single** `ack_update_aggregate` transaction under
    /// the derived conflict key `"{table}@ack:{version}"`. Distinct
    /// derived keys let every table's aggregate share one block per wave,
    /// so the ack side costs O(1) blocks regardless of the receiver
    /// count. A receiver whose share fails verification falls back to an
    /// individual dissent `ack_update` under
    /// `"{table}@ack:{version}:d<i>"`, so the lock/denial semantics of
    /// the paper's barrier survive aggregation unchanged.
    ///
    /// With the knob off, the legacy round is submitted: one `ack_update`
    /// per receiver under the plain table key (serializing one ack block
    /// per receiver), with the identical args built once and reused.
    fn submit_ack_round(
        &mut self,
        table_id: &str,
        version: u64,
        applied_hash: Hash256,
        updater: AccountId,
        others: &[AccountId],
    ) -> Result<Vec<TxId>> {
        if others.is_empty() {
            return Ok(Vec::new());
        }
        if !self.config.aggregated_acks {
            let ack = AckUpdateArgs {
                table_id: table_id.to_string(),
                version,
                applied_hash,
            };
            let mut ack_txs = Vec::with_capacity(others.len());
            for other in others {
                ack_txs.push(self.submit_call(
                    *other,
                    "ack_update",
                    &ack,
                    Some(table_id.to_string()),
                )?);
            }
            return Ok(ack_txs);
        }

        // Aggregated path. Shares are collected in canonical (account)
        // order so every node folds the identical attestation.
        let msg = ack_message(table_id, version, &applied_hash);
        let mut sorted: Vec<AccountId> = others.to_vec();
        sorted.sort();
        let mut shares: Vec<(AccountId, Signature)> = Vec::with_capacity(sorted.len());
        for other in &sorted {
            let peer = self
                .peers
                .get_mut(other)
                .ok_or_else(|| CoreError::UnknownPeer(other.to_string()))?;
            shares.push((*other, peer.keys.sign(&msg)?));
        }
        let (contributors, dissenters) = partition_ack_shares(&msg, &shares);
        let mut ack_txs = Vec::with_capacity(1 + dissenters.len());
        if !contributors.is_empty() {
            let attestation = fold_attestation(&msg, &contributors);
            let args = AckAggregateArgs {
                table_id: table_id.to_string(),
                version,
                applied_hash,
                contributors: contributors.iter().map(|(a, _)| *a).collect(),
                attestation,
            };
            ack_txs.push(self.submit_call(
                updater,
                "ack_update_aggregate",
                &args,
                Some(format!("{table_id}@ack:{version}")),
            )?);
        }
        if !dissenters.is_empty() {
            let ack = AckUpdateArgs {
                table_id: table_id.to_string(),
                version,
                applied_hash,
            };
            for (i, d) in dissenters.iter().enumerate() {
                ack_txs.push(self.submit_call(
                    *d,
                    "ack_update",
                    &ack,
                    Some(format!("{table_id}@ack:{version}:d{i}")),
                )?);
            }
        }
        Ok(ack_txs)
    }

    /// The Fig. 5 **Step 6** dependency check on every participant, with
    /// recursive cascades (Steps 7–11). The propagation mode decides how
    /// "does this share now differ?" is answered: O(pending) tracking in
    /// delta mode, a full regenerate-and-diff in full-table mode.
    fn step6_cascades(
        &mut self,
        table_id: &str,
        participants: &[AccountId],
        active: &mut BTreeSet<String>,
        depth: usize,
        trace: &mut WorkflowTrace,
    ) -> Result<CascadeOutcome> {
        let mut cascades = Vec::new();
        let mut failed_cascades: Vec<(String, String)> = Vec::new();
        for account in participants {
            let candidates = {
                let peer = self.peers.get(account).expect("peer exists");
                peer.overlapping_shares(table_id)?
            };
            for other_table in candidates {
                if active.contains(&other_table) {
                    continue;
                }
                let (peer_name, differs) = {
                    let peer = self.peers.get(account).expect("peer exists");
                    let differs = match self.config.propagation {
                        PropagationMode::Delta => peer.has_pending_change(&other_table)?,
                        PropagationMode::FullTable => {
                            let regenerated = peer.regenerate_view(&other_table)?;
                            !changed_attrs(peer.baseline(&other_table)?, &regenerated).is_empty()
                        }
                    };
                    (peer.name.clone(), differs)
                };
                trace.push(
                    "6",
                    self.clock_ms,
                    &peer_name,
                    format!(
                        "dependency check: `{other_table}` overlaps `{table_id}`; {}",
                        if differs {
                            "content changed → cascade (steps 7-11)"
                        } else {
                            "content unchanged → no cascade"
                        }
                    ),
                );
                if differs {
                    match self.propagate_inner(*account, &other_table, active, depth + 1) {
                        Ok(report) => cascades.push(report),
                        // A denied or untranslatable cascade must not roll
                        // back the committed parent update; record it. The
                        // blocked peer keeps its pending delta to retry.
                        Err(
                            e @ (CoreError::TxReverted(_)
                            | CoreError::Bx(_)
                            | CoreError::NoChange(_)),
                        ) => {
                            trace.push(
                                "6",
                                self.clock_ms,
                                &peer_name,
                                format!("cascade into `{other_table}` blocked: {e}"),
                            );
                            failed_cascades.push((other_table.clone(), e.to_string()));
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok((cascades, failed_cascades))
    }

    // ----- group commit ------------------------------------------------

    /// Screens a prospective commit group for members that cannot share
    /// a block. A member is inadmissible (`Some(CoreError::Conflicted)`)
    /// when — earlier members winning —
    ///
    /// * an earlier member already claims the same table,
    /// * the mempool still holds a transaction for the table, or
    /// * the table *interacts* with an earlier member's table: some
    ///   sharing peer binds both to one source with overlapping lens
    ///   footprints, so committing one would cascade into (or absorb
    ///   uncommitted state of) the other. Interacting tables must
    ///   serialize across groups, exactly like same-table claims.
    pub fn screen_group(&self, entries: &[GroupEntry]) -> Vec<Option<CoreError>> {
        let queued = self.mempool.pending_conflict_keys();
        let mut out: Vec<Option<CoreError>> = Vec::with_capacity(entries.len());
        let mut admitted: Vec<&str> = Vec::new();
        for e in entries {
            let conflicted = queued.contains(&e.table_id)
                || admitted.iter().any(|t| *t == e.table_id)
                || admitted
                    .iter()
                    .any(|t| self.tables_interact(t, &e.table_id));
            if conflicted {
                out.push(Some(CoreError::Conflicted(e.table_id.clone())));
            } else {
                admitted.push(&e.table_id);
                out.push(None);
            }
        }
        out
    }

    /// True iff some sharing peer of `a` also participates in `b` with
    /// an overlapping lens footprint on the same source — the Step-6
    /// dependency relation, applied pairwise to group members.
    fn tables_interact(&self, a: &str, b: &str) -> bool {
        let Ok(meta) = self.share_meta(a) else {
            return false;
        };
        meta.peers.iter().any(|acct| {
            self.peers.get(acct).is_some_and(|p| {
                p.overlapping_shares(a)
                    .is_ok_and(|list| list.iter().any(|t| t == b))
            })
        })
    }

    /// Commits many staged updates touching **distinct** shared tables in
    /// one block and one scheduled consensus round, then fans each update
    /// out to its receivers and batches all acknowledgement rounds.
    ///
    /// The paper's conflict rule — one update per shared table per block,
    /// enforced by `Mempool::select` and re-checked by chain validation —
    /// becomes the batching criterion instead of a one-at-a-time limiter:
    /// because group members touch distinct tables, all their
    /// `request_update` transactions fit in the next block, and with
    /// aggregated acks (the default) every member's ack side is one
    /// transaction too, so the whole group's acks share a block as well —
    /// consensus cost per update drops to `~2 / group_size` blocks
    /// (`~(1 + receivers) / group_size` in legacy per-receiver ack mode;
    /// the request round alone is `1 / group_size` in both).
    ///
    /// Outcomes are demultiplexed per member: a denied or untranslatable
    /// member fails alone — callers roll back exactly that member's
    /// staged writes via its inverse deltas — while the rest of the block
    /// commits. A member targeting a table that an earlier member (or a
    /// transaction still queued in the mempool) already claims fails with
    /// [`CoreError::Conflicted`]. A whole-group `Err` is reserved for
    /// engine-level failures (e.g. consensus death) where nothing
    /// committed.
    pub fn commit_group(&mut self, entries: &[GroupEntry]) -> Result<Vec<GroupEntryResult>> {
        Ok(self
            .commit_group_with(entries, CascadeMode::Inline)?
            .results)
    }

    /// [`System::commit_group`] with explicit cascade handling and full
    /// per-submitter demultiplexing — the seam the ticketed commit
    /// pipeline (`medledger-engine`'s `LedgerService`) drives waves
    /// through:
    ///
    /// * a write-combined member (non-empty `co_submitters`) submits the
    ///   lead's `request_update` — declaring only the lead's own
    ///   attributes — plus one `co_request_update` per co-author in the
    ///   **same block**, each permission-checked on that co-author's
    ///   declared attributes and individually receipted (`co_txs`);
    /// * under [`CascadeMode::Defer`] the Fig. 5 Step-6 sweep only
    ///   *detects* cascades and returns them as [`DeferredCascade`]s for
    ///   the caller's next wave, instead of propagating each serially.
    pub fn commit_group_with(
        &mut self,
        entries: &[GroupEntry],
        cascades_mode: CascadeMode,
    ) -> Result<GroupCommitOutcome> {
        fn fail(error: CoreError, committed_on_chain: bool) -> GroupEntryFailure {
            GroupEntryFailure {
                error,
                committed_on_chain,
            }
        }
        let mut slots: Vec<Option<GroupEntryResult>> = entries.iter().map(|_| None).collect();
        let mut co_txs_out: Vec<Vec<TxId>> = entries.iter().map(|_| Vec::new()).collect();
        let mut deferred: Vec<DeferredCascade> = Vec::new();
        let mut co_seq: usize = 0;
        let stats_before = self.stats;
        let mut timer = StageTimer::start(&self.telemetry, "wave");

        // Conflict screening (see [`System::screen_group`]): distinct,
        // non-interacting tables only, none with a transaction still
        // queued from outside the group.
        for (i, screen) in self.screen_group(entries).into_iter().enumerate() {
            if let Some(err) = screen {
                slots[i] = Some(Err(fail(err, false)));
            }
        }
        timer.stage("phase.screen");

        // Phase 1 — Step 1 + pre-flight per member, then submit every
        // `request_update` (distinct conflict keys: the next block takes
        // them all).
        struct InFlight {
            idx: usize,
            prepared: PreparedUpdate,
            trace: WorkflowTrace,
            submitted_ms: u64,
            tx: TxId,
            co_txs: Vec<TxId>,
        }
        let mut inflight: Vec<InFlight> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            if slots[i].is_some() {
                continue;
            }
            let mut trace = WorkflowTrace::default();
            let submitted_ms = self.clock_ms;
            let prepared = match self.prepare_update(e.updater.account(), &e.table_id, &mut trace) {
                Ok(p) => p,
                Err(err) => {
                    slots[i] = Some(Err(fail(err, false)));
                    continue;
                }
            };
            // A write-combined member distributes the permission check:
            // the lead declares only its own attributes, each co-author
            // its own. The union must still cover every attribute the
            // composed delta actually changes — otherwise some change
            // would dodge the Fig. 3 matrix entirely.
            let declared = e
                .declared_attrs
                .clone()
                .unwrap_or_else(|| prepared.attrs.clone());
            if e.declared_attrs.is_some() || !e.co_submitters.is_empty() {
                let mut covered: BTreeSet<&str> = declared.iter().map(String::as_str).collect();
                for co in &e.co_submitters {
                    covered.extend(co.attrs.iter().map(String::as_str));
                }
                if let Some(missing) = prepared
                    .attrs
                    .iter()
                    .find(|a| !covered.contains(a.as_str()))
                {
                    slots[i] = Some(Err(fail(
                        CoreError::BadAgreement(format!(
                            "combined update of `{}` changes attribute `{missing}` \
                             that no submitter declares",
                            e.table_id
                        )),
                        false,
                    )));
                    continue;
                }
            }
            let args = RequestUpdateArgs {
                table_id: e.table_id.clone(),
                new_hash: prepared.new_hash,
                changed_attrs: declared,
            };
            let expected_version = match self.share_meta(&e.table_id) {
                Ok(meta) => meta.version + 1,
                Err(err) => {
                    slots[i] = Some(Err(fail(err, false)));
                    continue;
                }
            };
            // Every signature this member needs must be available BEFORE
            // the lead's request enters the mempool: once the request is
            // queued it cannot be withdrawn, so a late signing failure
            // would leave the member half-submitted. Count per peer —
            // the lead's request plus one co-request per co-author, and
            // the same peer may appear several times (a peer co-signs
            // its own member when the engine composed two of its
            // submissions).
            let mut needed: BTreeMap<AccountId, u64> = BTreeMap::new();
            *needed.entry(e.updater.account()).or_insert(0) += 1;
            if self.config.aggregated_acks {
                // The updater also signs the member's aggregated ack
                // transaction after the fan-out.
                *needed.entry(e.updater.account()).or_insert(0) += 1;
            }
            for co in &e.co_submitters {
                *needed.entry(co.peer.account()).or_insert(0) += 1;
            }
            let precheck = needed
                .iter()
                .find_map(|(account, n)| match self.peers.get(account) {
                    Some(node) if node.keys.remaining() < *n => Some(CoreError::KeysExhausted),
                    Some(_) => None,
                    None => Some(CoreError::UnknownPeer(account.to_string())),
                });
            if let Some(err) = precheck {
                slots[i] = Some(Err(fail(err, false)));
                continue;
            }
            match self.submit_call(
                prepared.updater,
                "request_update",
                &args,
                Some(e.table_id.clone()),
            ) {
                Ok(tx) => {
                    trace.push(
                        "2",
                        self.clock_ms,
                        &prepared.updater_name,
                        format!(
                            "sent update request tx {} to sharing contract (group of {})",
                            tx.short(),
                            entries.len()
                        ),
                    );
                    // Each co-author's individually signed co-request
                    // rides in the same block under a derived conflict
                    // key (the data change itself is still one per table
                    // per block — the lead's).
                    let mut member_co_txs = Vec::with_capacity(e.co_submitters.len());
                    let mut co_err: Option<CoreError> = None;
                    for co in &e.co_submitters {
                        let co_args = CoRequestUpdateArgs {
                            table_id: e.table_id.clone(),
                            version: expected_version,
                            changed_attrs: co.attrs.clone(),
                            new_hash: prepared.new_hash,
                        };
                        let key = format!("{}@co:{co_seq}", e.table_id);
                        co_seq += 1;
                        match self.submit_call(
                            co.peer.account(),
                            "co_request_update",
                            &co_args,
                            Some(key),
                        ) {
                            Ok(co_tx) => {
                                trace.push(
                                    "2",
                                    self.clock_ms,
                                    &self.peer_name_or_id(co.peer),
                                    format!(
                                        "co-signed combined update as tx {} (attrs [{}])",
                                        co_tx.short(),
                                        co.attrs.join(", ")
                                    ),
                                );
                                member_co_txs.push(co_tx);
                            }
                            Err(err) => {
                                co_err = Some(err);
                                break;
                            }
                        }
                    }
                    if let Some(err) = co_err {
                        // Unreachable in practice (signing capacity was
                        // pre-checked above); if it fires, the lead's
                        // request is already queued and will commit, so
                        // the member must be reported post-commit-point
                        // to keep the caller from rolling back state the
                        // chain is about to hold.
                        self.produce_blocks_until_all(&[tx])?;
                        slots[i] = Some(Err(fail(err, self.expect_success(&tx).is_ok())));
                        co_txs_out[i] = member_co_txs;
                        continue;
                    }
                    co_txs_out[i] = member_co_txs.clone();
                    inflight.push(InFlight {
                        idx: i,
                        prepared,
                        trace,
                        submitted_ms,
                        tx,
                        co_txs: member_co_txs,
                    });
                }
                Err(err) => slots[i] = Some(Err(fail(err, false))),
            }
        }

        timer.stage("phase.prepare");

        // Phase 2 — one consensus wait for the whole group (a single
        // scheduled round when the block limit admits everything). If
        // block production dies mid-group, some requests may already
        // have committed in earlier blocks: report each member with an
        // accurate commit point instead of a whole-group error, so
        // callers only roll back members whose update never reached the
        // chain.
        let mut wave_txs: Vec<TxId> = inflight.iter().map(|f| f.tx).collect();
        wave_txs.extend(inflight.iter().flat_map(|f| f.co_txs.iter().copied()));
        let consensus_wait = self.produce_blocks_until_all(&wave_txs);
        timer.stage("phase.consensus");
        if let Err(e) = consensus_wait {
            for f in inflight {
                let committed = matches!(
                    self.receipts.get(&f.tx),
                    Some((_, r)) if r.status.is_success()
                );
                slots[f.idx] = Some(Err(fail(e.clone(), committed)));
            }
            self.record_wave_telemetry(timer, stats_before);
            return Ok(GroupCommitOutcome {
                results: slots
                    .into_iter()
                    .map(|s| s.expect("every group member resolved"))
                    .collect(),
                co_txs: co_txs_out,
                deferred,
            });
        }

        // Phase 3 — demultiplex receipts; committed members advance their
        // updater and fan out to their receivers.
        struct CommittedEntry {
            idx: usize,
            table_id: String,
            updater: AccountId,
            new_hash: Hash256,
            attrs: Vec<String>,
            trace: WorkflowTrace,
            submitted_ms: u64,
            committed_ms: u64,
            version: u64,
            tx: TxId,
            co_txs: Vec<TxId>,
            fan: FanoutSummary,
            ack_txs: Vec<TxId>,
        }
        let mut committed: Vec<CommittedEntry> = Vec::new();
        for f in inflight {
            let InFlight {
                idx,
                mut prepared,
                mut trace,
                submitted_ms,
                tx,
                co_txs,
            } = f;
            if let Err(e) = self.expect_success(&tx) {
                trace.push(
                    "3",
                    self.clock_ms,
                    "contract",
                    format!("permission DENIED: {e}"),
                );
                slots[idx] = Some(Err(fail(e, false)));
                continue;
            }
            // Co-author attestations are per-submitter outcomes, not
            // member outcomes: a reverted co-request (a pre-screened
            // denied rider) never sinks the member — the caller
            // demultiplexes each co receipt to its own submitter.
            for (co, co_tx) in entries[idx].co_submitters.iter().zip(&co_txs) {
                let verdict = match self.expect_success(co_tx) {
                    Ok(()) => format!("co-author verified for attrs [{}]", co.attrs.join(", ")),
                    Err(e) => format!("co-author DENIED: {e}"),
                };
                let name = self.peer_name_or_id(co.peer);
                trace.push("3", self.clock_ms, &name, verdict);
            }
            let committed_ms = self.receipt_time(&tx).unwrap_or(self.clock_ms);
            let height = self
                .receipts
                .get(&tx)
                .map(|(h, _)| *h)
                .unwrap_or_else(|| self.chain.height());
            let version = match self.share_meta(&prepared.table_id) {
                Ok(meta) => meta.version,
                Err(e) => {
                    slots[idx] = Some(Err(fail(e, true)));
                    continue;
                }
            };
            trace.push(
                "3",
                committed_ms,
                "contract",
                format!(
                    "permission verified; update committed at height {height} (version {version})"
                ),
            );
            if let Err(e) = self.commit_local(&prepared, version) {
                slots[idx] = Some(Err(fail(e, true)));
                continue;
            }
            match self.fanout_apply(&mut prepared, version, committed_ms, &mut trace) {
                Ok(fan) => committed.push(CommittedEntry {
                    idx,
                    table_id: prepared.table_id,
                    updater: prepared.updater,
                    new_hash: prepared.new_hash,
                    attrs: prepared.attrs,
                    trace,
                    submitted_ms,
                    committed_ms,
                    version,
                    tx,
                    co_txs,
                    fan,
                    ack_txs: Vec::new(),
                }),
                Err(e) => slots[idx] = Some(Err(fail(e, true))),
            }
        }

        timer.stage("phase.fanout");

        // Phase 4 — submit every member's acks, then wait for all of them
        // together. With aggregated acks (the default) each member emits
        // ONE `ack_update_aggregate` under its own derived conflict key,
        // so the whole group's ack side fits a single block — the wave
        // pays ~2 rounds (request + aggregated ack) regardless of the
        // receiver count. In legacy mode, acks of the same table still
        // serialize across blocks (the conflict rule) while acks of
        // distinct tables share blocks, i.e. ~max-receivers ack rounds.
        let mut survivors: Vec<CommittedEntry> = Vec::new();
        for mut c in committed {
            match self.submit_ack_round(
                &c.table_id,
                c.version,
                c.new_hash,
                c.updater,
                &c.fan.others,
            ) {
                Ok(acks) => {
                    c.ack_txs = acks;
                    survivors.push(c);
                }
                Err(e) => slots[c.idx] = Some(Err(fail(e, true))),
            }
        }
        let all_acks: Vec<TxId> = survivors
            .iter()
            .flat_map(|c| c.ack_txs.iter().copied())
            .collect();
        let ack_wait = self.produce_blocks_until_all(&all_acks);
        timer.stage("phase.ack");
        if let Err(e) = ack_wait {
            // Every survivor's update is already on chain; an ack-phase
            // consensus failure is post-commit for all of them.
            for c in survivors {
                slots[c.idx] = Some(Err(fail(e.clone(), true)));
            }
            self.record_wave_telemetry(timer, stats_before);
            return Ok(GroupCommitOutcome {
                results: slots
                    .into_iter()
                    .map(|s| s.expect("every group member resolved"))
                    .collect(),
                co_txs: co_txs_out,
                deferred,
            });
        }

        // Phase 5 — per member: verify acks, close the trace, run the
        // Step-6 dependency check and cascades.
        for mut c in survivors {
            let mut ack_err = None;
            let mut synced_ms = c.committed_ms;
            for t in &c.ack_txs {
                if let Err(e) = self.expect_success(t) {
                    ack_err = Some(e);
                    break;
                }
                synced_ms = synced_ms.max(self.receipt_time(t).unwrap_or(self.clock_ms));
            }
            if let Some(e) = ack_err {
                slots[c.idx] = Some(Err(fail(e, true)));
                continue;
            }
            if !c.fan.others.is_empty() {
                c.trace.push(
                    "m",
                    synced_ms,
                    "contract",
                    format!(
                        "all {} peer(s) acked version {}; table unlocked",
                        c.fan.others.len(),
                        c.version
                    ),
                );
            }
            let mut participants = c.fan.others.clone();
            participants.push(c.updater);
            let swept = match cascades_mode {
                CascadeMode::Inline => {
                    let mut active = BTreeSet::new();
                    active.insert(c.table_id.clone());
                    self.step6_cascades(&c.table_id, &participants, &mut active, 0, &mut c.trace)
                }
                CascadeMode::Defer => self
                    .step6_detect(&c.table_id, &participants, &mut deferred, &mut c.trace)
                    .map(|()| (Vec::new(), Vec::new())),
            };
            match swept {
                Ok((cascades, failed_cascades)) => {
                    slots[c.idx] = Some(Ok(UpdateReport {
                        table_id: c.table_id,
                        version: c.version,
                        submitted_ms: c.submitted_ms,
                        committed_ms: c.committed_ms,
                        visible_ms: c.fan.visible_ms,
                        synced_ms,
                        changed_attrs: c.attrs,
                        rows_moved: c.fan.rows_moved,
                        bytes_moved: c.fan.bytes_moved,
                        tx_ids: {
                            let mut ids = vec![c.tx];
                            ids.extend(c.co_txs.iter().copied());
                            ids.extend(c.ack_txs.iter().copied());
                            ids
                        },
                        cascades,
                        failed_cascades,
                        trace: c.trace,
                    }));
                }
                Err(e) => slots[c.idx] = Some(Err(fail(e, true))),
            }
        }

        timer.stage("phase.cascade");

        self.flush_storage()?;
        self.record_wave_telemetry(timer, stats_before);
        Ok(GroupCommitOutcome {
            results: slots
                .into_iter()
                .map(|s| s.expect("every group member resolved"))
                .collect(),
            co_txs: co_txs_out,
            deferred,
        })
    }

    /// Closes out one wave's telemetry: the total-latency histogram plus
    /// the wave's block/tx/byte deltas (per-wave histograms feeding the
    /// p50/p95 lines, and the running `chain.*` totals). `before` is the
    /// [`SystemStats`] snapshot taken when the wave began.
    fn record_wave_telemetry(&self, timer: StageTimer, before: SystemStats) {
        timer.finish("total");
        if !self.telemetry.is_enabled() {
            return;
        }
        let now = &self.stats;
        let blocks = now.blocks.saturating_sub(before.blocks);
        let txs = now.txs.saturating_sub(before.txs);
        let p2p_bytes = now.p2p_bytes.saturating_sub(before.p2p_bytes);
        self.telemetry.record("wave.blocks", blocks);
        self.telemetry.record("wave.txs", txs);
        self.telemetry.record("wave.p2p_bytes", p2p_bytes);
        self.telemetry.add("chain.waves", 1);
        self.telemetry.add("chain.blocks", blocks);
        self.telemetry.add("chain.txs", txs);
        self.telemetry.add("chain.p2p_bytes", p2p_bytes);
        self.telemetry.add(
            "chain.consensus_msgs",
            now.consensus_msgs.saturating_sub(before.consensus_msgs),
        );
        self.telemetry.add(
            "chain.consensus_bytes",
            now.consensus_bytes.saturating_sub(before.consensus_bytes),
        );
    }

    /// The [`CascadeMode::Defer`] Step-6 sweep: detects which sibling
    /// shares now carry a pending change without propagating any of them,
    /// appending deduplicated [`DeferredCascade`]s for the caller's next
    /// wave.
    fn step6_detect(
        &mut self,
        table_id: &str,
        participants: &[AccountId],
        deferred: &mut Vec<DeferredCascade>,
        trace: &mut WorkflowTrace,
    ) -> Result<()> {
        for account in participants {
            let candidates = {
                let peer = self.peers.get(account).expect("peer exists");
                peer.overlapping_shares(table_id)?
            };
            for other_table in candidates {
                let (peer_name, differs) = {
                    let peer = self.peers.get(account).expect("peer exists");
                    let differs = match self.config.propagation {
                        PropagationMode::Delta => peer.has_pending_change(&other_table)?,
                        PropagationMode::FullTable => {
                            let regenerated = peer.regenerate_view(&other_table)?;
                            !changed_attrs(peer.baseline(&other_table)?, &regenerated).is_empty()
                        }
                    };
                    (peer.name.clone(), differs)
                };
                trace.push(
                    "6",
                    self.clock_ms,
                    &peer_name,
                    format!(
                        "dependency check: `{other_table}` overlaps `{table_id}`; {}",
                        if differs {
                            "content changed → cascade deferred to next wave"
                        } else {
                            "content unchanged → no cascade"
                        }
                    ),
                );
                if differs {
                    let peer = PeerId::from_account(*account);
                    if !deferred
                        .iter()
                        .any(|d| d.peer == peer && d.table_id == other_table)
                    {
                        deferred.push(DeferredCascade {
                            peer,
                            table_id: other_table,
                            origin: table_id.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Produces blocks until every listed transaction has a receipt.
    fn produce_blocks_until_all(&mut self, txs: &[TxId]) -> Result<()> {
        let max_blocks = 32 + txs.len();
        for _ in 0..max_blocks {
            if txs.iter().all(|t| self.receipts.contains_key(t)) {
                return Ok(());
            }
            self.produce_block()?;
        }
        if txs.iter().all(|t| self.receipts.contains_key(t)) {
            Ok(())
        } else {
            Err(CoreError::ConsensusFailed(format!(
                "{} of {} group transactions uncommitted after {max_blocks} blocks",
                txs.iter()
                    .filter(|t| !self.receipts.contains_key(t))
                    .count(),
                txs.len()
            )))
        }
    }

    /// Block timestamp (virtual ms) of the block holding `tx`'s receipt.
    fn receipt_time(&self, tx: &TxId) -> Option<u64> {
        let (height, _) = self.receipts.get(tx)?;
        self.chain.block_at(*height).map(|b| b.header.timestamp_ms)
    }

    // ----- Fig. 4 CRUD on shared data ----------------------------------

    /// Entry-level create on a shared table: insert locally (reflected
    /// into the source via `put`), then propagate.
    pub fn create_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        row: medledger_relational::Row,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Insert { row })?;
        self.propagate_update(peer, table_id)
    }

    /// Entry-level update on a shared table.
    pub fn update_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        key: Vec<medledger_relational::Value>,
        assignments: Vec<(String, medledger_relational::Value)>,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Update { key, assignments })?;
        self.propagate_update(peer, table_id)
    }

    /// Entry-level delete on a shared table.
    pub fn delete_shared_entry(
        &mut self,
        peer: PeerId,
        table_id: &str,
        key: Vec<medledger_relational::Value>,
    ) -> Result<UpdateReport> {
        self.peer_mut(peer)?
            .write_shared(table_id, WriteOp::Delete { key })?;
        self.propagate_update(peer, table_id)
    }

    /// Read: query the local database directly (the paper's Fig. 4 read
    /// path — no chain interaction).
    pub fn read_shared(&self, peer: PeerId, table_id: &str) -> Result<medledger_relational::Table> {
        Ok(self.peer(peer)?.shared_table(table_id)?.clone())
    }

    // ----- invariants ---------------------------------------------------

    /// Verifies the paper's core promise: for every *synced* shared
    /// table, every sharing peer's committed data matches the hash the
    /// contract committed, **and** the peer's stored copy agrees with
    /// that committed state plus whatever pending local delta it tracks
    /// (a peer with a permission-blocked cascade awaiting retry carries
    /// such a pending change; everything it serves is still accounted
    /// for). See [`PeerNode::check_share_integrity`].
    pub fn check_consistency(&self) -> Result<()> {
        let contract = self.sharing_contract()?;
        let state = self
            .runtime
            .contract_state(&contract)
            .ok_or_else(|| CoreError::BadAgreement("contract state missing".into()))?;
        for table_id in SharingContract::table_ids(state) {
            let meta =
                SharingContract::load_meta(state, &table_id).expect("listed tables have metadata");
            if !meta.synced() {
                continue;
            }
            for account in &meta.peers {
                let peer = self
                    .peers
                    .get(account)
                    .ok_or_else(|| CoreError::UnknownPeer(account.to_string()))?;
                peer.check_share_integrity(&table_id, meta.content_hash)?;
            }
        }
        Ok(())
    }
}

/// Splits collected ack signature shares into verified **contributors** —
/// `(account, share digest)` pairs in the input's canonical order, ready
/// to fold into the aggregate attestation — and **dissenters**, receivers
/// whose share failed verification against their own public key and must
/// fall back to an individual on-chain ack (preserving the barrier's
/// denial semantics for exactly them).
fn partition_ack_shares(
    msg: &[u8],
    shares: &[(AccountId, Signature)],
) -> (Vec<(AccountId, Hash256)>, Vec<AccountId>) {
    let mut contributors = Vec::with_capacity(shares.len());
    let mut dissenters = Vec::new();
    for (account, sig) in shares {
        if sig.verify(account, msg) {
            contributors.push((*account, sig.share_digest()));
        } else {
            dissenters.push(*account);
        }
    }
    (contributors, dissenters)
}

#[cfg(test)]
mod ack_share_tests {
    use super::*;

    #[test]
    fn all_valid_shares_contribute() {
        let msg = ack_message("T", 1, &Hash256([2; 32]));
        let mut a = KeyPair::generate("ack-share-a", 4);
        let mut b = KeyPair::generate("ack-share-b", 4);
        let shares = vec![
            (a.public(), a.sign(&msg).expect("a")),
            (b.public(), b.sign(&msg).expect("b")),
        ];
        let (contributors, dissenters) = partition_ack_shares(&msg, &shares);
        assert_eq!(contributors.len(), 2);
        assert!(dissenters.is_empty());
        assert_eq!(contributors[0].0, a.public());
        assert_eq!(contributors[1].0, b.public());
    }

    #[test]
    fn corrupted_share_becomes_dissenter() {
        let msg = ack_message("T", 1, &Hash256([2; 32]));
        let mut a = KeyPair::generate("ack-diss-a", 4);
        let mut b = KeyPair::generate("ack-diss-b", 4);
        let mut bad = b.sign(&msg).expect("b");
        bad.revealed[3] = Hash256([0xee; 32]);
        let shares = vec![(a.public(), a.sign(&msg).expect("a")), (b.public(), bad)];
        let (contributors, dissenters) = partition_ack_shares(&msg, &shares);
        assert_eq!(contributors.len(), 1);
        assert_eq!(contributors[0].0, a.public());
        assert_eq!(dissenters, vec![b.public()]);
    }

    #[test]
    fn share_signed_over_wrong_message_dissents() {
        let msg = ack_message("T", 1, &Hash256([2; 32]));
        let stale = ack_message("T", 1, &Hash256([3; 32]));
        let mut a = KeyPair::generate("ack-stale", 4);
        let shares = vec![(a.public(), a.sign(&stale).expect("a"))];
        let (contributors, dissenters) = partition_ack_shares(&msg, &shares);
        assert!(contributors.is_empty());
        assert_eq!(dissenters, vec![a.public()]);
    }
}
