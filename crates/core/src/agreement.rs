//! Sharing agreements: the pairwise protocol behind each shared table.
//!
//! "The formats and contents of shared data are predefined by sharing
//! peers" (Sec. III-A). An agreement names the shared table, and for each
//! participating peer the *binding*: which local source table and which
//! lens derive the shared view on that peer's side. D13 and D31 are the
//! same logical table bound differently — Patient derives it from D1 via
//! BX13, Doctor from D3 via BX31.

use medledger_bx::LensSpec;
use medledger_ledger::AccountId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One peer's side of a sharing agreement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeerBinding {
    /// The peer's local source table name (e.g. `"D1"`).
    pub source_table: String,
    /// The lens deriving the shared view from that source.
    pub lens: LensSpec,
}

/// A complete sharing agreement (one shared table).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharingAgreement {
    /// The shared table id — the Fig. 3 "Metadata ID" (e.g. `"D13&D31"`).
    pub table_id: String,
    /// Each peer's binding.
    pub bindings: BTreeMap<AccountId, PeerBinding>,
    /// Per-attribute writer sets (Fig. 3 "Write permission").
    pub write_permission: BTreeMap<String, Vec<AccountId>>,
    /// The Fig. 3 "Authority to change permission".
    pub authority: AccountId,
}

impl SharingAgreement {
    /// Starts building an agreement.
    pub fn builder(table_id: impl Into<String>) -> SharingAgreementBuilder {
        SharingAgreementBuilder {
            table_id: table_id.into(),
            bindings: BTreeMap::new(),
            write_permission: BTreeMap::new(),
            authority: None,
        }
    }

    /// The participating accounts.
    pub fn peers(&self) -> Vec<AccountId> {
        self.bindings.keys().copied().collect()
    }
}

/// Builder for [`SharingAgreement`].
pub struct SharingAgreementBuilder {
    table_id: String,
    bindings: BTreeMap<AccountId, PeerBinding>,
    write_permission: BTreeMap<String, Vec<AccountId>>,
    authority: Option<AccountId>,
}

impl SharingAgreementBuilder {
    /// Adds a peer with its source table and lens.
    pub fn bind(
        mut self,
        peer: AccountId,
        source_table: impl Into<String>,
        lens: LensSpec,
    ) -> Self {
        self.bindings.insert(
            peer,
            PeerBinding {
                source_table: source_table.into(),
                lens,
            },
        );
        self
    }

    /// Grants `writers` write permission on `attr`.
    pub fn allow_write(mut self, attr: impl Into<String>, writers: &[AccountId]) -> Self {
        self.write_permission.insert(attr.into(), writers.to_vec());
        self
    }

    /// Sets the permission-change authority.
    pub fn authority(mut self, who: AccountId) -> Self {
        self.authority = Some(who);
        self
    }

    /// Finalizes the agreement.
    ///
    /// # Panics
    /// Panics if no authority was set (a construction bug, not a runtime
    /// condition).
    pub fn build(self) -> SharingAgreement {
        SharingAgreement {
            table_id: self.table_id,
            bindings: self.bindings,
            write_permission: self.write_permission,
            authority: self.authority.expect("agreement needs an authority"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_crypto::KeyPair;

    #[test]
    fn builder_assembles_agreement() {
        let doctor = KeyPair::generate("agr-doc", 2).public();
        let patient = KeyPair::generate("agr-pat", 2).public();
        let a = SharingAgreement::builder("D13&D31")
            .bind(
                patient,
                "D1",
                LensSpec::project(&["patient_id", "dosage"], &["patient_id"]),
            )
            .bind(
                doctor,
                "D3",
                LensSpec::project(&["patient_id", "dosage"], &["patient_id"]),
            )
            .allow_write("dosage", &[doctor])
            .authority(doctor)
            .build();
        assert_eq!(a.table_id, "D13&D31");
        assert_eq!(a.peers().len(), 2);
        assert_eq!(a.write_permission["dosage"], vec![doctor]);
        assert_eq!(a.authority, doctor);
        assert_eq!(a.bindings[&patient].source_table, "D1");
    }

    #[test]
    #[should_panic(expected = "authority")]
    fn build_without_authority_panics() {
        let doctor = KeyPair::generate("agr-d2", 2).public();
        let _ = SharingAgreement::builder("T")
            .bind(
                doctor,
                "D",
                LensSpec::select(medledger_relational::Predicate::True),
            )
            .build();
    }

    #[test]
    fn agreements_serialize() {
        let doctor = KeyPair::generate("agr-ser", 2).public();
        let patient = KeyPair::generate("agr-ser2", 2).public();
        let a = SharingAgreement::builder("T")
            .bind(
                doctor,
                "D3",
                LensSpec::select(medledger_relational::Predicate::True),
            )
            .bind(
                patient,
                "D1",
                LensSpec::select(medledger_relational::Predicate::True),
            )
            .allow_write("x", &[doctor])
            .authority(doctor)
            .build();
        let json = serde_json::to_string(&a).expect("serialize");
        let back: SharingAgreement = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(a, back);
    }
}
