//! The typed session facade: [`MedLedger`] → [`PeerSession`] →
//! [`UpdateBatch`].
//!
//! The paper's workflow (Fig. 4/5) is "submit metadata tx → consensus →
//! propagate via lenses → ack". The engine ([`System`]) exposes that as
//! many small steps; this module packages it as three layers so callers
//! never order the steps by hand and never name peers by raw strings:
//!
//! 1. [`MedLedger`] — entry point. Built with a fluent [`MedLedgerBuilder`]
//!    over [`SystemConfig`]; `add_peer` returns typed [`PeerId`] handles.
//! 2. [`PeerSession`] — `ledger.session(peer)` scopes every action to one
//!    stakeholder: `read`, `source`, `share(..)` (a [`ShareBuilder`] over
//!    the sharing-agreement + Fig. 3 permission matrix), `audit`, `grant`,
//!    `retire`.
//! 3. [`UpdateBatch`] — `session.begin(table)` stages local writes;
//!    [`UpdateBatch::commit`] runs the whole Fig. 5 pipeline
//!    (request-update transaction, consensus round, lens propagation,
//!    acks, Step-6 cascades) and returns a typed [`CommitOutcome`].
//!    On failure the staged writes are rolled back — the batch is
//!    transactional from the updater's point of view — and the error is a
//!    typed [`CommitError`] (permission denials carry the reverted
//!    on-chain receipt).

use crate::agreement::SharingAgreement;
use crate::error::CoreError;
use crate::persist::Recovery;
use crate::system::{System, SystemConfig, SystemStats, UpdateReport, WorkflowTrace};
use crate::Result;
use medledger_bx::LensSpec;
use medledger_contracts::SharedTableMeta;
use medledger_ledger::{AuditEntry, Chain, Receipt, RevertKind};
use medledger_network::LatencyModel;
use medledger_relational::{Row, Table, TableDelta, Value, WriteOp};
use medledger_storage::{DurableStore, StorageBackend};
use std::fmt;
use std::path::PathBuf;

pub use crate::system::{ConsensusKind, PeerId, PropagationMode};

// ----------------------------------------------------------------------
// MedLedger + builder
// ----------------------------------------------------------------------

/// The facade over a whole simulated deployment.
///
/// Owns the engine ([`System`]); all mutation flows through typed
/// [`PeerSession`] handles.
pub struct MedLedger {
    system: System,
}

impl MedLedger {
    /// Starts a fluent builder with the default configuration
    /// (4 PBFT validators, 1 s blocks, LAN validator / WAN data-plane
    /// latency).
    pub fn builder() -> MedLedgerBuilder {
        MedLedgerBuilder {
            config: SystemConfig::default(),
            durable_path: None,
            backend: None,
        }
    }

    /// Builds a ledger directly from a full [`SystemConfig`].
    pub fn from_config(config: SystemConfig) -> Result<Self> {
        Ok(MedLedger {
            system: System::bootstrap(config)?,
        })
    }

    /// Registers a stakeholder, returning its typed handle.
    pub fn add_peer(&mut self, name: &str) -> Result<PeerId> {
        self.system.add_peer(name)
    }

    /// Looks up a previously registered peer by display name.
    pub fn peer_id(&self, name: &str) -> Result<PeerId> {
        self.system.peer_id(name)
    }

    /// The display name of a peer.
    pub fn peer_name(&self, peer: PeerId) -> Result<String> {
        Ok(self.system.peer(peer)?.name.clone())
    }

    /// All registered peers.
    pub fn peers(&self) -> Vec<PeerId> {
        self.system.peer_ids()
    }

    /// Opens a session acting as `peer`.
    pub fn session(&mut self, peer: PeerId) -> PeerSession<'_> {
        PeerSession {
            system: &mut self.system,
            peer,
        }
    }

    /// Opens a *read-only* session as `peer` (reads, audits, listings —
    /// no `&mut` required, so multiple readers can coexist).
    pub fn reader(&self, peer: PeerId) -> PeerReader<'_> {
        PeerReader {
            system: &self.system,
            peer,
        }
    }

    /// Verifies the paper's core promise: every synced shared table is
    /// byte-identical on all sharing peers and matches the hash the
    /// contract committed.
    pub fn check_consistency(&self) -> Result<()> {
        self.system.check_consistency()
    }

    /// The Fig. 3 metadata row of a shared table, from contract state.
    pub fn share_meta(&self, table_id: &str) -> Result<SharedTableMeta> {
        self.system.share_meta(table_id)
    }

    /// The chronological on-chain history of a shared table.
    pub fn audit(&self, table_id: &str) -> Vec<AuditEntry> {
        self.system.audit(table_id)
    }

    /// Read access to the chain (auditor view).
    pub fn chain(&self) -> &Chain {
        self.system.chain()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        self.system.stats()
    }

    /// Installs a live-telemetry recorder on the deployment and every
    /// peer (see [`medledger_telemetry::Recorder`]). Disabled by
    /// default; all metric calls are no-ops until one is installed.
    pub fn set_recorder(&mut self, recorder: medledger_telemetry::Recorder) {
        self.system.set_recorder(recorder);
    }

    /// The installed telemetry recorder (disabled unless
    /// [`MedLedger::set_recorder`] was called).
    pub fn recorder(&self) -> &medledger_telemetry::Recorder {
        self.system.recorder()
    }

    /// Current virtual time (ms).
    pub fn now_ms(&self) -> u64 {
        self.system.now_ms()
    }

    /// One-time signing keys a peer can still spend (each committed
    /// transaction consumes one).
    pub fn remaining_keys(&self, peer: PeerId) -> Result<u64> {
        Ok(self.system.peer(peer)?.keys.remaining())
    }

    /// True when the deployment persists to a durable backend (built
    /// with [`MedLedgerBuilder::durable`] /
    /// [`MedLedgerBuilder::storage_backend`]).
    pub fn is_durable(&self) -> bool {
        self.system.storage_attached()
    }

    /// Flushes all unpersisted state to the durable backend (no-op for
    /// in-memory deployments). Commit boundaries already flush; this is
    /// for callers that mutated state through lower-level seams.
    pub fn flush(&mut self) -> Result<()> {
        self.system.flush_storage()
    }

    /// Flushes and shuts the deployment down. Rebuilding with the same
    /// configuration and backend recovers this exact state.
    pub fn close(mut self) -> Result<()> {
        self.system.flush_storage()
    }

    /// Read-only access to the underlying engine.
    ///
    /// **Escape hatch** — hidden from the docs on purpose: application
    /// code should not need the raw `System`. For reads use
    /// [`MedLedger::reader`] / the accessors on this type; for pipelined
    /// and batched commits use `medledger-engine`'s `LedgerService`
    /// (`submit()` / `drain()`), which owns this seam internally.
    #[doc(hidden)]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying engine.
    ///
    /// **Escape hatch** — hidden from the docs on purpose: this bypasses
    /// the facade's transactional staging and rollback guarantees. The
    /// sanctioned path for concurrent / batched commits is
    /// `medledger-engine`'s `LedgerService` (ticketed `submit()` +
    /// `drain()`), which drives `System::commit_group_with` through this
    /// seam so callers never have to.
    #[doc(hidden)]
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }
}

/// Fluent builder over [`SystemConfig`].
pub struct MedLedgerBuilder {
    config: SystemConfig,
    durable_path: Option<PathBuf>,
    backend: Option<Box<dyn StorageBackend>>,
}

impl MedLedgerBuilder {
    /// Simulation seed (drives keys, latencies, PoW intervals).
    pub fn seed(mut self, seed: impl Into<String>) -> Self {
        self.config.seed = seed.into();
        self
    }

    /// Private permissioned chain: PBFT with the given block interval.
    pub fn pbft(mut self, block_interval_ms: u64) -> Self {
        self.config.consensus = ConsensusKind::PrivatePbft { block_interval_ms };
        self
    }

    /// Public proof-of-work model with the given mean block interval.
    pub fn pow(mut self, mean_interval_ms: u64) -> Self {
        self.config.consensus = ConsensusKind::PublicPow { mean_interval_ms };
        self
    }

    /// Any consensus flavor.
    pub fn consensus(mut self, kind: ConsensusKind) -> Self {
        self.config.consensus = kind;
        self
    }

    /// Number of PBFT validators.
    pub fn validators(mut self, n: usize) -> Self {
        self.config.n_validators = n;
        self
    }

    /// Validator-to-validator latency model.
    pub fn validator_latency(mut self, latency: LatencyModel) -> Self {
        self.config.validator_latency = latency;
        self
    }

    /// Peer-to-peer data-plane latency model.
    pub fn p2p_latency(mut self, latency: LatencyModel) -> Self {
        self.config.p2p_latency = latency;
        self
    }

    /// Max transactions per block.
    pub fn max_block_txs(mut self, n: usize) -> Self {
        self.config.max_block_txs = n;
        self
    }

    /// How shared-table updates travel between peers (defaults to
    /// [`PropagationMode::Delta`], the incremental hot path).
    pub fn propagation(mut self, mode: PropagationMode) -> Self {
        self.config.propagation = mode;
        self
    }

    /// Selects the whole-table exchange baseline
    /// ([`PropagationMode::FullTable`]) — every propagation re-runs full
    /// lens `get`/`put` and ships the entire table. Kept for comparison
    /// benches and mode-equivalence tests.
    pub fn full_table_propagation(self) -> Self {
        self.propagation(PropagationMode::FullTable)
    }

    /// One-time signing keys per peer (bounds transactions per peer).
    pub fn peer_key_capacity(mut self, n: usize) -> Self {
        self.config.peer_key_capacity = n;
        self
    }

    /// Parallel data-plane channels (and worker threads) for the
    /// per-receiver propagation fan-out: `0` (default) overlaps every
    /// receiver, `1` models the serial one-receiver-at-a-time baseline.
    pub fn fanout_workers(mut self, n: usize) -> Self {
        self.config.fanout_workers = n;
        self
    }

    /// Aggregated threshold acks (default on): receivers of one update
    /// wave contribute signature shares that fold into a single
    /// `ack_update_aggregate` transaction, so the chain cost of the ack
    /// side is O(1) per (table, wave) instead of one transaction per
    /// receiver. `false` restores the legacy one-`ack_update`-per-receiver
    /// protocol (kept for equivalence tests and comparison benches);
    /// final tables, hashes, and audit attributions are identical either
    /// way.
    pub fn aggregated_acks(mut self, on: bool) -> Self {
        self.config.aggregated_acks = on;
        self
    }

    /// Pipelined consensus depth (default 1 = classic serial rounds).
    /// With depth `d > 1`, up to `d` PBFT rounds overlap: the next
    /// round's pre-prepare/prepare phases are admitted as soon as the
    /// block `d - 1` rounds back was sealed, overlapping consensus with
    /// the previous wave's data-plane fan-out. Commit order stays serial
    /// and recovery re-verifies the pipelined chain in wave order. PoW
    /// ignores the knob (its interval model has no phases to overlap).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth;
        self
    }

    /// Key-range shards per shared table (normalized to a power of two
    /// in `1..=256`; default `1` = unsharded). With sharding on, every
    /// peer splits its stored shared tables along the content digest's
    /// key ranges: deltas route to the shards they land in, hash
    /// verification folds cached per-shard Merkle subroots, and one
    /// receiver's disjoint shards apply in parallel on the fan-out pool.
    /// Final state, hashes, receipts and traces are byte-identical for
    /// every setting — raise it when shared tables grow to thousands of
    /// rows and per-update applies start to dominate.
    pub fn shards_per_table(mut self, n: usize) -> Self {
        self.config.shards_per_table = n;
        self
    }

    /// Replaces the configuration wholesale.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Persists the deployment under `dir` (segmented per-peer WALs,
    /// periodic snapshots, the block stream). [`MedLedgerBuilder::build`]
    /// then *recovers* when the directory already holds a committed
    /// state — replaying WALs onto the latest snapshot and re-verifying
    /// the folded per-shard Merkle subroots against the replayed chain —
    /// and bootstraps fresh (writing an initial snapshot) otherwise.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_path = Some(dir.into());
        self.backend = None;
        self
    }

    /// Like [`MedLedgerBuilder::durable`] but with a caller-supplied
    /// backend (e.g. [`medledger_storage::MemoryBackend`] in tests, or a
    /// fault-injecting wrapper in the crash-recovery suite).
    pub fn storage_backend(mut self, backend: Box<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self.durable_path = None;
        self
    }

    /// Snapshot cadence for durable mode: a full snapshot every `n`
    /// flushes (structural changes always force one). See
    /// [`crate::persist::StorageOptions`].
    pub fn snapshot_every(mut self, n: u64) -> Self {
        self.config.storage.snapshot_every = n;
        self
    }

    /// Boots the system and deploys the sharing contract — or, in
    /// durable mode with existing state on disk, recovers the previous
    /// deployment instead (verifying it before serving).
    pub fn build(self) -> Result<MedLedger> {
        let backend: Option<Box<dyn StorageBackend>> = match (self.backend, &self.durable_path) {
            (Some(b), _) => Some(b),
            (None, Some(dir)) => Some(Box::new(
                DurableStore::open(dir.clone()).map_err(|e| CoreError::Storage(e.to_string()))?,
            )),
            (None, None) => None,
        };
        let Some(backend) = backend else {
            return MedLedger::from_config(self.config);
        };
        match System::recover(self.config.clone(), backend)? {
            Recovery::Resumed(system) => Ok(MedLedger { system: *system }),
            Recovery::Fresh(backend) => {
                let mut system = System::bootstrap(self.config)?;
                system.attach_storage(backend)?;
                Ok(MedLedger { system })
            }
        }
    }
}

// ----------------------------------------------------------------------
// PeerSession
// ----------------------------------------------------------------------

/// All actions of one stakeholder, scoped to a borrow of the ledger.
pub struct PeerSession<'a> {
    system: &'a mut System,
    peer: PeerId,
}

impl<'a> PeerSession<'a> {
    /// The acting peer.
    pub fn id(&self) -> PeerId {
        self.peer
    }

    /// The acting peer's display name.
    pub fn name(&self) -> String {
        self.system
            .peer(self.peer)
            .map(|p| p.name.clone())
            .unwrap_or_else(|_| self.peer.to_string())
    }

    /// Registers a local source table with initial contents.
    pub fn load_source(&mut self, name: &str, table: Table) -> Result<()> {
        self.system
            .peer_mut(self.peer)?
            .add_source_table(name, table)
    }

    /// A copy of a local table (source or materialized shared copy) —
    /// the paper's Fig. 4 read path, no chain interaction.
    pub fn source(&self, table: &str) -> Result<Table> {
        Ok(self.system.peer(self.peer)?.db.table(table)?.clone())
    }

    /// A copy of this peer's materialized view of a shared table.
    pub fn read(&self, table_id: &str) -> Result<Table> {
        self.system.read_shared(self.peer, table_id)
    }

    /// Shared tables this peer participates in.
    pub fn shares(&self) -> Result<Vec<String>> {
        Ok(self
            .system
            .peer(self.peer)?
            .shares()
            .into_iter()
            .map(str::to_string)
            .collect())
    }

    /// Starts a sharing agreement for a new shared table, with this peer
    /// as the first participant (and default authority).
    pub fn share(&mut self, table_id: impl Into<String>) -> ShareBuilder<'_, 'a> {
        ShareBuilder {
            table_id: table_id.into(),
            own_binding: None,
            others: Vec::new(),
            permissions: Vec::new(),
            authority: None,
            session: self,
        }
    }

    /// The on-chain history of a shared table (auditability).
    pub fn audit(&self, table_id: &str) -> Vec<AuditEntry> {
        self.system.audit(table_id)
    }

    /// Changes an attribute's writer set (this peer must be the Fig. 3
    /// authority).
    pub fn grant(&mut self, table_id: &str, attr: &str, writers: &[PeerId]) -> Result<()> {
        self.system
            .change_permission(self.peer, table_id, attr, writers)
    }

    /// Retires a shared table (Fig. 4 table-level delete; authority
    /// only). Sources keep their data; the chain keeps the history.
    pub fn retire(&mut self, table_id: &str) -> Result<()> {
        self.system.remove_share(self.peer, table_id)
    }

    /// Stages a transactional batch of writes against a shared table.
    pub fn begin(&mut self, table_id: impl Into<String>) -> UpdateBatch<'_> {
        UpdateBatch {
            system: self.system,
            peer: self.peer,
            table_id: table_id.into(),
            ops: Vec::new(),
        }
    }
}

/// The read-only subset of a peer's session (the paper's Fig. 4 read
/// path — no chain interaction, no mutation).
pub struct PeerReader<'a> {
    system: &'a System,
    peer: PeerId,
}

impl PeerReader<'_> {
    /// The acting peer.
    pub fn id(&self) -> PeerId {
        self.peer
    }

    /// The acting peer's display name.
    pub fn name(&self) -> String {
        self.system
            .peer(self.peer)
            .map(|p| p.name.clone())
            .unwrap_or_else(|_| self.peer.to_string())
    }

    /// A copy of a local table (source or materialized shared copy).
    pub fn source(&self, table: &str) -> Result<Table> {
        Ok(self.system.peer(self.peer)?.db.table(table)?.clone())
    }

    /// A copy of this peer's materialized view of a shared table.
    pub fn read(&self, table_id: &str) -> Result<Table> {
        self.system.read_shared(self.peer, table_id)
    }

    /// Shared tables this peer participates in.
    pub fn shares(&self) -> Result<Vec<String>> {
        Ok(self
            .system
            .peer(self.peer)?
            .shares()
            .into_iter()
            .map(str::to_string)
            .collect())
    }

    /// The on-chain history of a shared table (auditability).
    pub fn audit(&self, table_id: &str) -> Vec<AuditEntry> {
        self.system.audit(table_id)
    }
}

// ----------------------------------------------------------------------
// ShareBuilder
// ----------------------------------------------------------------------

/// Fluent construction of a shared table: bindings (source + lens per
/// peer) and the Fig. 3 per-attribute permission matrix.
///
/// Wraps [`SharingAgreement`]'s builder and executes the on-chain
/// registration on [`ShareBuilder::create`].
pub struct ShareBuilder<'s, 'a> {
    session: &'s mut PeerSession<'a>,
    table_id: String,
    own_binding: Option<(String, LensSpec)>,
    others: Vec<(PeerId, String, LensSpec)>,
    permissions: Vec<(String, Vec<PeerId>)>,
    authority: Option<PeerId>,
}

impl ShareBuilder<'_, '_> {
    /// This peer derives the shared table from `source_table` via `lens`.
    pub fn bind(mut self, source_table: impl Into<String>, lens: LensSpec) -> Self {
        self.own_binding = Some((source_table.into(), lens));
        self
    }

    /// Another sharing peer, with its own source table and lens.
    pub fn with(mut self, peer: PeerId, source_table: impl Into<String>, lens: LensSpec) -> Self {
        self.others.push((peer, source_table.into(), lens));
        self
    }

    /// Grants `writers` write permission on `attr` (one Fig. 3 cell).
    pub fn writers(mut self, attr: impl Into<String>, writers: &[PeerId]) -> Self {
        self.permissions.push((attr.into(), writers.to_vec()));
        self
    }

    /// Sets the permission-change authority (defaults to the session
    /// peer).
    pub fn authority(mut self, peer: PeerId) -> Self {
        self.authority = Some(peer);
        self
    }

    /// Verifies the initial views agree, registers the Fig. 3 metadata
    /// row on chain, and materializes every peer's local copy.
    pub fn create(self) -> Result<()> {
        let (own_source, own_lens) = self.own_binding.ok_or_else(|| {
            CoreError::BadAgreement(format!(
                "share `{}`: the opening peer needs a binding (use .bind(source, lens))",
                self.table_id
            ))
        })?;
        let me = self.session.peer;
        let mut builder = SharingAgreement::builder(self.table_id)
            .bind(me.account(), own_source, own_lens)
            .authority(self.authority.unwrap_or(me).account());
        for (peer, source, lens) in self.others {
            builder = builder.bind(peer.account(), source, lens);
        }
        for (attr, writers) in self.permissions {
            let accounts: Vec<_> = writers.iter().map(PeerId::account).collect();
            builder = builder.allow_write(attr, &accounts);
        }
        self.session.system.create_share(&builder.build())
    }
}

// ----------------------------------------------------------------------
// UpdateBatch + CommitOutcome + CommitError
// ----------------------------------------------------------------------

/// One staged local write.
enum StagedOp {
    /// A write against the shared table's materialized copy (reflected
    /// into the source via BX-put when staged).
    Shared(WriteOp),
    /// A write against one of the peer's *source* tables (the Fig. 5
    /// step-0 shape: edit the source, then propagate the derived view).
    Source { table: String, op: WriteOp },
}

/// A staged, transactional batch of writes against one shared table.
///
/// Writes are buffered until [`UpdateBatch::commit`]; commit applies them
/// locally, then drives the full Fig. 5 pipeline. If anything fails
/// *before the update commits on chain* — an invalid staged write, an
/// untranslatable view, a permission denial, the consistency barrier —
/// the tables the batch touched are rolled back to their pre-batch state
/// and a typed [`CommitError`] is returned. Two deliberate exceptions:
///
/// * [`CommitError::NoChange`] keeps the local writes (they are valid
///   edits of the peer's own data that simply produced no observable
///   change of the shared view — there is nothing to propagate or undo);
/// * a failure *after* the on-chain commit (e.g. signing keys exhausted
///   mid-ack) keeps the local state too, because the new version is
///   already on chain and at the other peers — rolling the updater back
///   would desynchronize it. [`CommitError::committed_on_chain`] reports
///   which side of the commit point the failure fell on.
#[must_use = "staged writes do nothing until .commit()"]
pub struct UpdateBatch<'s> {
    system: &'s mut System,
    peer: PeerId,
    table_id: String,
    ops: Vec<StagedOp>,
}

impl UpdateBatch<'_> {
    /// Stages an entry-level insert into the shared table.
    pub fn insert(mut self, row: Row) -> Self {
        self.ops.push(StagedOp::Shared(WriteOp::Insert { row }));
        self
    }

    /// Stages an entry-level multi-attribute update.
    pub fn update(mut self, key: Vec<Value>, assignments: Vec<(String, Value)>) -> Self {
        self.ops
            .push(StagedOp::Shared(WriteOp::Update { key, assignments }));
        self
    }

    /// Stages a single-attribute update (sugar over
    /// [`UpdateBatch::update`]).
    pub fn set(self, key: Vec<Value>, attr: impl Into<String>, value: Value) -> Self {
        self.update(key, vec![(attr.into(), value)])
    }

    /// Stages an entry-level delete.
    pub fn delete(mut self, key: Vec<Value>) -> Self {
        self.ops.push(StagedOp::Shared(WriteOp::Delete { key }));
        self
    }

    /// Stages an update against one of the peer's *source* tables; the
    /// change reaches the shared table through the lens on commit (the
    /// Researcher-edits-D2 shape of Fig. 5).
    pub fn update_source(
        mut self,
        table: impl Into<String>,
        key: Vec<Value>,
        assignments: Vec<(String, Value)>,
    ) -> Self {
        self.ops.push(StagedOp::Source {
            table: table.into(),
            op: WriteOp::Update { key, assignments },
        });
        self
    }

    /// Number of staged writes.
    pub fn staged(&self) -> usize {
        self.ops.len()
    }

    /// Applies the staged writes and drives the full Fig. 5 pipeline:
    /// request-update transaction, consensus, permission verification,
    /// peer fetch + BX-put, acks, and Step-6 cascades.
    ///
    /// On success every sharing peer holds the new data (and the table is
    /// unlocked); on a pre-commit failure the updater's staged writes are
    /// rolled back (see the type-level docs for the two exceptions).
    pub fn commit(self) -> std::result::Result<CommitOutcome, CommitError> {
        let UpdateBatch {
            system,
            peer,
            table_id,
            ops,
        } = self;
        if ops.is_empty() {
            return Err(CommitError::EmptyBatch { table_id });
        }

        // Rollback machinery, both modes: every staged write returns the
        // inverse deltas of the tables it touched; rollback re-applies
        // them in reverse, in O(changed rows) — no table snapshots. The
        // pending-delta tracking is snapshotted (cheap — pending deltas
        // are small) and restored alongside.
        let pending_snapshot = system
            .peer(peer)
            .map_err(CommitError::Engine)?
            .pending_snapshot();

        let mut inverses: Vec<(String, TableDelta)> = Vec::new();
        let staged = (|| -> Result<()> {
            let node = system.peer_mut(peer)?;
            for op in ops {
                match op {
                    StagedOp::Shared(op) => inverses.extend(node.write_shared(&table_id, op)?),
                    StagedOp::Source { table, op } => {
                        inverses.extend(node.write_source(&table, op)?)
                    }
                }
            }
            Ok(())
        })();
        let rollback = |system: &mut System| {
            let node = system.peer_mut(peer).expect("peer exists");
            node.rollback_writes(&inverses, pending_snapshot.clone());
        };
        if let Err(e) = staged {
            rollback(system);
            return Err(CommitError::from_core(e, system));
        }

        let version_before = system.share_meta(&table_id).map(|m| m.version).ok();
        match system.propagate_update(peer, &table_id) {
            Ok(report) => {
                let mut receipts = Vec::new();
                collect_receipts(system, &report, &mut receipts);
                Ok(CommitOutcome {
                    trace: report.trace.clone(),
                    receipts,
                    report,
                })
            }
            Err(e) => {
                // Did our update reach the chain before the failure? If
                // the contract's version advanced, the new data is
                // committed and already at the other peers — rolling the
                // updater back would desynchronize it from the chain.
                let version_after = system.share_meta(&table_id).map(|m| m.version).ok();
                let committed_on_chain = matches!(
                    (version_before, version_after),
                    (Some(before), Some(after)) if after > before
                );
                let err = CommitError::from_core(e, system);
                // NoChange is not a failed propagation: the staged writes
                // are valid local edits that left the shared view
                // untouched; keep them (matching direct source writes).
                if !committed_on_chain && !err.is_no_change() {
                    rollback(system);
                }
                Err(err.with_commit_point(committed_on_chain))
            }
        }
    }
}

/// Collects the receipts of every transaction a report (and its cascades)
/// produced, in commit order — the receipts a [`CommitOutcome`] carries.
/// Public so engines layered above the facade (e.g. the group-commit
/// queue in `medledger-engine`) can assemble identical outcomes.
pub fn collect_receipts(system: &System, report: &UpdateReport, out: &mut Vec<Receipt>) {
    for tx in &report.tx_ids {
        if let Some(r) = system.receipt(tx) {
            out.push(r.clone());
        }
    }
    for cascade in &report.cascades {
        collect_receipts(system, cascade, out);
    }
}

/// The result of a committed [`UpdateBatch`].
#[derive(Clone, Debug)]
pub struct CommitOutcome {
    /// Receipts of every transaction the commit produced, in commit
    /// order (request, acks, then cascades').
    pub receipts: Vec<Receipt>,
    /// The full propagation report, including cascades.
    pub report: UpdateReport,
    /// The numbered Fig. 5 trace (same as `report.trace`).
    pub trace: WorkflowTrace,
}

impl CommitOutcome {
    /// The committed contract version of the table.
    pub fn version(&self) -> u64 {
        self.report.version
    }

    /// Attributes the contract permission-checked.
    pub fn changed_attrs(&self) -> &[String] {
        &self.report.changed_attrs
    }

    /// End-to-end latency until all peers saw the data (virtual ms).
    pub fn visibility_latency_ms(&self) -> u64 {
        self.report.visibility_latency_ms()
    }

    /// Latency until the table unlocked for the next update (virtual ms).
    pub fn sync_latency_ms(&self) -> u64 {
        self.report.sync_latency_ms()
    }

    /// Cascaded updates triggered by the Step-6 dependency check.
    pub fn cascades(&self) -> &[UpdateReport] {
        &self.report.cascades
    }

    /// Cascades that were blocked (permission / untranslatable), as
    /// `(table_id, reason)`. The parent commit itself stands.
    pub fn failed_cascades(&self) -> &[(String, String)] {
        &self.report.failed_cascades
    }
}

/// Why an [`UpdateBatch::commit`] failed.
///
/// For pre-commit failures other than [`CommitError::NoChange`], the
/// staged local writes have been rolled back; `NoChange` keeps the local
/// edits, and [`CommitError::AfterCommit`] keeps everything because the
/// update is already on chain.
#[derive(Clone, Debug)]
pub enum CommitError {
    /// The contract denied the write (Fig. 3 permission matrix). The
    /// reverted transaction stays on chain — `receipt` is its receipt —
    /// making the denial auditable.
    PermissionDenied {
        /// Human-readable contract reason.
        reason: String,
        /// The reverted on-chain receipt, if retrievable.
        receipt: Option<Receipt>,
    },
    /// The paper's barrier: the table still awaits acks for the previous
    /// version.
    Barrier {
        /// Human-readable contract reason.
        reason: String,
        /// The reverted on-chain receipt, if retrievable.
        receipt: Option<Receipt>,
    },
    /// Any other on-chain revert.
    Reverted {
        /// Receipt-level classification.
        kind: RevertKind,
        /// Human-readable reason.
        reason: String,
        /// The reverted on-chain receipt, if retrievable.
        receipt: Option<Receipt>,
    },
    /// The staged writes produced no observable change of the shared
    /// view; there is nothing to propagate. The local edits are kept —
    /// they are valid writes to the peer's own data (e.g. a source edit
    /// outside the lens footprint), exactly as if made directly.
    NoChange {
        /// The target table.
        table_id: String,
    },
    /// `commit()` on a batch with no staged writes.
    EmptyBatch {
        /// The target table.
        table_id: String,
    },
    /// Another queued (or still-uncommitted) update already claims the
    /// same shared table — the paper's one-update-per-table-per-block
    /// rule, surfaced as a typed error at enqueue/commit time instead of
    /// a silent re-queue. Retry after the conflicting update commits.
    Conflicted {
        /// The contended shared table.
        table_id: String,
    },
    /// A sharing peer could not translate the new view back into its
    /// source (lens `put` failed) — rejected before anything committed.
    Untranslatable {
        /// The lens error.
        reason: String,
    },
    /// Any other engine failure.
    Engine(CoreError),
    /// The update committed on chain but a *post-commit* step failed
    /// (e.g. an ack could not be signed or reverted). Local state is
    /// KEPT — the updater already matches the chain and the other
    /// peers — but the table may remain locked awaiting acks.
    AfterCommit {
        /// The underlying failure.
        source: Box<CommitError>,
    },
}

impl CommitError {
    /// Classifies an engine error into the typed commit-error taxonomy,
    /// resolving reverted transactions to their on-chain receipts. Public
    /// so engines layered above the facade (the group-commit queue) can
    /// surface identical errors.
    pub fn from_core(e: CoreError, system: &System) -> Self {
        match e {
            CoreError::TxReverted(info) => {
                let receipt = system.receipt(&info.tx_id).cloned();
                match info.kind {
                    RevertKind::PermissionDenied => CommitError::PermissionDenied {
                        reason: info.reason,
                        receipt,
                    },
                    RevertKind::StateLocked => CommitError::Barrier {
                        reason: info.reason,
                        receipt,
                    },
                    kind => CommitError::Reverted {
                        kind,
                        reason: info.reason,
                        receipt,
                    },
                }
            }
            CoreError::NoChange(table_id) => CommitError::NoChange { table_id },
            CoreError::Conflicted(table_id) => CommitError::Conflicted { table_id },
            CoreError::Bx(e) => CommitError::Untranslatable {
                reason: e.to_string(),
            },
            other => CommitError::Engine(other),
        }
    }

    /// Marks the error as having occurred after the on-chain commit
    /// point (local state kept); pre-commit errors pass through.
    pub fn with_commit_point(self, committed_on_chain: bool) -> Self {
        if committed_on_chain {
            CommitError::AfterCommit {
                source: Box::new(self),
            }
        } else {
            self
        }
    }

    /// True iff the update reached the chain before the failure — local
    /// and on-chain state were kept, nothing was rolled back.
    pub fn committed_on_chain(&self) -> bool {
        matches!(self, CommitError::AfterCommit { .. })
    }

    /// The reverted on-chain receipt, where one exists.
    pub fn receipt(&self) -> Option<&Receipt> {
        match self {
            CommitError::PermissionDenied { receipt, .. }
            | CommitError::Barrier { receipt, .. }
            | CommitError::Reverted { receipt, .. } => receipt.as_ref(),
            CommitError::AfterCommit { source } => source.receipt(),
            _ => None,
        }
    }

    /// True iff the commit was rejected by the Fig. 3 permission matrix
    /// (the update never committed; staged writes were rolled back).
    pub fn is_permission_denied(&self) -> bool {
        matches!(self, CommitError::PermissionDenied { .. })
    }

    /// True iff the staged writes were a no-op on the shared view (the
    /// local edits were kept; there was nothing to propagate).
    pub fn is_no_change(&self) -> bool {
        matches!(self, CommitError::NoChange { .. })
    }

    /// True iff another queued update already claims the same shared
    /// table (retry after it commits).
    pub fn is_conflicted(&self) -> bool {
        matches!(self, CommitError::Conflicted { .. })
    }
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::PermissionDenied { reason, .. } => {
                write!(f, "commit denied: {reason}")
            }
            CommitError::Barrier { reason, .. } => {
                write!(f, "commit blocked by sync barrier: {reason}")
            }
            CommitError::Reverted { reason, .. } => write!(f, "commit reverted: {reason}"),
            CommitError::NoChange { table_id } => {
                write!(
                    f,
                    "nothing to commit for `{table_id}` (no observable change)"
                )
            }
            CommitError::EmptyBatch { table_id } => {
                write!(f, "empty batch for `{table_id}`")
            }
            CommitError::Conflicted { table_id } => {
                write!(
                    f,
                    "another queued update already claims shared table `{table_id}`"
                )
            }
            CommitError::Untranslatable { reason } => {
                write!(f, "a sharing peer cannot translate the update: {reason}")
            }
            CommitError::Engine(e) => write!(f, "engine error: {e}"),
            CommitError::AfterCommit { source } => {
                write!(
                    f,
                    "failed after on-chain commit (local state kept): {source}"
                )
            }
        }
    }
}

impl std::error::Error for CommitError {}
