//! Attribute-exposure metrics (experiment E9).
//!
//! The paper's motivation (Sec. I): "additional but unnecessary
//! information might influence or even mislead users' judgment", and
//! proprietary attributes "should not be directly accessed by other
//! users". This module quantifies both effects for a sharing design:
//!
//! * **interference** — attributes exposed to a stakeholder that it is
//!   *not* interested in (the confusion/fear factor in the paper's
//!   open-notes example),
//! * **leakage** — attributes a provider considers private that some
//!   design exposes anyway (e.g. whole-record sharing),
//! * **coverage** — interested attributes actually received.

use std::collections::{BTreeMap, BTreeSet};

/// A stakeholder and the attributes it cares about.
#[derive(Clone, Debug)]
pub struct InterestProfile {
    /// Stakeholder name.
    pub name: String,
    /// Attributes of the full record this stakeholder is interested in.
    pub interests: BTreeSet<String>,
}

impl InterestProfile {
    /// Builds a profile.
    pub fn new(name: &str, interests: &[&str]) -> Self {
        InterestProfile {
            name: name.to_string(),
            interests: interests.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A sharing design: which attributes each stakeholder actually sees.
#[derive(Clone, Debug, Default)]
pub struct SharingDesign {
    /// Stakeholder → exposed attribute set.
    pub exposed: BTreeMap<String, BTreeSet<String>>,
}

impl SharingDesign {
    /// The paper's fine-grained design: each stakeholder sees exactly the
    /// union of the views it participates in.
    pub fn fine_grained(views: &[(&str, &[&str])]) -> Self {
        let mut exposed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (who, attrs) in views {
            exposed
                .entry(who.to_string())
                .or_default()
                .extend(attrs.iter().map(|s| s.to_string()));
        }
        SharingDesign { exposed }
    }

    /// The whole-record baseline (MedRec-style record-level access):
    /// every authorized stakeholder sees all attributes.
    pub fn whole_record(stakeholders: &[&str], all_attrs: &[&str]) -> Self {
        let full: BTreeSet<String> = all_attrs.iter().map(|s| s.to_string()).collect();
        SharingDesign {
            exposed: stakeholders
                .iter()
                .map(|s| (s.to_string(), full.clone()))
                .collect(),
        }
    }
}

/// Per-stakeholder exposure metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExposureRow {
    /// Stakeholder name.
    pub name: String,
    /// Attributes exposed.
    pub exposed: usize,
    /// Exposed ∩ interested.
    pub covered: usize,
    /// Exposed ∖ interested (interference).
    pub interference: usize,
    /// Interested ∖ exposed (unmet interest).
    pub missing: usize,
}

/// Computes exposure metrics for every stakeholder profile under a design.
pub fn exposure_report(design: &SharingDesign, profiles: &[InterestProfile]) -> Vec<ExposureRow> {
    profiles
        .iter()
        .map(|p| {
            let exposed = design.exposed.get(&p.name).cloned().unwrap_or_default();
            let covered = exposed.intersection(&p.interests).count();
            let interference = exposed.difference(&p.interests).count();
            let missing = p.interests.difference(&exposed).count();
            ExposureRow {
                name: p.name.clone(),
                exposed: exposed.len(),
                covered,
                interference,
                missing,
            }
        })
        .collect()
}

/// Total interference across all stakeholders (lower is better).
pub fn total_interference(rows: &[ExposureRow]) -> usize {
    rows.iter().map(|r| r.interference).sum()
}

/// The paper's Fig. 1 interest profiles.
pub fn paper_profiles() -> Vec<InterestProfile> {
    vec![
        InterestProfile::new(
            "Patient",
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "address",
                "dosage",
            ],
        ),
        InterestProfile::new(
            "Researcher",
            &["medication_name", "mechanism_of_action", "mode_of_action"],
        ),
        InterestProfile::new(
            "Doctor",
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ],
        ),
    ]
}

/// The paper's Fig. 1 fine-grained design (what each stakeholder holds
/// locally plus receives through shares).
pub fn paper_fine_grained_design() -> SharingDesign {
    SharingDesign::fine_grained(&[
        (
            "Patient",
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "address",
                "dosage",
            ][..],
        ),
        (
            "Researcher",
            &["medication_name", "mechanism_of_action", "mode_of_action"][..],
        ),
        (
            "Doctor",
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "mechanism_of_action",
                "dosage",
            ][..],
        ),
    ])
}

/// All seven attributes of the full record.
pub fn all_attrs() -> Vec<&'static str> {
    vec![
        "patient_id",
        "medication_name",
        "clinical_data",
        "address",
        "dosage",
        "mechanism_of_action",
        "mode_of_action",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_grained_has_zero_interference_in_paper_scenario() {
        let rows = exposure_report(&paper_fine_grained_design(), &paper_profiles());
        assert_eq!(total_interference(&rows), 0);
        // And full coverage.
        assert!(rows.iter().all(|r| r.missing == 0), "{rows:?}");
    }

    #[test]
    fn whole_record_exposes_unwanted_attributes() {
        let design =
            SharingDesign::whole_record(&["Patient", "Researcher", "Doctor"], &all_attrs());
        let rows = exposure_report(&design, &paper_profiles());
        // Researcher is interested in 3 of 7 attrs → 4 interfering.
        let researcher = rows.iter().find(|r| r.name == "Researcher").expect("row");
        assert_eq!(researcher.exposed, 7);
        assert_eq!(researcher.interference, 4);
        // The fine-grained design strictly dominates on interference.
        let fg = exposure_report(&paper_fine_grained_design(), &paper_profiles());
        assert!(total_interference(&rows) > total_interference(&fg));
    }

    #[test]
    fn missing_counts_unmet_interest() {
        let design = SharingDesign::fine_grained(&[("Patient", &["dosage"][..])]);
        let rows = exposure_report(&design, &paper_profiles());
        let patient = rows.iter().find(|r| r.name == "Patient").expect("row");
        assert_eq!(patient.covered, 1);
        assert_eq!(patient.missing, 4);
        assert_eq!(patient.interference, 0);
    }

    #[test]
    fn unknown_stakeholder_sees_nothing() {
        let design = paper_fine_grained_design();
        let rows = exposure_report(&design, &[InterestProfile::new("Insurer", &["dosage"])]);
        assert_eq!(rows[0].exposed, 0);
        assert_eq!(rows[0].missing, 1);
    }
}
