//! # medledger-core
//!
//! The paper's system: blockchain-based bidirectional updates on
//! fine-grained medical data.
//!
//! This crate assembles the substrates (`relational`, `bx`, `ledger`,
//! `contracts`, `consensus`, `network`, `crypto`) into the architecture of
//! the paper's Fig. 2:
//!
//! * [`peer::PeerNode`] — a stakeholder (Patient / Doctor / Researcher)
//!   with a local database holding source tables and materialized shared
//!   views, plus the **database manager** that runs BX programs,
//! * [`agreement::SharingAgreement`] — the pairwise protocol: which lens
//!   each peer uses to derive the shared table from its own source, and
//!   the Fig. 3 permission matrix registered on the sharing contract,
//! * [`system::System`] — the engine: the whole simulated deployment —
//!   peers, the permissioned chain with PBFT (or a public-PoW model), the
//!   sharing contract, and the Fig. 4 / Fig. 5 workflows with numbered
//!   traces,
//! * [`facade`] — the public surface: [`facade::MedLedger`] (fluent
//!   builder, typed [`system::PeerId`] handles),
//!   [`facade::PeerSession`] (read / share / audit / grant), and the
//!   transactional [`facade::UpdateBatch`] whose `commit()` drives the
//!   whole Fig. 5 pipeline and returns a typed
//!   [`facade::CommitOutcome`],
//! * [`scenario`] — the paper's exact Fig. 1 scenario, programmatically,
//! * [`baselines`] — storage models of HDG \[22\] and MedRec \[4\] for the
//!   E8/E9 comparisons,
//! * [`exposure`] — the attribute-exposure metrics behind the paper's
//!   privacy claims.
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for results.

pub mod agreement;
pub mod baselines;
pub mod error;
pub mod exposure;
pub mod facade;
pub mod peer;
pub mod persist;
pub mod scenario;
pub mod system;

pub use agreement::{PeerBinding, SharingAgreement};
pub use error::{CoreError, RevertInfo};
pub use facade::{
    CommitError, CommitOutcome, MedLedger, MedLedgerBuilder, PeerReader, PeerSession, ShareBuilder,
    UpdateBatch,
};
pub use peer::{PeerNode, PendingSnapshot, PropagationMode};
pub use persist::{Recovery, StorageOptions};
pub use system::{
    CascadeMode, CoSubmitter, ConsensusKind, DeferredCascade, GroupCommitOutcome, GroupEntry,
    GroupEntryFailure, GroupEntryResult, PeerId, System, SystemConfig, UpdateReport, WorkflowTrace,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
