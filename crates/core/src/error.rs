//! Core errors.

use medledger_bx::BxError;
use medledger_contracts::ContractError;
use medledger_ledger::{ChainError, RevertKind, TxId};
use medledger_relational::RelationalError;
use std::fmt;

/// Structured description of an on-chain revert: the transaction that
/// reverted, the receipt-level classification, and the human-readable
/// reason. The receipt itself stays retrievable from the system by id.
#[derive(Clone, Debug, PartialEq)]
pub struct RevertInfo {
    /// The reverted transaction.
    pub tx_id: TxId,
    /// Machine-readable classification from the receipt.
    pub kind: RevertKind,
    /// Human-readable revert reason.
    pub reason: String,
}

impl fmt::Display for RevertInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Errors from the assembled system.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// A relational operation failed.
    Relational(RelationalError),
    /// A lens operation failed.
    Bx(BxError),
    /// Chain validation failed.
    Chain(ChainError),
    /// Contract execution failed (also carried inside reverted receipts).
    Contract(ContractError),
    /// A named peer does not exist.
    UnknownPeer(String),
    /// A shared table id is not registered.
    UnknownShare(String),
    /// The sharing agreement is inconsistent (e.g. the peers' lenses
    /// produce different initial views).
    BadAgreement(String),
    /// The on-chain transaction reverted.
    TxReverted(RevertInfo),
    /// Consensus failed to commit a block.
    ConsensusFailed(String),
    /// A signing key ran out of one-time keys.
    KeysExhausted,
    /// An invariant the paper promises was violated (this is a bug if it
    /// ever fires; surfaced for the ablation experiments that *disable*
    /// safeguards on purpose).
    ConsistencyViolation(String),
    /// The update produced no change (nothing to propagate).
    NoChange(String),
    /// A group-commit member targets a shared table that another queued
    /// (or still-uncommitted) update already claims — the paper's
    /// one-update-per-table-per-block rule surfaced as a typed error
    /// instead of a silent re-queue.
    Conflicted(String),
    /// The durable storage layer failed (WAL/snapshot I/O, corruption, or
    /// a recovered state that disagrees with the recovered chain).
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relational(e) => write!(f, "relational: {e}"),
            CoreError::Bx(e) => write!(f, "bx: {e}"),
            CoreError::Chain(e) => write!(f, "chain: {e}"),
            CoreError::Contract(e) => write!(f, "contract: {e}"),
            CoreError::UnknownPeer(p) => write!(f, "unknown peer `{p}`"),
            CoreError::UnknownShare(s) => write!(f, "unknown shared table `{s}`"),
            CoreError::BadAgreement(s) => write!(f, "bad sharing agreement: {s}"),
            CoreError::TxReverted(s) => write!(f, "transaction reverted: {s}"),
            CoreError::ConsensusFailed(s) => write!(f, "consensus failed: {s}"),
            CoreError::KeysExhausted => write!(f, "signing keys exhausted"),
            CoreError::ConsistencyViolation(s) => write!(f, "consistency violation: {s}"),
            CoreError::NoChange(s) => write!(f, "no change to propagate for `{s}`"),
            CoreError::Conflicted(s) => {
                write!(f, "another queued update already claims shared table `{s}`")
            }
            CoreError::Storage(s) => write!(f, "storage: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RelationalError> for CoreError {
    fn from(e: RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<BxError> for CoreError {
    fn from(e: BxError) -> Self {
        CoreError::Bx(e)
    }
}

impl From<ChainError> for CoreError {
    fn from(e: ChainError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<ContractError> for CoreError {
    fn from(e: ContractError) -> Self {
        CoreError::Contract(e)
    }
}

impl From<medledger_crypto::SigningError> for CoreError {
    fn from(_: medledger_crypto::SigningError) -> Self {
        CoreError::KeysExhausted
    }
}

impl From<medledger_storage::StorageError> for CoreError {
    fn from(e: medledger_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}
