//! The paper's Fig. 1 / Fig. 5 scenario, programmatically.
//!
//! Three peers — Patient, Doctor, Researcher — share slices of the full
//! medical records exactly as in Fig. 1:
//!
//! * `D1` (Patient's source): a0–a4,
//! * `D2` (Researcher's source): a1, a5, a6, keyed by medication,
//! * `D3` (Doctor's source): a0, a1, a2, a5, a4,
//! * shared `D13&D31` (Patient ↔ Doctor): a0, a1, a2, a4,
//! * shared `D23&D32` (Researcher ↔ Doctor): a1, a5,
//!
//! with the Fig. 3 permission matrix (Doctor writes medication and dosage,
//! Patient and Doctor write clinical data; Researcher writes the
//! mechanism; Doctor and Researcher may write the medication name on the
//! research share). The key attribute of each shared table is registered
//! with a writer set too, so inserts/deletes (which touch the key) are
//! permission-checked like any other attribute.

use crate::agreement::SharingAgreement;
use crate::system::{System, SystemConfig, UpdateReport};
use crate::Result;
use medledger_bx::LensSpec;
use medledger_ledger::AccountId;
use medledger_relational::{Predicate, Value, WriteOp};
use medledger_workload::fig1_full_records;

/// Shared table between Patient and Doctor (Fig. 1's D13 / D31).
pub const SHARE_PD: &str = "D13&D31";
/// Shared table between Researcher and Doctor (Fig. 1's D23 / D32).
pub const SHARE_RD: &str = "D23&D32";
/// Patient peer name.
pub const PATIENT: &str = "Patient";
/// Doctor peer name.
pub const DOCTOR: &str = "Doctor";
/// Researcher peer name.
pub const RESEARCHER: &str = "Researcher";

/// Handles into the built scenario.
pub struct Fig1Scenario {
    /// The running system.
    pub system: System,
    /// Patient account.
    pub patient: AccountId,
    /// Doctor account.
    pub doctor: AccountId,
    /// Researcher account.
    pub researcher: AccountId,
}

/// The lens BX13: Patient's D1 → D13 (a0, a1, a2, a4; D1 holds only the
/// patient's own row, so no selection is needed).
pub fn bx13_lens() -> LensSpec {
    LensSpec::project(
        &["patient_id", "medication_name", "clinical_data", "dosage"],
        &["patient_id"],
    )
}

/// The lens BX31: Doctor's D3 → D31. The doctor's source holds *all*
/// patients, so the lens first selects patient 188's row (the sharing
/// peer), then projects the patient-facing slice.
pub fn bx31_lens() -> LensSpec {
    LensSpec::select(Predicate::eq("patient_id", Value::Int(188))).compose(bx13_lens())
}

/// The lens BX23: Researcher's D2 → D23 (a1, a5; D2 is already keyed by
/// medication, so this is a key-preserving projection). A view-side
/// insert (e.g. a cascaded medication rename) fills the dropped
/// `mode_of_action` column with a declared default.
pub fn bx23_lens() -> LensSpec {
    LensSpec::project_with_defaults(
        &["medication_name", "mechanism_of_action"],
        &["medication_name"],
        &[("mode_of_action", Value::text("unknown"))],
    )
}

/// The lens BX32: Doctor's D3 → D32 (a1, a5 with duplicate elimination
/// under the FD medication → mechanism).
pub fn bx32_lens() -> LensSpec {
    LensSpec::project_distinct(
        &["medication_name", "mechanism_of_action"],
        &["medication_name"],
    )
}

/// Builds the Fig. 1 scenario on a fresh system.
pub fn build(config: SystemConfig) -> Result<Fig1Scenario> {
    let mut system = System::bootstrap(config)?;
    let patient = system.add_peer(PATIENT)?;
    let doctor = system.add_peer(DOCTOR)?;
    let researcher = system.add_peer(RESEARCHER)?;

    let full = fig1_full_records();
    // Fig. 1 source tables as projections of the full records.
    // D1 holds only the patient's own record (Fig. 1 shows one row).
    let d1 = full
        .select(&Predicate::eq("patient_id", Value::Int(188)))?
        .project(
            &["patient_id", "medication_name", "clinical_data", "address", "dosage"],
            &["patient_id"],
        )?;
    let d2 = full.project_distinct(
        &["medication_name", "mechanism_of_action", "mode_of_action"],
        &["medication_name"],
    )?;
    let d3 = full.project(
        &[
            "patient_id",
            "medication_name",
            "clinical_data",
            "mechanism_of_action",
            "dosage",
        ],
        &["patient_id"],
    )?;
    system.peer_mut(PATIENT)?.add_source_table("D1", d1)?;
    system.peer_mut(RESEARCHER)?.add_source_table("D2", d2)?;
    system.peer_mut(DOCTOR)?.add_source_table("D3", d3)?;

    // Share D13&D31 with the Fig. 3 permission row.
    let share_pd = SharingAgreement::builder(SHARE_PD)
        .bind(patient, "D1", bx13_lens())
        .bind(doctor, "D3", bx31_lens())
        .allow_write("patient_id", &[doctor])
        .allow_write("medication_name", &[doctor])
        .allow_write("dosage", &[doctor])
        .allow_write("clinical_data", &[patient, doctor])
        .authority(doctor)
        .build();
    system.create_share(&share_pd)?;

    // Share D23&D32 with the Fig. 3 permission row.
    let share_rd = SharingAgreement::builder(SHARE_RD)
        .bind(researcher, "D2", bx23_lens())
        .bind(doctor, "D3", bx32_lens())
        .allow_write("medication_name", &[doctor, researcher])
        .allow_write("mechanism_of_action", &[researcher])
        .authority(researcher)
        .build();
    system.create_share(&share_rd)?;

    Ok(Fig1Scenario {
        system,
        patient,
        doctor,
        researcher,
    })
}

/// Runs the paper's Fig. 5 narrative:
///
/// 1. the Researcher updates `MeA1` on its source D2 and propagates
///    through `D23&D32` (Steps 1–5; Step 6 finds no content change in
///    `D13&D31`, so Steps 7–11 are skipped), then
/// 2. the Doctor decides to update the Dosage and propagates through
///    `D13&D31` (the paper's Steps 7–11).
///
/// Returns both reports (researcher's, doctor's).
pub fn run_fig5(scn: &mut Fig1Scenario) -> Result<(UpdateReport, UpdateReport)> {
    // Researcher edits the mechanism on its own source.
    scn.system.peer_mut(RESEARCHER)?.write_source(
        "D2",
        WriteOp::Update {
            key: vec![Value::text("Ibuprofen")],
            assignments: vec![(
                "mechanism_of_action".into(),
                Value::text("MeA1-revised"),
            )],
        },
    )?;
    let researcher_report = scn.system.propagate_update(scn.researcher, SHARE_RD)?;

    // Doctor decides to modify the dosage on D31 (paper Step 7).
    scn.system.peer_mut(DOCTOR)?.write_shared(
        SHARE_PD,
        WriteOp::Update {
            key: vec![Value::Int(188)],
            assignments: vec![("dosage".into(), Value::text("two tablets every 6h"))],
        },
    )?;
    let doctor_report = scn.system.propagate_update(scn.doctor, SHARE_PD)?;

    Ok((researcher_report, doctor_report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> SystemConfig {
        SystemConfig {
            consensus: crate::system::ConsensusKind::PrivatePbft {
                block_interval_ms: 100,
            },
            seed: "scenario-test".into(),
            peer_key_capacity: 64,
            ..Default::default()
        }
    }

    #[test]
    fn fig1_views_match_paper() {
        let scn = build(fast_config()).expect("build");
        // D13 on Patient == D31 on Doctor, byte for byte.
        let d13 = scn.system.peer(PATIENT).expect("peer").shared_table(SHARE_PD).expect("D13");
        let d31 = scn.system.peer(DOCTOR).expect("peer").shared_table(SHARE_PD).expect("D31");
        assert_eq!(d13.content_hash(), d31.content_hash());
        assert_eq!(d13.len(), 1, "only patient 188 is in D1");
        // D23 == D32.
        let d23 = scn
            .system
            .peer(RESEARCHER)
            .expect("peer")
            .shared_table(SHARE_RD)
            .expect("D23");
        let d32 = scn.system.peer(DOCTOR).expect("peer").shared_table(SHARE_RD).expect("D32");
        assert_eq!(d23.content_hash(), d32.content_hash());
        assert_eq!(d23.len(), 2);
        scn.system.check_consistency().expect("consistent");
    }

    #[test]
    fn fig3_metadata_rows_on_contract() {
        let scn = build(fast_config()).expect("build");
        let meta = scn.system.share_meta(SHARE_PD).expect("meta");
        assert_eq!(meta.peers.len(), 2);
        assert_eq!(meta.authority, scn.doctor);
        assert!(meta.write_permission["clinical_data"].contains(&scn.patient));
        assert!(!meta.write_permission["dosage"].contains(&scn.patient));
        let meta_rd = scn.system.share_meta(SHARE_RD).expect("meta");
        assert_eq!(meta_rd.authority, scn.researcher);
        assert!(meta_rd.write_permission["mechanism_of_action"].contains(&scn.researcher));
    }

    #[test]
    fn fig5_full_workflow() {
        let mut scn = build(fast_config()).expect("build");
        let (r_report, d_report) = run_fig5(&mut scn).expect("fig5");

        // Researcher's update propagated the mechanism to the Doctor's D3.
        let d3 = scn.system.peer(DOCTOR).expect("peer").db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("MeA1-revised")
        );
        // Step 6 ran and found no cascade.
        assert!(r_report
            .trace
            .steps
            .iter()
            .any(|s| s.number == "6" && s.description.contains("no cascade")));
        assert!(r_report.cascades.is_empty());

        // Doctor's dosage update reached the Patient's D1.
        let d1 = scn.system.peer(PATIENT).expect("peer").db.table("D1").expect("D1");
        assert_eq!(
            d1.get(&[Value::Int(188)]).expect("row")[4],
            Value::text("two tablets every 6h")
        );
        assert_eq!(d_report.changed_attrs, vec!["dosage".to_string()]);

        // All shared tables are consistent and synced afterwards.
        scn.system.check_consistency().expect("consistent");
        assert!(scn.system.share_meta(SHARE_PD).expect("meta").synced());
        assert!(scn.system.share_meta(SHARE_RD).expect("meta").synced());

        // Audit history shows the updates on chain.
        let hist = scn.system.audit(SHARE_RD);
        assert!(hist
            .iter()
            .any(|e| e.method.as_deref() == Some("request_update")));
        assert!(hist.iter().any(|e| e.method.as_deref() == Some("ack_update")));
    }

    #[test]
    fn patient_dosage_update_denied_then_granted() {
        // The paper's permission-change example: Patient cannot write
        // Dosage until the Doctor grants it.
        let mut scn = build(fast_config()).expect("build");
        scn.system
            .peer_mut(PATIENT)
            .expect("peer")
            .write_shared(
                SHARE_PD,
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("self-medicating"))],
                },
            )
            .expect("local edit");
        let err = scn
            .system
            .propagate_update(scn.patient, SHARE_PD)
            .unwrap_err();
        assert!(matches!(err, crate::CoreError::TxReverted(_)), "{err}");

        // Doctor grants Patient write on dosage (Fig. 3 example).
        let (doctor, patient) = (scn.doctor, scn.patient);
        scn.system
            .change_permission(doctor, SHARE_PD, "dosage", &[doctor, patient])
            .expect("grant");
        let report = scn
            .system
            .propagate_update(scn.patient, SHARE_PD)
            .expect("now permitted");
        assert_eq!(report.changed_attrs, vec!["dosage".to_string()]);
        // The Doctor's D3 now carries the patient's dosage edit.
        let d3 = scn.system.peer(DOCTOR).expect("peer").db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[4],
            Value::text("self-medicating")
        );
        scn.system.check_consistency().expect("consistent");
    }

    #[test]
    fn medication_rename_cascades_to_researcher() {
        // A Doctor-side medication rename through D13&D31 rewrites D3;
        // D32 (which also reads medication_name) then differs from its
        // baseline, so Step 6 fires a cascade into D23&D32. A rename
        // changes the view key of D32, so the cascade's diff counts every
        // attribute (row delete + insert) — the Doctor therefore needs
        // write permission on mechanism_of_action too, which the
        // Researcher (the share's authority) grants first.
        let mut scn = build(fast_config()).expect("build");
        let (doctor, researcher) = (scn.doctor, scn.researcher);
        scn.system
            .change_permission(researcher, SHARE_RD, "mechanism_of_action", &[doctor, researcher])
            .expect("grant");
        scn.system
            .peer_mut(DOCTOR)
            .expect("peer")
            .write_shared(
                SHARE_PD,
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("medication_name".into(), Value::text("IbuprofenXR"))],
                },
            )
            .expect("local edit");
        let report = scn.system.propagate_update(scn.doctor, SHARE_PD).expect("propagate");
        // Step 6 on the Doctor fires a cascade into D23&D32.
        assert_eq!(report.cascades.len(), 1, "trace:\n{}", report.trace.render());
        assert_eq!(report.cascades[0].table_id, SHARE_RD);
        // The Researcher's D2 now has the renamed medication.
        let d2 = scn
            .system
            .peer(RESEARCHER)
            .expect("peer")
            .db
            .table("D2")
            .expect("D2");
        assert!(d2.get(&[Value::text("IbuprofenXR")]).is_some());
        scn.system.check_consistency().expect("consistent");
    }

    #[test]
    fn blocked_cascade_is_recorded_not_fatal() {
        // Without the mechanism grant, the same rename commits on
        // D13&D31 but the cascade into D23&D32 is permission-blocked and
        // recorded in failed_cascades.
        let mut scn = build(fast_config()).expect("build");
        scn.system
            .peer_mut(DOCTOR)
            .expect("peer")
            .write_shared(
                SHARE_PD,
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("medication_name".into(), Value::text("IbuprofenXR"))],
                },
            )
            .expect("local edit");
        let report = scn.system.propagate_update(scn.doctor, SHARE_PD).expect("propagate");
        assert!(report.cascades.is_empty());
        assert_eq!(report.failed_cascades.len(), 1);
        assert_eq!(report.failed_cascades[0].0, SHARE_RD);
        // The parent update still reached the Patient.
        let d1 = scn.system.peer(PATIENT).expect("peer").db.table("D1").expect("D1");
        assert_eq!(
            d1.get(&[Value::Int(188)]).expect("row")[1],
            Value::text("IbuprofenXR")
        );
        scn.system.check_consistency().expect("consistent");
    }
}
