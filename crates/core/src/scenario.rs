//! The paper's Fig. 1 / Fig. 5 scenario, programmatically.
//!
//! Three peers — Patient, Doctor, Researcher — share slices of the full
//! medical records exactly as in Fig. 1:
//!
//! * `D1` (Patient's source): a0–a4,
//! * `D2` (Researcher's source): a1, a5, a6, keyed by medication,
//! * `D3` (Doctor's source): a0, a1, a2, a5, a4,
//! * shared `D13&D31` (Patient ↔ Doctor): a0, a1, a2, a4,
//! * shared `D23&D32` (Researcher ↔ Doctor): a1, a5,
//!
//! with the Fig. 3 permission matrix (Doctor writes medication and dosage,
//! Patient and Doctor write clinical data; Researcher writes the
//! mechanism; Doctor and Researcher may write the medication name on the
//! research share). The key attribute of each shared table is registered
//! with a writer set too, so inserts/deletes (which touch the key) are
//! permission-checked like any other attribute.
//!
//! Everything is expressed through the typed facade: the scenario returns
//! a [`MedLedger`] plus [`PeerId`] handles, and [`run_fig5`] drives the
//! workflow with [`crate::facade::UpdateBatch::commit`].

use crate::facade::{CommitError, CommitOutcome, MedLedger, PeerId};
use crate::system::SystemConfig;
use crate::Result;
use medledger_bx::LensSpec;
use medledger_relational::{Predicate, Value};
use medledger_workload::fig1_full_records;

/// Shared table between Patient and Doctor (Fig. 1's D13 / D31).
pub const SHARE_PD: &str = "D13&D31";
/// Shared table between Researcher and Doctor (Fig. 1's D23 / D32).
pub const SHARE_RD: &str = "D23&D32";
/// Patient peer name.
pub const PATIENT: &str = "Patient";
/// Doctor peer name.
pub const DOCTOR: &str = "Doctor";
/// Researcher peer name.
pub const RESEARCHER: &str = "Researcher";

/// Handles into the built scenario.
pub struct Fig1Scenario {
    /// The running ledger.
    pub ledger: MedLedger,
    /// Patient handle.
    pub patient: PeerId,
    /// Doctor handle.
    pub doctor: PeerId,
    /// Researcher handle.
    pub researcher: PeerId,
}

/// The lens BX13: Patient's D1 → D13 (a0, a1, a2, a4; D1 holds only the
/// patient's own row, so no selection is needed).
pub fn bx13_lens() -> LensSpec {
    LensSpec::project(
        &["patient_id", "medication_name", "clinical_data", "dosage"],
        &["patient_id"],
    )
}

/// The lens BX31: Doctor's D3 → D31. The doctor's source holds *all*
/// patients, so the lens first selects patient 188's row (the sharing
/// peer), then projects the patient-facing slice.
pub fn bx31_lens() -> LensSpec {
    LensSpec::select(Predicate::eq("patient_id", Value::Int(188))).compose(bx13_lens())
}

/// The lens BX23: Researcher's D2 → D23 (a1, a5; D2 is already keyed by
/// medication, so this is a key-preserving projection). A view-side
/// insert (e.g. a cascaded medication rename) fills the dropped
/// `mode_of_action` column with a declared default.
pub fn bx23_lens() -> LensSpec {
    LensSpec::project_with_defaults(
        &["medication_name", "mechanism_of_action"],
        &["medication_name"],
        &[("mode_of_action", Value::text("unknown"))],
    )
}

/// The lens BX32: Doctor's D3 → D32 (a1, a5 with duplicate elimination
/// under the FD medication → mechanism).
pub fn bx32_lens() -> LensSpec {
    LensSpec::project_distinct(
        &["medication_name", "mechanism_of_action"],
        &["medication_name"],
    )
}

/// Builds the Fig. 1 scenario on a fresh ledger.
pub fn build(config: SystemConfig) -> Result<Fig1Scenario> {
    populate(MedLedger::builder().config(config).build()?)
}

/// Loads the Fig. 1 peers, sources, and shares onto an already-built
/// ledger (e.g. one constructed with
/// [`crate::facade::MedLedgerBuilder::durable`]). The ledger must be
/// freshly bootstrapped — peer names must not collide.
pub fn populate(mut ledger: MedLedger) -> Result<Fig1Scenario> {
    let patient = ledger.add_peer(PATIENT)?;
    let doctor = ledger.add_peer(DOCTOR)?;
    let researcher = ledger.add_peer(RESEARCHER)?;

    let full = fig1_full_records();
    // Fig. 1 source tables as projections of the full records.
    // D1 holds only the patient's own record (Fig. 1 shows one row).
    let d1 = full
        .select(&Predicate::eq("patient_id", Value::Int(188)))?
        .project(
            &[
                "patient_id",
                "medication_name",
                "clinical_data",
                "address",
                "dosage",
            ],
            &["patient_id"],
        )?;
    let d2 = full.project_distinct(
        &["medication_name", "mechanism_of_action", "mode_of_action"],
        &["medication_name"],
    )?;
    let d3 = full.project(
        &[
            "patient_id",
            "medication_name",
            "clinical_data",
            "mechanism_of_action",
            "dosage",
        ],
        &["patient_id"],
    )?;
    ledger.session(patient).load_source("D1", d1)?;
    ledger.session(researcher).load_source("D2", d2)?;
    ledger.session(doctor).load_source("D3", d3)?;

    // Share D13&D31 with the Fig. 3 permission row (Doctor is authority).
    ledger
        .session(doctor)
        .share(SHARE_PD)
        .bind("D3", bx31_lens())
        .with(patient, "D1", bx13_lens())
        .writers("patient_id", &[doctor])
        .writers("medication_name", &[doctor])
        .writers("dosage", &[doctor])
        .writers("clinical_data", &[patient, doctor])
        .create()?;

    // Share D23&D32 with the Fig. 3 permission row (Researcher is
    // authority).
    ledger
        .session(researcher)
        .share(SHARE_RD)
        .bind("D2", bx23_lens())
        .with(doctor, "D3", bx32_lens())
        .writers("medication_name", &[doctor, researcher])
        .writers("mechanism_of_action", &[researcher])
        .create()?;

    Ok(Fig1Scenario {
        ledger,
        patient,
        doctor,
        researcher,
    })
}

/// Runs the paper's Fig. 5 narrative:
///
/// 1. the Researcher updates `MeA1` on its source D2 and commits through
///    `D23&D32` (Steps 1–5; Step 6 finds no content change in `D13&D31`,
///    so Steps 7–11 are skipped), then
/// 2. the Doctor decides to update the Dosage and commits through
///    `D13&D31` (the paper's Steps 7–11).
///
/// Returns both commit outcomes (researcher's, doctor's).
pub fn run_fig5(
    scn: &mut Fig1Scenario,
) -> std::result::Result<(CommitOutcome, CommitOutcome), CommitError> {
    // Researcher edits the mechanism on its own source; the change flows
    // through BX23 into the shared table at commit.
    let researcher_outcome = scn
        .ledger
        .session(scn.researcher)
        .begin(SHARE_RD)
        .update_source(
            "D2",
            vec![Value::text("Ibuprofen")],
            vec![("mechanism_of_action".into(), Value::text("MeA1-revised"))],
        )
        .commit()?;

    // Doctor decides to modify the dosage on D31 (paper Step 7).
    let doctor_outcome = scn
        .ledger
        .session(scn.doctor)
        .begin(SHARE_PD)
        .set(
            vec![Value::Int(188)],
            "dosage",
            Value::text("two tablets every 6h"),
        )
        .commit()?;

    Ok((researcher_outcome, doctor_outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ConsensusKind;

    fn fast_config() -> SystemConfig {
        SystemConfig {
            consensus: ConsensusKind::PrivatePbft {
                block_interval_ms: 100,
            },
            seed: "scenario-test".into(),
            peer_key_capacity: 64,
            ..Default::default()
        }
    }

    #[test]
    fn fig1_views_match_paper() {
        let mut scn = build(fast_config()).expect("build");
        // D13 on Patient == D31 on Doctor, byte for byte.
        let d13 = scn.ledger.session(scn.patient).read(SHARE_PD).expect("D13");
        let d31 = scn.ledger.session(scn.doctor).read(SHARE_PD).expect("D31");
        assert_eq!(d13.content_hash(), d31.content_hash());
        assert_eq!(d13.len(), 1, "only patient 188 is in D1");
        // D23 == D32.
        let d23 = scn
            .ledger
            .session(scn.researcher)
            .read(SHARE_RD)
            .expect("D23");
        let d32 = scn.ledger.session(scn.doctor).read(SHARE_RD).expect("D32");
        assert_eq!(d23.content_hash(), d32.content_hash());
        assert_eq!(d23.len(), 2);
        scn.ledger.check_consistency().expect("consistent");
    }

    #[test]
    fn fig3_metadata_rows_on_contract() {
        let scn = build(fast_config()).expect("build");
        let meta = scn.ledger.share_meta(SHARE_PD).expect("meta");
        assert_eq!(meta.peers.len(), 2);
        assert_eq!(meta.authority, scn.doctor.account());
        assert!(meta.write_permission["clinical_data"].contains(&scn.patient.account()));
        assert!(!meta.write_permission["dosage"].contains(&scn.patient.account()));
        let meta_rd = scn.ledger.share_meta(SHARE_RD).expect("meta");
        assert_eq!(meta_rd.authority, scn.researcher.account());
        assert!(meta_rd.write_permission["mechanism_of_action"].contains(&scn.researcher.account()));
    }

    #[test]
    fn fig5_full_workflow() {
        let mut scn = build(fast_config()).expect("build");
        let (r_outcome, d_outcome) = run_fig5(&mut scn).expect("fig5");

        // Researcher's update propagated the mechanism to the Doctor's D3.
        let d3 = scn.ledger.session(scn.doctor).source("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("MeA1-revised")
        );
        // Step 6 ran and found no cascade.
        assert!(r_outcome
            .trace
            .steps
            .iter()
            .any(|s| s.number == "6" && s.description.contains("no cascade")));
        assert!(r_outcome.cascades().is_empty());

        // Doctor's dosage update reached the Patient's D1.
        let d1 = scn.ledger.session(scn.patient).source("D1").expect("D1");
        assert_eq!(
            d1.get(&[Value::Int(188)]).expect("row")[4],
            Value::text("two tablets every 6h")
        );
        assert_eq!(d_outcome.changed_attrs(), ["dosage".to_string()]);
        // The commit produced on-chain receipts (request + ack).
        assert!(d_outcome.receipts.len() >= 2);
        assert!(d_outcome.receipts.iter().all(|r| r.status.is_success()));

        // All shared tables are consistent and synced afterwards.
        scn.ledger.check_consistency().expect("consistent");
        assert!(scn.ledger.share_meta(SHARE_PD).expect("meta").synced());
        assert!(scn.ledger.share_meta(SHARE_RD).expect("meta").synced());

        // Audit history shows the updates on chain.
        let hist = scn.ledger.audit(SHARE_RD);
        assert!(hist
            .iter()
            .any(|e| e.method.as_deref() == Some("request_update")));
        assert!(hist
            .iter()
            .any(|e| e.method.as_deref() == Some("ack_update_aggregate")));
    }

    #[test]
    fn patient_dosage_update_denied_then_granted() {
        // The paper's permission-change example: Patient cannot write
        // Dosage until the Doctor grants it.
        let mut scn = build(fast_config()).expect("build");
        let err = scn
            .ledger
            .session(scn.patient)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text("self-medicating"),
            )
            .commit()
            .unwrap_err();
        assert!(err.is_permission_denied(), "{err}");
        // The denied commit rolled the Patient's local copy back.
        let d13 = scn.ledger.session(scn.patient).read(SHARE_PD).expect("D13");
        assert_eq!(
            d13.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("one tablet every 4h")
        );

        // Doctor grants Patient write on dosage (Fig. 3 example).
        let (doctor, patient) = (scn.doctor, scn.patient);
        scn.ledger
            .session(doctor)
            .grant(SHARE_PD, "dosage", &[doctor, patient])
            .expect("grant");
        let outcome = scn
            .ledger
            .session(patient)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "dosage",
                Value::text("self-medicating"),
            )
            .commit()
            .expect("now permitted");
        assert_eq!(outcome.changed_attrs(), ["dosage".to_string()]);
        // The Doctor's D3 now carries the patient's dosage edit.
        let d3 = scn.ledger.session(doctor).source("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[4],
            Value::text("self-medicating")
        );
        scn.ledger.check_consistency().expect("consistent");
    }

    #[test]
    fn medication_rename_cascades_to_researcher() {
        // A Doctor-side medication rename through D13&D31 rewrites D3;
        // D32 (which also reads medication_name) then differs from its
        // baseline, so Step 6 fires a cascade into D23&D32. A rename
        // changes the view key of D32, so the cascade's diff counts every
        // attribute (row delete + insert) — the Doctor therefore needs
        // write permission on mechanism_of_action too, which the
        // Researcher (the share's authority) grants first.
        let mut scn = build(fast_config()).expect("build");
        let (doctor, researcher) = (scn.doctor, scn.researcher);
        scn.ledger
            .session(researcher)
            .grant(SHARE_RD, "mechanism_of_action", &[doctor, researcher])
            .expect("grant");
        let outcome = scn
            .ledger
            .session(doctor)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "medication_name",
                Value::text("IbuprofenXR"),
            )
            .commit()
            .expect("commit");
        // Step 6 on the Doctor fires a cascade into D23&D32.
        assert_eq!(
            outcome.cascades().len(),
            1,
            "trace:\n{}",
            outcome.trace.render()
        );
        assert_eq!(outcome.cascades()[0].table_id, SHARE_RD);
        // The Researcher's D2 now has the renamed medication.
        let d2 = scn.ledger.session(researcher).source("D2").expect("D2");
        assert!(d2.get(&[Value::text("IbuprofenXR")]).is_some());
        scn.ledger.check_consistency().expect("consistent");
    }

    #[test]
    fn blocked_cascade_is_recorded_not_fatal() {
        // Without the mechanism grant, the same rename commits on
        // D13&D31 but the cascade into D23&D32 is permission-blocked and
        // recorded in failed_cascades.
        let mut scn = build(fast_config()).expect("build");
        let outcome = scn
            .ledger
            .session(scn.doctor)
            .begin(SHARE_PD)
            .set(
                vec![Value::Int(188)],
                "medication_name",
                Value::text("IbuprofenXR"),
            )
            .commit()
            .expect("commit");
        assert!(outcome.cascades().is_empty());
        assert_eq!(outcome.failed_cascades().len(), 1);
        assert_eq!(outcome.failed_cascades()[0].0, SHARE_RD);
        // The parent update still reached the Patient.
        let d1 = scn.ledger.session(scn.patient).source("D1").expect("D1");
        assert_eq!(
            d1.get(&[Value::Int(188)]).expect("row")[1],
            Value::text("IbuprofenXR")
        );
        scn.ledger.check_consistency().expect("consistent");
    }
}
