//! Storage baselines for the E8 comparison (paper Sec. V).
//!
//! The paper's claim against HDG \[22\]: storing *metadata* on chain is
//! cheaper than storing *data* on chain, because "the medical data size
//! can become huge so that the data become burdens for blockchain nodes'
//! storage since each node has the same copy of blockchain".
//!
//! Three per-update on-chain cost models, all built from the *actual*
//! transaction encodings of this codebase so the comparison is fair:
//!
//! * **MedLedger (ours)** — a `request_update` call: table id, content
//!   hash, changed attributes. Size independent of the record payload.
//! * **HDG \[22\]** — the full (encrypted) record data travels on chain;
//!   we hex-encode the canonical record bytes into the transaction.
//! * **MedRec \[4\]** — a pointer record (content hash + provider location
//!   string) per update; like ours it is payload-independent, but it
//!   carries no fine-grained permission or bidirectional-update metadata.
//!
//! Signatures: our hash-based signatures are ~16 KiB, far larger than the
//! ~72-byte ECDSA signatures a production deployment would use. To keep
//! the storage comparison about *architecture* rather than signature
//! scheme, [`tx_chain_bytes`] reports the unsigned transaction body plus a
//! modeled 72-byte production signature.

use medledger_crypto::{sha256, Hash256, KeyPair};
use medledger_ledger::{Transaction, TxPayload};
use medledger_relational::Table;

/// Modeled size of a production (ECDSA-style) signature.
pub const MODELED_SIGNATURE_BYTES: usize = 72;

/// Bytes a blockchain node stores for one transaction: the encoded body
/// plus a modeled production signature.
pub fn tx_chain_bytes(tx: &Transaction) -> usize {
    serde_json::to_vec(tx).expect("tx serializes").len() + MODELED_SIGNATURE_BYTES
}

fn dummy_account() -> medledger_ledger::AccountId {
    KeyPair::generate("baseline-account", 2).public()
}

/// One update's on-chain bytes under **our** model: metadata only.
pub fn ours_update_bytes(table_id: &str, changed_attrs: &[&str]) -> usize {
    let args = serde_json::json!({
        "table_id": table_id,
        "new_hash": Hash256([7; 32]),
        "changed_attrs": changed_attrs,
    });
    let tx = Transaction {
        sender: dummy_account(),
        nonce: 0,
        payload: TxPayload::CallContract {
            contract: Hash256([1; 32]),
            method: "request_update".into(),
            args: serde_json::to_vec(&args).expect("args"),
        },
        conflict_key: Some(table_id.to_string()),
    };
    tx_chain_bytes(&tx)
}

/// One update's on-chain bytes under the **HDG** model: the (encrypted)
/// record itself is stored on chain. `record` is the current shared
/// table; its canonical encoding stands in for the ciphertext (encryption
/// preserves length up to small constants).
pub fn hdg_update_bytes(record: &Table) -> usize {
    let mut payload = Vec::new();
    for row in record.sorted_rows() {
        payload.extend_from_slice(&row.encode());
    }
    // Hex encoding mirrors how binary ciphertexts are carried in
    // JSON-bodied transactions.
    let hex: String = payload.iter().map(|b| format!("{b:02x}")).collect();
    let args = serde_json::json!({ "record": hex });
    let tx = Transaction {
        sender: dummy_account(),
        nonce: 0,
        payload: TxPayload::CallContract {
            contract: Hash256([2; 32]),
            method: "store_record".into(),
            args: serde_json::to_vec(&args).expect("args"),
        },
        conflict_key: None,
    };
    tx_chain_bytes(&tx)
}

/// One update's on-chain bytes under the **MedRec** model: a pointer
/// (hash + provider location) plus a record-level permission entry.
pub fn medrec_update_bytes(provider_url: &str) -> usize {
    let args = serde_json::json!({
        "record_hash": sha256(b"record"),
        "location": provider_url,
        "permission": "patient,provider",
    });
    let tx = Transaction {
        sender: dummy_account(),
        nonce: 0,
        payload: TxPayload::CallContract {
            contract: Hash256([3; 32]),
            method: "update_pointer".into(),
            args: serde_json::to_vec(&args).expect("args"),
        },
        conflict_key: None,
    };
    tx_chain_bytes(&tx)
}

/// A row of the E8 storage table.
#[derive(Clone, Debug)]
pub struct StorageRow {
    /// Model name.
    pub model: &'static str,
    /// Bytes per update transaction.
    pub bytes_per_update: usize,
    /// Bytes for `n_updates` updates.
    pub total_bytes: usize,
}

/// Builds the E8 storage comparison for a given shared table and update
/// count.
pub fn storage_comparison(record: &Table, n_updates: usize) -> Vec<StorageRow> {
    let ours = ours_update_bytes("D13&D31", &["dosage"]);
    let hdg = hdg_update_bytes(record);
    let medrec = medrec_update_bytes("https://hospital.example/records/188");
    vec![
        StorageRow {
            model: "MedLedger (ours)",
            bytes_per_update: ours,
            total_bytes: ours * n_updates,
        },
        StorageRow {
            model: "HDG [22] (data on chain)",
            bytes_per_update: hdg,
            total_bytes: hdg * n_updates,
        },
        StorageRow {
            model: "MedRec [4] (pointer on chain)",
            bytes_per_update: medrec,
            total_bytes: medrec * n_updates,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_workload::EhrGenerator;

    #[test]
    fn ours_is_payload_independent() {
        let small = ours_update_bytes("T", &["dosage"]);
        let more_attrs = ours_update_bytes("T", &["dosage", "clinical_data", "medication_name"]);
        // Grows only with the attr-name bytes, not with record count.
        assert!(more_attrs - small < 200, "diff {}", more_attrs - small);
    }

    #[test]
    fn hdg_grows_with_record_size() {
        let small = EhrGenerator::new("hdg-s").full_records(10);
        let large = EhrGenerator::new("hdg-l").full_records(1000);
        let b_small = hdg_update_bytes(&small);
        let b_large = hdg_update_bytes(&large);
        assert!(
            b_large > 50 * b_small / 2,
            "large {b_large} vs small {b_small}"
        );
    }

    #[test]
    fn ours_beats_hdg_for_realistic_records() {
        // The paper's claim: metadata on chain ≪ data on chain.
        let records = EhrGenerator::new("cmp").full_records(100);
        let rows = storage_comparison(&records, 50);
        let ours = rows.iter().find(|r| r.model.contains("ours")).expect("row");
        let hdg = rows.iter().find(|r| r.model.contains("HDG")).expect("row");
        assert!(
            hdg.bytes_per_update > 10 * ours.bytes_per_update,
            "HDG {} vs ours {}",
            hdg.bytes_per_update,
            ours.bytes_per_update
        );
    }

    #[test]
    fn medrec_is_comparable_to_ours() {
        // Pointer-style metadata is the same order of magnitude as ours.
        let ours = ours_update_bytes("D13&D31", &["dosage"]);
        let medrec = medrec_update_bytes("https://hospital.example/records/188");
        assert!(medrec < 3 * ours && ours < 3 * medrec);
    }

    #[test]
    fn totals_scale_linearly() {
        let records = EhrGenerator::new("tot").full_records(10);
        let rows = storage_comparison(&records, 7);
        for r in rows {
            assert_eq!(r.total_bytes, r.bytes_per_update * 7);
        }
    }
}
