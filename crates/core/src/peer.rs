//! Peer nodes: a stakeholder's client, server app and database manager.

use crate::agreement::PeerBinding;
use crate::error::CoreError;
use crate::Result;
use medledger_bx::{analysis, changed_attrs, exec};
use medledger_crypto::{Hash256, KeyPair};
use medledger_ledger::AccountId;
use medledger_relational::{Database, Schema, Table, WriteOp};
use std::collections::{BTreeMap, BTreeSet};

/// A peer (Patient, Doctor, Researcher, …) in the Fig. 2 architecture.
///
/// The peer's [`Database`] holds its *source* tables (full local data)
/// plus a materialized copy of every shared table it participates in
/// (stored under the shared table id). The **database manager** methods
/// ([`PeerNode::regenerate_view`], [`PeerNode::apply_remote_view`]) are
/// the paper's "BX" boxes: they run `get` to refresh shared copies from
/// the source and `put` to reflect shared-table changes back into it.
#[derive(Clone, Debug)]
pub struct PeerNode {
    /// Human-readable name ("Patient", "Doctor", …).
    pub name: String,
    /// Ledger account (also the public signing key).
    pub account: AccountId,
    /// Signing keys for ledger transactions.
    pub keys: KeyPair,
    /// Local database: sources + materialized shared tables.
    pub db: Database,
    /// Shared-table bindings this peer participates in.
    bindings: BTreeMap<String, PeerBinding>,
    /// Per shared table: the view as of the last version committed on
    /// chain. Diffing against this baseline yields the `changed_attrs`
    /// the contract checks write permission on.
    baselines: BTreeMap<String, Table>,
    /// Last applied version per shared table (mirror of contract state).
    pub applied_versions: BTreeMap<String, u64>,
    /// Next ledger nonce.
    pub next_nonce: u64,
}

impl PeerNode {
    /// Creates a peer with a deterministic key derived from `name` and
    /// `seed`, able to sign `key_capacity` transactions.
    pub fn new(name: impl Into<String>, seed: &str, key_capacity: usize) -> Self {
        let name = name.into();
        let keys = KeyPair::generate(&format!("{seed}-peer-{name}"), key_capacity);
        PeerNode {
            account: keys.public(),
            db: Database::new(name.clone()),
            name,
            keys,
            bindings: BTreeMap::new(),
            baselines: BTreeMap::new(),
            applied_versions: BTreeMap::new(),
            next_nonce: 0,
        }
    }

    /// Registers a source table with initial contents.
    pub fn add_source_table(&mut self, name: &str, table: Table) -> Result<()> {
        self.db.put_table(name, table)?;
        Ok(())
    }

    /// Creates an empty source table.
    pub fn create_source_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.db.create_table(name, schema)?;
        Ok(())
    }

    /// Joins a shared table: records the binding, materializes the view
    /// via the lens's `get`, and stores it under `table_id`.
    pub fn join_share(&mut self, table_id: &str, binding: PeerBinding) -> Result<Hash256> {
        let source = self.db.table(&binding.source_table)?;
        let view = exec::get(&binding.lens, source)?;
        let hash = view.content_hash();
        if self.db.has_table(table_id) {
            return Err(CoreError::BadAgreement(format!(
                "peer {} already participates in `{table_id}`",
                self.name
            )));
        }
        self.db.put_table(table_id, view.clone())?;
        self.bindings.insert(table_id.to_string(), binding);
        self.baselines.insert(table_id.to_string(), view);
        self.applied_versions.insert(table_id.to_string(), 0);
        Ok(hash)
    }

    /// Leaves a share: drops the local materialized copy and binding.
    pub fn leave_share(&mut self, table_id: &str) -> Result<()> {
        self.binding(table_id)?;
        self.bindings.remove(table_id);
        self.baselines.remove(table_id);
        self.applied_versions.remove(table_id);
        self.db.drop_table(table_id)?;
        Ok(())
    }

    /// The binding for a shared table.
    pub fn binding(&self, table_id: &str) -> Result<&PeerBinding> {
        self.bindings
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Shared table ids this peer participates in.
    pub fn shares(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }

    /// Applies a local write to a **source** table (Fig. 5 step 0: the
    /// Researcher edits D2 before propagating).
    pub fn write_source(&mut self, table: &str, op: WriteOp) -> Result<()> {
        if self.bindings.contains_key(table) {
            return Err(CoreError::BadAgreement(format!(
                "`{table}` is a shared table; edit the source and propagate, \
                 or use write_shared"
            )));
        }
        self.db.apply(table, op)?;
        Ok(())
    }

    /// Applies a local write directly to a **shared** table copy and
    /// immediately reflects it into the source via `put` (entry-level
    /// CRUD on shared data, Fig. 4). The caller still must propagate.
    pub fn write_shared(&mut self, table_id: &str, op: WriteOp) -> Result<()> {
        let binding = self.binding(table_id)?.clone();
        self.db.apply(table_id, op)?;
        let view = self.db.table(table_id)?.clone();
        let source = self.db.table(&binding.source_table)?;
        let new_source = exec::put(&binding.lens, source, &view)?;
        let rows: Vec<medledger_relational::Row> = new_source.rows().cloned().collect();
        self.db
            .apply(&binding.source_table, WriteOp::Replace { rows })?;
        Ok(())
    }

    /// Regenerates the shared view from the (possibly updated) source
    /// without storing it (Fig. 5 step 1 uses the result to diff).
    pub fn regenerate_view(&self, table_id: &str) -> Result<Table> {
        let binding = self.binding(table_id)?;
        let source = self.db.table(&binding.source_table)?;
        Ok(exec::get(&binding.lens, source)?)
    }

    /// The stored (materialized) copy of a shared table.
    pub fn shared_table(&self, table_id: &str) -> Result<&Table> {
        self.binding(table_id)?;
        Ok(self.db.table(table_id)?)
    }

    /// Content hash of the stored shared copy.
    pub fn shared_hash(&self, table_id: &str) -> Result<Hash256> {
        Ok(self.shared_table(table_id)?.content_hash())
    }

    /// Refreshes the stored shared copy from the local source (after the
    /// updater's own source edit, Fig. 5 step 1 / step 7). Returns the
    /// changed attributes relative to the previous stored copy.
    pub fn refresh_view(&mut self, table_id: &str) -> Result<BTreeSet<String>> {
        let new_view = self.regenerate_view(table_id)?;
        let old_view = self.db.table(table_id)?;
        let attrs = changed_attrs(old_view, &new_view);
        if !attrs.is_empty() {
            let rows: Vec<medledger_relational::Row> = new_view.rows().cloned().collect();
            self.db.apply(table_id, WriteOp::Replace { rows })?;
        }
        Ok(attrs)
    }

    /// Applies a shared table received from the updating peer (Fig. 5
    /// steps 4–5 / 10–11): verifies the announced hash, replaces the
    /// stored copy, and reflects the change into the source via `put`.
    pub fn apply_remote_view(
        &mut self,
        table_id: &str,
        new_view: &Table,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        if new_view.content_hash() != announced_hash {
            return Err(CoreError::ConsistencyViolation(format!(
                "received `{table_id}` data hashing to {} but contract announced {}",
                new_view.content_hash().short(),
                announced_hash.short()
            )));
        }
        let binding = self.binding(table_id)?.clone();
        // put: reflect the view change into the source.
        let source = self.db.table(&binding.source_table)?;
        let new_source = exec::put(&binding.lens, source, new_view)?;
        let src_rows: Vec<medledger_relational::Row> = new_source.rows().cloned().collect();
        self.db
            .apply(&binding.source_table, WriteOp::Replace { rows: src_rows })?;
        // Refresh the stored shared copy and the committed baseline.
        let view_rows: Vec<medledger_relational::Row> = new_view.rows().cloned().collect();
        self.db
            .apply(table_id, WriteOp::Replace { rows: view_rows })?;
        self.baselines
            .insert(table_id.to_string(), new_view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// The view as of the last committed version.
    pub fn baseline(&self, table_id: &str) -> Result<&Table> {
        self.baselines
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Marks `view` as committed at `version`: replaces the stored shared
    /// copy and the baseline (called on the updater after the contract
    /// accepted its `request_update`).
    pub fn commit_view(&mut self, table_id: &str, view: &Table, version: u64) -> Result<()> {
        self.binding(table_id)?;
        let rows: Vec<medledger_relational::Row> = view.rows().cloned().collect();
        self.db.apply(table_id, WriteOp::Replace { rows })?;
        self.baselines.insert(table_id.to_string(), view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// The Fig. 5 **Step 6** dependency check: other shares of this peer
    /// whose lens footprint (on the same source) overlaps the footprint of
    /// `table_id`'s lens. These are the candidates for cascaded
    /// regeneration.
    pub fn overlapping_shares(&self, table_id: &str) -> Result<Vec<String>> {
        let binding = self.binding(table_id)?;
        let source_schema = self.db.table(&binding.source_table)?.schema().clone();
        let base = analysis::analyze(&binding.lens, &source_schema)?;
        let mut out = Vec::new();
        for (other_id, other_binding) in &self.bindings {
            if other_id == table_id || other_binding.source_table != binding.source_table {
                continue;
            }
            let other = analysis::analyze(&other_binding.lens, &source_schema)?;
            if base.overlaps(&other) {
                out.push(other_id.clone());
            }
        }
        Ok(out)
    }

    /// Allocates the next transaction nonce.
    pub fn take_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// A full snapshot of the peer's database (for revert-on-deny).
    pub fn snapshot(&self) -> Database {
        self.db.clone()
    }

    /// Restores a database snapshot.
    pub fn restore(&mut self, snapshot: Database) {
        self.db = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_bx::LensSpec;
    use medledger_relational::{row, Value};
    use medledger_workload::{fig1_full_records, full_records_schema};

    fn d3_table() -> Table {
        fig1_full_records()
            .project(
                &[
                    "patient_id",
                    "medication_name",
                    "clinical_data",
                    "mechanism_of_action",
                    "dosage",
                ],
                &["patient_id"],
            )
            .expect("D3 projection")
    }

    fn doctor_with_shares() -> PeerNode {
        let mut doctor = PeerNode::new("Doctor", "peer-test", 16);
        doctor.add_source_table("D3", d3_table()).expect("add D3");
        // BX31: share with Patient.
        doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(
                        &["patient_id", "medication_name", "clinical_data", "dosage"],
                        &["patient_id"],
                    ),
                },
            )
            .expect("join D31");
        // BX32: share with Researcher.
        doctor
            .join_share(
                "D23&D32",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["medication_name", "mechanism_of_action"],
                        &["medication_name"],
                    ),
                },
            )
            .expect("join D32");
        doctor
    }

    #[test]
    fn join_share_materializes_view() {
        let doctor = doctor_with_shares();
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(d31.len(), 2);
        assert_eq!(
            d31.schema().column_names(),
            vec!["patient_id", "medication_name", "clinical_data", "dosage"]
        );
        let d32 = doctor.shared_table("D23&D32").expect("D32");
        assert_eq!(d32.len(), 2);
        assert_eq!(doctor.shares().len(), 2);
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::select(medledger_relational::Predicate::True),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn refresh_view_reports_changed_attrs() {
        let mut doctor = doctor_with_shares();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("stop"))],
                },
            )
            .expect("edit source");
        let attrs = doctor.refresh_view("D13&D31").expect("refresh");
        assert_eq!(attrs.into_iter().collect::<Vec<_>>(), vec!["dosage"]);
        // Stored copy updated.
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(
            d31.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("stop")
        );
        // No further changes → empty set.
        assert!(doctor.refresh_view("D13&D31").expect("refresh").is_empty());
    }

    #[test]
    fn apply_remote_view_puts_into_source() {
        let mut doctor = doctor_with_shares();
        // Researcher updated MeA1 → MeA1-new in the shared D23&D32.
        let mut new_view = doctor.shared_table("D23&D32").expect("D32").clone();
        new_view
            .update(
                &[Value::text("Ibuprofen")],
                &[("mechanism_of_action", Value::text("MeA1-new"))],
            )
            .expect("edit view");
        let hash = new_view.content_hash();
        doctor
            .apply_remote_view("D23&D32", &new_view, hash, 1)
            .expect("apply");
        // Source D3 reflects the change.
        let d3 = doctor.db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("MeA1-new")
        );
        assert_eq!(doctor.applied_versions["D23&D32"], 1);
    }

    #[test]
    fn apply_remote_view_rejects_hash_mismatch() {
        let mut doctor = doctor_with_shares();
        let view = doctor.shared_table("D23&D32").expect("D32").clone();
        let err = doctor
            .apply_remote_view("D23&D32", &view, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
    }

    #[test]
    fn step6_overlap_detects_d31_d32_dependency() {
        let doctor = doctor_with_shares();
        // D31 and D32 share `medication_name` on D3.
        assert_eq!(
            doctor.overlapping_shares("D23&D32").expect("overlap"),
            vec!["D13&D31".to_string()]
        );
        assert_eq!(
            doctor.overlapping_shares("D13&D31").expect("overlap"),
            vec!["D23&D32".to_string()]
        );
    }

    #[test]
    fn step6_no_overlap_for_disjoint_lenses() {
        let mut doctor = PeerNode::new("Doctor", "disjoint", 8);
        doctor.add_source_table("D3", d3_table()).expect("add");
        doctor
            .join_share(
                "dose-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(&["patient_id", "dosage"], &["patient_id"]),
                },
            )
            .expect("join");
        doctor
            .join_share(
                "mech-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["mechanism_of_action"],
                        &["mechanism_of_action"],
                    ),
                },
            )
            .expect("join");
        assert!(doctor
            .overlapping_shares("dose-share")
            .expect("overlap")
            .is_empty());
    }

    #[test]
    fn write_shared_round_trips_into_source() {
        let mut doctor = doctor_with_shares();
        doctor
            .write_shared(
                "D13&D31",
                WriteOp::Update {
                    key: vec![Value::Int(189)],
                    assignments: vec![("dosage".into(), Value::text("50 mg once"))],
                },
            )
            .expect("write shared");
        let d3 = doctor.db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(189)]).expect("row")[4],
            Value::text("50 mg once")
        );
    }

    #[test]
    fn write_source_rejects_shared_tables() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .write_source(
                "D13&D31",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut doctor = doctor_with_shares();
        let snap = doctor.snapshot();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .expect("delete");
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 1);
        doctor.restore(snap);
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 2);
    }

    #[test]
    fn leave_share_cleans_up() {
        let mut doctor = doctor_with_shares();
        doctor.leave_share("D23&D32").expect("leave");
        assert_eq!(doctor.shares(), vec!["D13&D31"]);
        assert!(!doctor.db.has_table("D23&D32"));
        assert!(doctor.leave_share("D23&D32").is_err());
    }

    #[test]
    fn nonce_allocation_is_sequential() {
        let mut p = PeerNode::new("P", "nonce", 4);
        assert_eq!(p.take_nonce(), 0);
        assert_eq!(p.take_nonce(), 1);
        assert_eq!(p.take_nonce(), 2);
    }

    #[test]
    fn full_records_schema_available() {
        // Sanity: the workload schema matches what peers expect to split.
        let s = full_records_schema();
        assert_eq!(s.arity(), 7);
        let mut p = PeerNode::new("P", "schema", 4);
        p.create_source_table("full", s).expect("create");
        p.db.apply(
            "full",
            WriteOp::Insert {
                row: row![1i64, "m", "c", "a", "d", "me", "mo"],
            },
        )
        .expect("insert");
    }
}
