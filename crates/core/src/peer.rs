//! Peer nodes: a stakeholder's client, server app and database manager.

use crate::agreement::PeerBinding;
use crate::error::CoreError;
use crate::Result;
use medledger_bx::{analysis, changed_attrs, exec, incremental, GroupIndex, LensSpec};
use medledger_crypto::{Hash256, KeyPair};
use medledger_ledger::AccountId;
use medledger_relational::{
    delta_from_write_op, diff_tables, normalize_shard_count, Database, Row, Schema, Shard,
    ShardMap, ShardPlan, Table, TableDelta, Value, WriteOp,
};
use medledger_telemetry::Recorder;
use std::collections::{BTreeMap, BTreeSet};

/// Feeds a sharded mirror's apply counters into the `shard.heat` heat
/// map. No-op when `recorder` is disabled, so un-instrumented runs pay
/// nothing. Only the working `store` mirror is wired — the `baseline`
/// mirror replays the same deltas and would double-count every apply.
fn wire_shard_heat(recorder: &Recorder, table_id: &str, store: &mut ShardMap) {
    if recorder.is_enabled() {
        store.set_telemetry(table_id, recorder.heatmap("shard.heat"));
    }
}

/// How shared-table updates travel between peers.
///
/// The mode is a deployment-wide choice ([`crate::system::SystemConfig`]);
/// both modes produce byte-identical final states — the property the
/// workspace's mode-equivalence tests assert — but at very different cost:
/// delta mode's per-update work and bandwidth scale with the rows an
/// update touched, full-table mode's with the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Ship row-level [`TableDelta`]s and run the lenses incrementally
    /// (`get_delta` / `put_delta`). The production path.
    #[default]
    Delta,
    /// Exchange whole tables and re-run full `get` / `put` on every
    /// propagation — the paper-literal baseline, kept for comparison
    /// benches and equivalence tests.
    FullTable,
}

/// Tracked-but-uncommitted changes of one shared view, keyed by primary
/// key. `Some(row)` = the row's pending state, `None` = pending delete;
/// later writes to the same key overwrite earlier ones, which is exactly
/// delta composition for state-valued deltas.
type PendingRows = BTreeMap<Vec<Value>, Option<Row>>;

/// Opaque snapshot of a peer's whole pending-delta tracking state.
/// Paired with the inverse deltas a staged write returns, it is
/// everything a transactional caller (the facade's `UpdateBatch`, the
/// engine's `CommitQueue`) needs to roll a failed batch back via
/// [`PeerNode::rollback_writes`]. Cheap: pending deltas hold only the
/// rows touched since the last committed version. (Internally pending
/// rows are tracked per shard; snapshotting is shard-layout agnostic.)
#[derive(Clone, Debug, Default)]
pub struct PendingSnapshot(BTreeMap<String, Vec<PendingRows>>);

/// The sharded mirror of one shared table's state: the stored copy and
/// the committed baseline, each split into key-range shards aligned with
/// the content digest ([`ShardMap`]). Kept in lockstep with the assembled
/// copies (`db` / `baselines`), which remain the cheap read path; the
/// shard maps are the hash and apply path — folds serve the content hash
/// from per-shard subtree roots, and deltas route to the shards they land
/// in.
#[derive(Clone, Debug)]
struct ShardState {
    /// Sharded stored copy (mirrors the table under `table_id` in `db`).
    store: ShardMap,
    /// Sharded committed baseline (mirrors `baselines[table_id]`).
    baseline: ShardMap,
    /// [`Database::table_version`] of the assembled copy when `store`
    /// last synced with it. An out-of-band edit straight to `db` bumps
    /// the version, so a stale mirror is detected and resynced (or
    /// bypassed on read paths) — never silently served.
    synced_at: u64,
}

/// How a receiver applies one committed remote delta (see
/// [`PeerNode::plan_remote_apply`]).
pub(crate) enum RemoteApply {
    /// Shard-routed: run the plan's per-shard jobs (concurrently if the
    /// caller has a pool), then [`PeerNode::finish_remote_apply`].
    Sharded(RemoteShardPlan),
    /// Whole-table path — unsharded receiver or conflicted-pending
    /// resolution; drive through [`PeerNode::apply_remote_delta`].
    Serial,
}

/// A planned shard-routed remote apply: the per-shard split of the view
/// delta plus the pre-derived sibling cascade deltas.
pub(crate) struct RemoteShardPlan {
    plan: ShardPlan,
    touched: Vec<usize>,
    derived: Vec<(String, TableDelta)>,
}

impl RemoteShardPlan {
    /// Number of per-shard jobs this plan produces.
    pub(crate) fn job_count(&self) -> usize {
        self.touched.len()
    }
}

/// One shard job of a planned remote apply: applies the sub-delta under
/// the target chunk layout and pre-warms the shard's subtree root, so
/// the map-level fold after the pool drains only combines cached
/// subroots. Runs on the fan-out worker pool (shard-granular mode) or
/// inline — the result is identical.
pub(crate) fn run_shard_job(
    (shard, delta, chunk_count): (&mut Shard, &TableDelta, usize),
) -> medledger_relational::Result<TableDelta> {
    let inverse = shard.apply(delta, chunk_count)?;
    shard.warm(chunk_count);
    Ok(inverse)
}

fn merge_into_pending(pending: &mut PendingRows, schema: &Schema, delta: &TableDelta) {
    for row in &delta.inserts {
        pending.insert(schema.key_of(row), Some(row.clone()));
    }
    for (key, row) in &delta.updates {
        pending.insert(key.clone(), Some(row.clone()));
    }
    for key in &delta.deletes {
        pending.insert(key.clone(), None);
    }
}

/// Normalizes pending rows against the committed baseline into a
/// canonical [`TableDelta`]: no-op entries drop out, inserts/updates are
/// classified by baseline membership. Cost is O(pending) lookups.
fn normalize_pending(pending: &PendingRows, baseline: &Table) -> TableDelta {
    let mut delta = TableDelta::default();
    for (key, change) in pending {
        match change {
            Some(row) => match baseline.get(key) {
                Some(old) if old == row => {}
                Some(_) => delta.updates.push((key.clone(), row.clone())),
                None => delta.inserts.push(row.clone()),
            },
            None => {
                if baseline.contains_key(key) {
                    delta.deletes.push(key.clone());
                }
            }
        }
    }
    let schema = baseline.schema().clone();
    delta.sort_canonical(|r| schema.key_of(r));
    delta
}

/// A peer (Patient, Doctor, Researcher, …) in the Fig. 2 architecture.
///
/// The peer's [`Database`] holds its *source* tables (full local data)
/// plus a materialized copy of every shared table it participates in
/// (stored under the shared table id). The **database manager** methods
/// are the paper's "BX" boxes: in [`PropagationMode::Delta`] they push
/// row-level deltas through the lenses (`get_delta` / `put_delta`); in
/// [`PropagationMode::FullTable`] they re-run full `get` / `put` over
/// whole tables.
///
/// State per shared table in delta mode:
/// * the **stored copy** (in `db`) always reflects every local write,
/// * the **baseline** is the view as of the last version committed on
///   chain (advanced by applying the committed delta, never by cloning),
/// * the **pending rows** are the composed local changes since the
///   baseline — what the next propagation ships.
#[derive(Clone, Debug)]
pub struct PeerNode {
    /// Human-readable name ("Patient", "Doctor", …).
    pub name: String,
    /// Ledger account (also the public signing key).
    pub account: AccountId,
    /// Signing keys for ledger transactions.
    pub keys: KeyPair,
    /// Local database: sources + materialized shared tables.
    pub db: Database,
    /// How this peer exchanges shared-table updates.
    pub mode: PropagationMode,
    /// Shared-table bindings this peer participates in.
    bindings: BTreeMap<String, PeerBinding>,
    /// Per shared table: the view as of the last version committed on
    /// chain. Diffing (or normalizing pending rows) against this baseline
    /// yields the `changed_attrs` the contract checks write permission on.
    baselines: BTreeMap<String, Table>,
    /// Per shared table: composed uncommitted local changes (delta mode),
    /// tracked per shard (index = `shard_of_key`; one slot when
    /// unsharded).
    pending: BTreeMap<String, Vec<PendingRows>>,
    /// Key-range shards per shared table: `1` leaves the peer exactly as
    /// before (the equivalence baseline); a power of two `> 1` splits
    /// every shared table's stored copy and baseline into [`ShardMap`]s
    /// in delta mode.
    shards_per_table: usize,
    /// Sharded mirrors of shared-table state (delta mode,
    /// `shards_per_table > 1` only).
    shard_states: BTreeMap<String, ShardState>,
    /// Cached `bx` group indexes, one per `ProjectDistinct` binding
    /// (keyed by shared table id), advanced with every applied source
    /// delta — the O(group) hot path for group-lens translation.
    /// Each entry is `(source table version at last sync, index)`; the
    /// version guard ([`Database::table_version`]) means an index left
    /// stale by an out-of-band `db` edit is bypassed, never misused.
    group_indexes: BTreeMap<String, (u64, GroupIndex)>,
    /// Last applied version per shared table (mirror of contract state).
    pub applied_versions: BTreeMap<String, u64>,
    /// Next ledger nonce.
    pub next_nonce: u64,
    /// Live-telemetry handle (no-op unless a registry is installed via
    /// [`crate::System::set_recorder`]): feeds the per-(table, shard)
    /// apply heat map from this peer's sharded mirrors.
    telemetry: Recorder,
}

impl PeerNode {
    /// Creates a peer with a deterministic key derived from `name` and
    /// `seed`, able to sign `key_capacity` transactions. `shards_per_table`
    /// (normalized to a power of two) splits shared-table state into
    /// key-range shards in delta mode; `1` is the unsharded baseline.
    pub fn new(
        name: impl Into<String>,
        seed: &str,
        key_capacity: usize,
        mode: PropagationMode,
        shards_per_table: usize,
    ) -> Self {
        let name = name.into();
        let keys = KeyPair::generate(&format!("{seed}-peer-{name}"), key_capacity);
        PeerNode {
            account: keys.public(),
            db: Database::new(name.clone()),
            name,
            keys,
            mode,
            bindings: BTreeMap::new(),
            baselines: BTreeMap::new(),
            pending: BTreeMap::new(),
            shards_per_table: normalize_shard_count(shards_per_table),
            shard_states: BTreeMap::new(),
            group_indexes: BTreeMap::new(),
            applied_versions: BTreeMap::new(),
            next_nonce: 0,
            telemetry: Recorder::disabled(),
        }
    }

    /// Installs the live-telemetry recorder and wires the heat-map feed
    /// of every existing sharded mirror; mirrors built afterwards wire
    /// themselves on creation. A disabled recorder keeps every apply
    /// path telemetry-free.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.telemetry = recorder.clone();
        for (table_id, state) in &mut self.shard_states {
            wire_shard_heat(recorder, table_id, &mut state.store);
        }
    }

    /// Key-range shards per shared table (1 = unsharded).
    pub fn shards_per_table(&self) -> usize {
        self.shards_per_table
    }

    /// True iff `table_id`'s stored state is sharded on this peer.
    pub fn is_sharded(&self, table_id: &str) -> bool {
        self.shard_states.contains_key(table_id)
    }

    /// Registers a source table with initial contents.
    pub fn add_source_table(&mut self, name: &str, table: Table) -> Result<()> {
        self.db.put_table(name, table)?;
        Ok(())
    }

    /// Creates an empty source table.
    pub fn create_source_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.db.create_table(name, schema)?;
        Ok(())
    }

    /// Joins a shared table: records the binding, materializes the view
    /// via the lens's `get`, and stores it under `table_id`. In delta
    /// mode this also builds the sharded mirror (when sharding is on) and
    /// the cached group index (for `ProjectDistinct` bindings).
    pub fn join_share(&mut self, table_id: &str, binding: PeerBinding) -> Result<Hash256> {
        let source = self.db.table(&binding.source_table)?;
        let view = exec::get(&binding.lens, source)?;
        let hash = view.content_hash();
        if self.db.has_table(table_id) {
            return Err(CoreError::BadAgreement(format!(
                "peer {} already participates in `{table_id}`",
                self.name
            )));
        }
        if self.mode == PropagationMode::Delta {
            if let LensSpec::ProjectDistinct { view_key, .. } = &binding.lens {
                let synced_at = self.db.table_version(&binding.source_table);
                self.group_indexes.insert(
                    table_id.to_string(),
                    (synced_at, GroupIndex::build(source, view_key)?),
                );
            }
        }
        self.db.put_table(table_id, view.clone())?;
        if self.mode == PropagationMode::Delta && self.shards_per_table > 1 {
            let mut store = ShardMap::from_table(&view, self.shards_per_table);
            wire_shard_heat(&self.telemetry, table_id, &mut store);
            self.shard_states.insert(
                table_id.to_string(),
                ShardState {
                    store,
                    baseline: ShardMap::from_table(&view, self.shards_per_table),
                    synced_at: self.db.table_version(table_id),
                },
            );
        }
        self.bindings.insert(table_id.to_string(), binding);
        self.baselines.insert(table_id.to_string(), view);
        self.applied_versions.insert(table_id.to_string(), 0);
        Ok(hash)
    }

    /// Leaves a share: drops the local materialized copy and binding.
    pub fn leave_share(&mut self, table_id: &str) -> Result<()> {
        self.binding(table_id)?;
        self.bindings.remove(table_id);
        self.baselines.remove(table_id);
        self.pending.remove(table_id);
        self.shard_states.remove(table_id);
        self.group_indexes.remove(table_id);
        self.applied_versions.remove(table_id);
        self.db.drop_table(table_id)?;
        Ok(())
    }

    /// The binding for a shared table.
    pub fn binding(&self, table_id: &str) -> Result<&PeerBinding> {
        self.bindings
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Shared table ids this peer participates in.
    pub fn shares(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }

    /// Sibling shares bound to the same source as `table_id` (excluding
    /// `table_id` itself).
    fn sibling_shares(&self, source_table: &str, except: Option<&str>) -> Vec<String> {
        self.bindings
            .iter()
            .filter(|(id, b)| b.source_table == source_table && Some(id.as_str()) != except)
            .map(|(id, _)| id.clone())
            .collect()
    }

    // ----- shard / group-index plumbing --------------------------------
    //
    // Every mutation of a shared table's stored copy, of a source table,
    // or of a committed baseline funnels through the helpers below, which
    // keep three derived structures in lockstep with the assembled
    // tables: the per-table [`ShardMap`]s (stored copy + baseline, delta
    // mode with `shards_per_table > 1`), the per-shard pending-row
    // tracking, and the cached [`GroupIndex`] of every `ProjectDistinct`
    // binding.

    /// Merges a view delta into `table_id`'s pending tracking, routed to
    /// the shards the rows land in.
    fn merge_pending(&mut self, table_id: &str, schema: &Schema, delta: &TableDelta) {
        let shards = self.shards_per_table;
        let entry = self
            .pending
            .entry(table_id.to_string())
            .or_insert_with(|| vec![PendingRows::new(); shards]);
        if shards == 1 {
            merge_into_pending(&mut entry[0], schema, delta);
        } else {
            for (s, part) in delta.split_by_shard(schema, shards).iter().enumerate() {
                if !part.is_empty() {
                    merge_into_pending(&mut entry[s], schema, part);
                }
            }
        }
    }

    /// The share ids of every cached group index bound to `source_table`.
    fn indexed_shares_of(&self, source_table: &str) -> Vec<String> {
        self.bindings
            .iter()
            .filter(|(id, b)| {
                b.source_table == source_table && self.group_indexes.contains_key(*id)
            })
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// The cached group index of `share_id`, only when it is provably in
    /// sync with the source (the recorded [`Database::table_version`]
    /// still matches). Out-of-band edits straight to `db` bump the
    /// version, so a stale index is bypassed — never silently used.
    fn fresh_group_index(&self, share_id: &str) -> Option<&GroupIndex> {
        let (synced_at, idx) = self.group_indexes.get(share_id)?;
        let source = &self.bindings.get(share_id)?.source_table;
        (*synced_at == self.db.table_version(source)).then_some(idx)
    }

    /// `get_delta` through `share_id`'s lens, using the cached group
    /// index when the binding is a `ProjectDistinct` and the index is
    /// fresh (falls back to the partial-index path otherwise).
    fn get_delta_for_share(
        &self,
        share_id: &str,
        source_old: &Table,
        source_delta: &TableDelta,
    ) -> Result<TableDelta> {
        let lens = &self.bindings[share_id].lens;
        Ok(match self.fresh_group_index(share_id) {
            Some(idx) => incremental::get_delta_indexed(lens, source_old, source_delta, idx)?,
            None => incremental::get_delta(lens, source_old, source_delta)?,
        })
    }

    /// `put_delta` through `share_id`'s lens, using the cached group
    /// index when the binding is a `ProjectDistinct` and the index is
    /// fresh (falls back to the partial-index path otherwise).
    fn put_delta_for_share(
        &self,
        share_id: &str,
        source: &Table,
        view_delta: &TableDelta,
    ) -> Result<TableDelta> {
        let lens = &self.bindings[share_id].lens;
        Ok(match self.fresh_group_index(share_id) {
            Some(idx) => incremental::put_delta_indexed(lens, source, view_delta, idx)?,
            None => incremental::put_delta(lens, source, view_delta)?,
        })
    }

    /// Re-stamps every index on `source_table` as synced with the
    /// source's current mutation version.
    fn mark_group_indexes_synced(&mut self, source_table: &str) {
        let version = self.db.table_version(source_table);
        for id in self.indexed_shares_of(source_table) {
            if let Some(entry) = self.group_indexes.get_mut(&id) {
                entry.0 = version;
            }
        }
    }

    /// Advances every cached group index bound to `source_table` past
    /// `delta`. Must run while the pre-delta source is still in `db`;
    /// the caller re-stamps sync versions after the table itself moves.
    fn advance_group_indexes(&mut self, source_table: &str, delta: &TableDelta) -> Result<()> {
        if delta.is_empty() {
            return Ok(());
        }
        let share_ids = self.indexed_shares_of(source_table);
        if share_ids.is_empty() {
            return Ok(());
        }
        let source_old = self.db.table(source_table)?;
        for id in share_ids {
            self.group_indexes
                .get_mut(&id)
                .expect("filtered on presence")
                .1
                .apply_source_delta(source_old, delta)?;
        }
        Ok(())
    }

    /// Rebuilds the cached group indexes of every `ProjectDistinct`
    /// binding on `source_table` from the current source contents (used
    /// after whole-table rewrites and out-of-band edits that bypass
    /// delta tracking), stamping them with the current table version.
    fn rebuild_group_indexes_for_source(&mut self, source_table: &str) -> Result<()> {
        let version = self.db.table_version(source_table);
        for id in self.indexed_shares_of(source_table) {
            if let LensSpec::ProjectDistinct { view_key, .. } = &self.bindings[&id].lens {
                let idx = GroupIndex::build(self.db.table(source_table)?, view_key)?;
                self.group_indexes.insert(id, (version, idx));
            }
        }
        Ok(())
    }

    /// Applies a delta to a shared table's stored copy: the sharded
    /// mirror (when present) and the assembled copy in `db` move
    /// together, touching only the shards the delta lands in. Returns the
    /// inverse.
    ///
    /// Sharded tables log the WAL `post_hash` from the shard fold (cached
    /// per-shard subtree roots) instead of forcing a full rehash of the
    /// assembled copy — the two are byte-identical by construction, and
    /// this is precisely where shard-routed application beats the
    /// unsharded path per delta.
    fn apply_view_delta(&mut self, table_id: &str, delta: &TableDelta) -> Result<TableDelta> {
        if !self.shard_states.contains_key(table_id) {
            return Ok(self.db.apply_delta(table_id, delta)?);
        }
        // An out-of-band edit may have left the mirror behind; re-derive
        // it from ground truth before applying on top.
        self.ensure_shard_state_synced(table_id)?;
        let state = self.shard_states.get_mut(table_id).expect("just checked");
        // Shards first — they validate identically, so a rejected
        // delta leaves both representations untouched. Route through the
        // same plan / per-shard job / commit sequence as the remote-apply
        // path: split once, touch only the shards the delta lands in, and
        // fold the cached subtree roots for the WAL `post_hash`.
        let plan = state.store.plan(delta);
        let chunk_count = plan.chunk_count;
        let mut applied: Vec<(usize, TableDelta)> = Vec::new();
        let mut first_err: Option<medledger_relational::RelationalError> = None;
        for s in plan.touched() {
            match run_shard_job((
                &mut state.store.shards_mut()[s],
                &plan.per_shard[s],
                chunk_count,
            )) {
                Ok(inv) => applied.push((s, inv)),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = first_err {
            // Revert the shards that already applied, newest first.
            for (s, inv) in applied.iter().rev() {
                state.store.shards_mut()[*s]
                    .apply(inv, chunk_count)
                    .expect("inverse of a just-applied sub-delta applies");
            }
            return Err(e.into());
        }
        let schema = state.store.schema().clone();
        let merged_inverse =
            TableDelta::merge_disjoint(applied.into_iter().map(|(_, inv)| inv), |r| {
                schema.key_of(r)
            });
        state.store.commit_plan(&plan);
        let post_hash = state.store.content_hash();
        match self.db.apply_delta_with_hash(table_id, delta, post_hash) {
            Ok(inv) => {
                self.stamp_shard_state(table_id);
                Ok(inv)
            }
            Err(e) => {
                self.shard_states
                    .get_mut(table_id)
                    .expect("just present")
                    .store
                    .apply_delta(&merged_inverse)
                    .expect("inverse of a just-applied delta applies");
                Err(e.into())
            }
        }
    }

    /// Applies a delta to a **source** table, keeping the cached group
    /// indexes in step. Returns the inverse.
    ///
    /// Fresh indexes advance incrementally (O(delta)); indexes left
    /// behind by an out-of-band edit straight to `db` (detected via
    /// [`Database::table_version`]) are rebuilt from ground truth after
    /// the apply instead — correctness never depends on every caller
    /// using the tracked paths.
    fn apply_source_delta_db(
        &mut self,
        source_table: &str,
        delta: &TableDelta,
    ) -> Result<TableDelta> {
        let indexed = self.indexed_shares_of(source_table);
        if indexed.is_empty() {
            return Ok(self.db.apply_delta(source_table, delta)?);
        }
        let current = self.db.table_version(source_table);
        let all_fresh = indexed.iter().all(|id| self.group_indexes[id].0 == current);
        if all_fresh {
            self.advance_group_indexes(source_table, delta)?;
            match self.db.apply_delta(source_table, delta) {
                Ok(inv) => {
                    self.mark_group_indexes_synced(source_table);
                    Ok(inv)
                }
                Err(e) => {
                    // The indexes advanced past a delta the table
                    // refused — re-derive them before surfacing.
                    self.rebuild_group_indexes_for_source(source_table)?;
                    Err(e.into())
                }
            }
        } else {
            let inv = self.db.apply_delta(source_table, delta)?;
            self.rebuild_group_indexes_for_source(source_table)?;
            Ok(inv)
        }
    }

    /// Advances `table_id`'s committed baseline (assembled + sharded) by
    /// a committed delta.
    fn advance_baseline_by(&mut self, table_id: &str, delta: &TableDelta) -> Result<()> {
        let baseline = self
            .baselines
            .get_mut(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))?;
        baseline.apply_delta(delta)?;
        if let Some(state) = self.shard_states.get_mut(table_id) {
            state
                .baseline
                .apply_delta(delta)
                .expect("baseline shadow accepted the same delta");
        }
        Ok(())
    }

    /// Re-splits `table_id`'s sharded mirror from the assembled copies
    /// (used after whole-table rewrites, e.g. conflict resolution via
    /// [`PeerNode::apply_remote_view`]).
    fn resync_shard_state(&mut self, table_id: &str) -> Result<()> {
        if !self.shard_states.contains_key(table_id) {
            return Ok(());
        }
        let mut store = ShardMap::from_table(self.db.table(table_id)?, self.shards_per_table);
        wire_shard_heat(&self.telemetry, table_id, &mut store);
        let baseline = ShardMap::from_table(self.baseline(table_id)?, self.shards_per_table);
        let synced_at = self.db.table_version(table_id);
        self.shard_states.insert(
            table_id.to_string(),
            ShardState {
                store,
                baseline,
                synced_at,
            },
        );
        Ok(())
    }

    /// The sharded mirror of `table_id`, only when it is provably in
    /// sync with the assembled copy (out-of-band `db` edits bump the
    /// table version and flag it stale).
    fn fresh_shard_state(&self, table_id: &str) -> Option<&ShardState> {
        let state = self.shard_states.get(table_id)?;
        (state.synced_at == self.db.table_version(table_id)).then_some(state)
    }

    /// Resyncs `table_id`'s mirror from the assembled copies if an
    /// out-of-band edit left it stale (no-op when absent or fresh).
    fn ensure_shard_state_synced(&mut self, table_id: &str) -> Result<()> {
        if self.shard_states.contains_key(table_id) && self.fresh_shard_state(table_id).is_none() {
            self.resync_shard_state(table_id)?;
        }
        Ok(())
    }

    /// Re-stamps `table_id`'s mirror as synced with the assembled copy's
    /// current mutation version.
    fn stamp_shard_state(&mut self, table_id: &str) {
        let version = self.db.table_version(table_id);
        if let Some(state) = self.shard_states.get_mut(table_id) {
            state.synced_at = version;
        }
    }

    /// Applies a local write to a **source** table (Fig. 5 step 0: the
    /// Researcher edits D2 before propagating).
    ///
    /// In delta mode the write is converted to a row-level delta, pushed
    /// forward through every lens bound to this source (`get_delta`), the
    /// affected shared copies are refreshed incrementally, and the view
    /// deltas accumulate as pending changes for the next propagation.
    /// Returns the applied inverses `(table, inverse_delta)` in
    /// application order so a transactional caller can roll back in
    /// O(changed rows).
    pub fn write_source(&mut self, table: &str, op: WriteOp) -> Result<Vec<(String, TableDelta)>> {
        if self.bindings.contains_key(table) {
            return Err(CoreError::BadAgreement(format!(
                "`{table}` is a shared table; edit the source and propagate, \
                 or use write_shared"
            )));
        }
        if self.mode == PropagationMode::FullTable {
            // Full-table mode defers the lens work to propagation time,
            // but the write itself still applies as a delta so the caller
            // gets an inverse for O(changed rows) transactional rollback
            // (same contract as delta mode — no table snapshots).
            let source_delta = delta_from_write_op(self.db.table(table)?, &op)?;
            let inv = self.apply_source_delta_db(table, &source_delta)?;
            return Ok(vec![(table.to_string(), inv)]);
        }
        let source_old = self.db.table(table)?;
        let source_delta = delta_from_write_op(source_old, &op)?;
        // Push the source delta forward through every lens on this source
        // *before* mutating, so the old source anchors the lookups.
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(table, None) {
            let view_delta = self.get_delta_for_share(&share_id, source_old, &source_delta)?;
            if !view_delta.is_empty() {
                derived.push((share_id, view_delta));
            }
        }
        let mut inverses = Vec::with_capacity(1 + derived.len());
        let inv = self.apply_source_delta_db(table, &source_delta)?;
        inverses.push((table.to_string(), inv));
        for (share_id, view_delta) in derived {
            let inv = self.apply_view_delta(&share_id, &view_delta)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            self.merge_pending(&share_id, &schema, &view_delta);
            inverses.push((share_id, inv));
        }
        Ok(inverses)
    }

    /// Applies a local write directly to a **shared** table copy and
    /// immediately reflects it into the source (entry-level CRUD on
    /// shared data, Fig. 4). The caller still must propagate.
    ///
    /// Delta mode reflects the change via `put_delta` (O(changed rows))
    /// and also refreshes sibling shares on the same source via
    /// `get_delta`; full-table mode re-runs the full lens `put`. Returns
    /// applied inverses as in [`PeerNode::write_source`].
    pub fn write_shared(
        &mut self,
        table_id: &str,
        op: WriteOp,
    ) -> Result<Vec<(String, TableDelta)>> {
        let binding = self.binding(table_id)?.clone();
        if self.mode == PropagationMode::FullTable {
            // The lens still runs as a full `put` (that is the mode's
            // point), but both mutations apply as deltas so the caller
            // gets inverses for rollback instead of table snapshots.
            let view_delta = delta_from_write_op(self.db.table(table_id)?, &op)?;
            let view_inv = self.apply_view_delta(table_id, &view_delta)?;
            let view = self.db.table(table_id)?.clone();
            let source_old = self.db.table(&binding.source_table)?;
            // An untranslatable write must leave the peer untouched: undo
            // the already-applied view delta before surfacing the error.
            let new_source = match exec::put(&binding.lens, source_old, &view) {
                Ok(t) => t,
                Err(e) => {
                    self.apply_view_delta(table_id, &view_inv)
                        .expect("inverse of a just-applied delta applies");
                    return Err(e.into());
                }
            };
            let source_delta = diff_tables(source_old, &new_source);
            let mut inverses = vec![(table_id.to_string(), view_inv)];
            if !source_delta.is_empty() {
                let inv = self.apply_source_delta_db(&binding.source_table, &source_delta)?;
                inverses.push((binding.source_table.clone(), inv));
            }
            return Ok(inverses);
        }
        let view = self.db.table(table_id)?;
        let view_delta = delta_from_write_op(view, &op)?;
        let view_schema = view.schema().clone();
        let source_old = self.db.table(&binding.source_table)?;
        let source_delta = self.put_delta_for_share(table_id, source_old, &view_delta)?;
        // Sibling views refresh from the source delta (the raw material of
        // the Fig. 5 step-6 dependency check).
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
            let d = self.get_delta_for_share(&share_id, source_old, &source_delta)?;
            if !d.is_empty() {
                derived.push((share_id, d));
            }
        }
        let mut inverses = Vec::with_capacity(2 + derived.len());
        let inv = self.apply_view_delta(table_id, &view_delta)?;
        inverses.push((table_id.to_string(), inv));
        self.merge_pending(table_id, &view_schema, &view_delta);
        if !source_delta.is_empty() {
            let inv = self.apply_source_delta_db(&binding.source_table, &source_delta)?;
            inverses.push((binding.source_table.clone(), inv));
        }
        for (share_id, d) in derived {
            let inv = self.apply_view_delta(&share_id, &d)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            self.merge_pending(&share_id, &schema, &d);
            inverses.push((share_id, inv));
        }
        Ok(inverses)
    }

    /// Regenerates the shared view from the (possibly updated) source
    /// without storing it (full-table Fig. 5 step 1 uses the result to
    /// diff).
    pub fn regenerate_view(&self, table_id: &str) -> Result<Table> {
        let binding = self.binding(table_id)?;
        let source = self.db.table(&binding.source_table)?;
        Ok(exec::get(&binding.lens, source)?)
    }

    /// The stored (materialized) copy of a shared table.
    pub fn shared_table(&self, table_id: &str) -> Result<&Table> {
        self.binding(table_id)?;
        Ok(self.db.table(table_id)?)
    }

    /// Content hash of the stored shared copy. On a sharded peer this is
    /// the fold of per-shard subtree roots — byte-identical to hashing
    /// the assembled copy, but only shards touched since the last fold
    /// rehash. A mirror left stale by an out-of-band `db` edit is
    /// bypassed: the assembled copy is hashed directly instead.
    pub fn shared_hash(&self, table_id: &str) -> Result<Hash256> {
        if let Some(state) = self.fresh_shard_state(table_id) {
            self.binding(table_id)?;
            return Ok(state.store.content_hash());
        }
        Ok(self.shared_table(table_id)?.content_hash())
    }

    /// Content hash of the last *committed* view — what must equal the
    /// hash the sharing contract holds while the table is synced, even
    /// when the peer carries pending local changes (e.g. a
    /// permission-blocked cascade awaiting retry). Served from the
    /// sharded baseline's fold when sharding is on.
    pub fn committed_hash(&self, table_id: &str) -> Result<Hash256> {
        if let Some(state) = self.shard_states.get(table_id) {
            self.binding(table_id)?;
            return Ok(state.baseline.content_hash());
        }
        Ok(self.baseline(table_id)?.content_hash())
    }

    /// Verifies this peer's local invariants for a *synced* shared table
    /// against the hash the contract committed:
    ///
    /// 1. the committed baseline must hash to `contract_hash`, and
    /// 2. the stored copy must equal the baseline **plus** any tracked
    ///    pending delta — so with nothing pending (the full-table mode
    ///    and the quiescent delta-mode case) the stored copy itself must
    ///    match the contract, and a peer carrying a pending change (e.g.
    ///    a blocked cascade) is still checked against what it serves.
    pub fn check_share_integrity(&self, table_id: &str, contract_hash: Hash256) -> Result<()> {
        let committed = self.committed_hash(table_id)?;
        if committed != contract_hash {
            return Err(CoreError::ConsistencyViolation(format!(
                "peer {} holds `{table_id}` committed at {} but contract says {}",
                self.name,
                committed.short(),
                contract_hash.short()
            )));
        }
        let pending = self.pending_delta(table_id)?;
        let expected = if pending.is_empty() {
            contract_hash
        } else {
            let mut t = self.baseline(table_id)?.clone();
            t.apply_delta(&pending)?;
            t.content_hash()
        };
        let stored = self.shared_hash(table_id)?;
        if stored != expected {
            return Err(CoreError::ConsistencyViolation(format!(
                "peer {} stores `{table_id}` hashing to {} but committed state \
                 plus its {} pending row(s) implies {}",
                self.name,
                stored.short(),
                pending.row_count(),
                expected.short()
            )));
        }
        Ok(())
    }

    // ----- delta-mode propagation hooks -------------------------------

    /// The normalized pending delta of `table_id` relative to the
    /// committed baseline (empty delta if nothing is pending). Per-shard
    /// pending rows normalize independently (their keys are disjoint by
    /// construction) and merge into one canonically ordered delta.
    pub fn pending_delta(&self, table_id: &str) -> Result<TableDelta> {
        let baseline = self.baseline(table_id)?;
        let Some(parts) = self.pending.get(table_id) else {
            return Ok(TableDelta::default());
        };
        let schema = baseline.schema().clone();
        Ok(TableDelta::merge_disjoint(
            parts.iter().map(|part| normalize_pending(part, baseline)),
            |r| schema.key_of(r),
        ))
    }

    /// True iff the peer holds a pending local change of `table_id` —
    /// the delta-mode Fig. 5 step-6 "does this share now differ?" check,
    /// answered in O(pending) instead of a full regenerate-and-diff.
    pub fn has_pending_change(&self, table_id: &str) -> Result<bool> {
        Ok(!self.pending_delta(table_id)?.is_empty())
    }

    /// Delta-mode Fig. 5 step 1: the delta this peer would propagate for
    /// `table_id`, with the stored copy guaranteed to reflect it.
    ///
    /// Normally this is the normalized pending delta (O(pending)). When
    /// no writes were tracked (out-of-band edits straight to `db`), it
    /// falls back to a full regenerate-and-diff and brings the stored
    /// copy and pending tracking in line.
    pub fn prepare_update_delta(&mut self, table_id: &str) -> Result<TableDelta> {
        let normalized = self.pending_delta(table_id)?;
        if !normalized.is_empty() {
            return Ok(normalized);
        }
        let regenerated = self.regenerate_view(table_id)?;
        let delta = diff_tables(self.baseline(table_id)?, &regenerated);
        if delta.is_empty() {
            self.pending.remove(table_id);
            return Ok(delta);
        }
        let stored_delta = diff_tables(self.db.table(table_id)?, &regenerated);
        if !stored_delta.is_empty() {
            self.apply_view_delta(table_id, &stored_delta)?;
        }
        let schema = self.db.table(table_id)?.schema().clone();
        self.merge_pending(table_id, &schema, &delta);
        Ok(delta)
    }

    /// Translates an incoming view delta into this peer's source delta
    /// (`put_delta`) **without applying anything** — the pipeline's
    /// pre-flight check, run for every sharing peer before the update is
    /// submitted on chain. Uses the cached group index for
    /// `ProjectDistinct` bindings (O(touched groups), no source scan).
    pub fn translate_remote_delta(
        &self,
        table_id: &str,
        view_delta: &TableDelta,
    ) -> Result<TableDelta> {
        let binding = self.binding(table_id)?;
        let source = self.db.table(&binding.source_table)?;
        self.put_delta_for_share(table_id, source, view_delta)
    }

    /// Applies a committed remote delta (Fig. 5 steps 4–5 / 10–11 in
    /// delta mode): refreshes the stored copy row-by-row, verifies the
    /// announced hash via the incremental digest, reflects the change
    /// into the source with the pre-computed `source_delta`, refreshes
    /// sibling shares (stashing their deltas as pending for the step-6
    /// cascade), and advances the committed baseline by the same delta.
    ///
    /// On a sharded peer the view delta routes to the shards it lands in
    /// ([`TableDelta::split_by_shard`]) and the announced hash is checked
    /// against the fold of per-shard subtree roots — only the touched
    /// shards rehash. Callers that own a worker pool (the system's
    /// fan-out) drive the same three phases — plan, per-shard jobs,
    /// finish — through the crate-internal shard-apply API so disjoint
    /// shards apply in parallel; this entry point runs the jobs inline,
    /// byte-identically.
    pub fn apply_remote_delta(
        &mut self,
        table_id: &str,
        view_delta: &TableDelta,
        source_delta: &TableDelta,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        match self.plan_remote_apply(table_id, view_delta, source_delta)? {
            RemoteApply::Sharded(plan) => {
                let results: Vec<medledger_relational::Result<TableDelta>> = self
                    .remote_shard_jobs(table_id, &plan)
                    .into_iter()
                    .map(run_shard_job)
                    .collect();
                self.finish_remote_apply(
                    table_id,
                    plan,
                    results,
                    view_delta,
                    source_delta,
                    announced_hash,
                    version,
                )
            }
            RemoteApply::Serial => self.apply_remote_delta_serial(
                table_id,
                view_delta,
                source_delta,
                announced_hash,
                version,
            ),
        }
    }

    /// The unsharded / conflicted apply path (see
    /// [`PeerNode::apply_remote_delta`]).
    fn apply_remote_delta_serial(
        &mut self,
        table_id: &str,
        view_delta: &TableDelta,
        source_delta: &TableDelta,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        let binding = self.binding(table_id)?.clone();
        // Conflict path: this peer carries uncommitted local changes of
        // the same table (e.g. a permission-blocked cascade awaiting
        // retry) while a committed remote update arrives. Resolve exactly
        // as full-table mode does — the remote view wins, the lens `put`
        // merges it into the source — then re-derive the pending tracking
        // of every share on this source from ground truth, so a residual
        // local difference survives as a fresh pending delta (the retry
        // is preserved, not silently dropped). O(table), but only on this
        // rare contended path.
        if self.pending.contains_key(table_id) {
            let mut view_new = self.baseline(table_id)?.clone();
            view_new.apply_delta(view_delta).map_err(|e| {
                CoreError::ConsistencyViolation(format!(
                    "committed `{table_id}` delta does not apply to the committed baseline: {e}"
                ))
            })?;
            // Verified before any mutation: a corrupt delta leaves the
            // peer untouched.
            self.apply_remote_view(table_id, &view_new, announced_hash, version)?;
            self.pending.remove(table_id);
            for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
                let regenerated = self.regenerate_view(&share_id)?;
                let stored_delta = diff_tables(self.db.table(&share_id)?, &regenerated);
                if !stored_delta.is_empty() {
                    self.apply_view_delta(&share_id, &stored_delta)?;
                }
                let pending_delta = diff_tables(self.baseline(&share_id)?, &regenerated);
                self.pending.remove(&share_id);
                if !pending_delta.is_empty() {
                    let schema = regenerated.schema().clone();
                    self.merge_pending(&share_id, &schema, &pending_delta);
                }
            }
            return Ok(());
        }
        let source_old = self.db.table(&binding.source_table)?;
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
            let d = self.get_delta_for_share(&share_id, source_old, source_delta)?;
            if !d.is_empty() {
                derived.push((share_id, d));
            }
        }
        let view_inv = self.apply_view_delta(table_id, view_delta)?;
        if self.shared_hash(table_id)? != announced_hash {
            // Corrupt or stale delta: restore the stored copy and refuse.
            self.apply_view_delta(table_id, &view_inv)?;
            return Err(CoreError::ConsistencyViolation(format!(
                "applying the `{table_id}` delta does not reproduce the hash the \
                 contract announced ({})",
                announced_hash.short()
            )));
        }
        if !source_delta.is_empty() {
            self.apply_source_delta_db(&binding.source_table, source_delta)?;
        }
        for (share_id, d) in derived {
            self.apply_view_delta(&share_id, &d)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            self.merge_pending(&share_id, &schema, &d);
        }
        self.advance_baseline_by(table_id, view_delta)?;
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    // ----- shard-routed remote apply (three phases) --------------------

    /// Phase 1 of a shard-routed remote apply: decides whether the
    /// receiver can take the shard path and, if so, splits the view delta
    /// per shard and pre-derives the sibling cascade deltas (anchored on
    /// the pre-delta source). Pure planning — nothing mutates.
    ///
    /// Returns [`RemoteApply::Serial`] for unsharded tables and for the
    /// rare conflicted-pending case, which resolves through the
    /// whole-table merge in [`PeerNode::apply_remote_delta`].
    pub(crate) fn plan_remote_apply(
        &self,
        table_id: &str,
        view_delta: &TableDelta,
        source_delta: &TableDelta,
    ) -> Result<RemoteApply> {
        let binding = self.binding(table_id)?;
        // Serial fallback for unsharded tables, conflicted-pending
        // resolution, and a mirror left stale by an out-of-band edit
        // (the serial path resyncs it before applying).
        if self.pending.contains_key(table_id) {
            return Ok(RemoteApply::Serial);
        }
        let Some(state) = self.fresh_shard_state(table_id) else {
            return Ok(RemoteApply::Serial);
        };
        let source_table = binding.source_table.clone();
        let source_old = self.db.table(&source_table)?;
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(&source_table, Some(table_id)) {
            let d = self.get_delta_for_share(&share_id, source_old, source_delta)?;
            if !d.is_empty() {
                derived.push((share_id, d));
            }
        }
        let plan = state.store.plan(view_delta);
        let touched = plan.touched();
        Ok(RemoteApply::Sharded(RemoteShardPlan {
            plan,
            touched,
            derived,
        }))
    }

    /// Phase 2: the disjoint per-shard jobs of a planned apply — each is
    /// one touched shard plus its sub-delta and the target chunk layout,
    /// runnable concurrently (see [`run_shard_job`]).
    pub(crate) fn remote_shard_jobs<'a, 'p>(
        &'a mut self,
        table_id: &str,
        rplan: &'p RemoteShardPlan,
    ) -> Vec<(&'a mut Shard, &'p TableDelta, usize)> {
        let state = self
            .shard_states
            .get_mut(table_id)
            .expect("planned on a sharded table");
        let chunk_count = rplan.plan.chunk_count;
        let mut slots: Vec<Option<&'a mut Shard>> =
            state.store.shards_mut().iter_mut().map(Some).collect();
        rplan
            .touched
            .iter()
            .map(|&s| {
                (
                    slots[s].take().expect("touched shards are distinct"),
                    &rplan.plan.per_shard[s],
                    chunk_count,
                )
            })
            .collect()
    }

    /// Phase 3: merges per-shard apply results back into the peer —
    /// reverts every shard if one rejected its sub-delta, verifies the
    /// announced hash against the folded per-shard roots, then runs the
    /// serial tail (assembled copy, source via BX-put, sibling cascades,
    /// baseline advance) exactly as the unsharded path does. The
    /// assembled copy's WAL record reuses the verified fold as its
    /// `post_hash`, so no second whole-tree rehash happens anywhere.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_remote_apply(
        &mut self,
        table_id: &str,
        rplan: RemoteShardPlan,
        results: Vec<medledger_relational::Result<TableDelta>>,
        view_delta: &TableDelta,
        source_delta: &TableDelta,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        let binding = self.binding(table_id)?.clone();
        let state = self
            .shard_states
            .get_mut(table_id)
            .expect("planned on a sharded table");
        let chunk_count = rplan.plan.chunk_count;
        let mut applied: Vec<(usize, TableDelta)> = Vec::new();
        let mut first_err: Option<medledger_relational::RelationalError> = None;
        for (&s, r) in rplan.touched.iter().zip(results) {
            match r {
                Ok(inv) => applied.push((s, inv)),
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }
        if let Some(e) = first_err {
            // Every job ran (the pool does not short-circuit): revert the
            // shards that applied, newest first.
            for (s, inv) in applied.iter().rev() {
                state.store.shards_mut()[*s]
                    .apply(inv, chunk_count)
                    .expect("inverse of a just-applied sub-delta applies");
            }
            return Err(e.into());
        }
        // Merged inverse of the whole view delta (for hash-mismatch and
        // shadow-failure reverts).
        let schema = state.store.schema().clone();
        let merged_inverse =
            TableDelta::merge_disjoint(applied.into_iter().map(|(_, inv)| inv), |r| {
                schema.key_of(r)
            });
        state.store.commit_plan(&rplan.plan);
        if state.store.content_hash() != announced_hash {
            state
                .store
                .apply_delta(&merged_inverse)
                .expect("inverse of a just-applied delta applies");
            return Err(CoreError::ConsistencyViolation(format!(
                "applying the `{table_id}` delta does not reproduce the hash the \
                 contract announced ({})",
                announced_hash.short()
            )));
        }
        // The assembled shadow follows (pure row ops; the WAL logs the
        // verified fold instead of rehashing the assembled copy).
        if let Err(e) = self
            .db
            .apply_delta_with_hash(table_id, view_delta, announced_hash)
        {
            self.shard_states
                .get_mut(table_id)
                .expect("just present")
                .store
                .apply_delta(&merged_inverse)
                .expect("inverse of a just-applied delta applies");
            return Err(e.into());
        }
        self.stamp_shard_state(table_id);
        if !source_delta.is_empty() {
            self.apply_source_delta_db(&binding.source_table, source_delta)?;
        }
        for (share_id, d) in rplan.derived {
            self.apply_view_delta(&share_id, &d)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            self.merge_pending(&share_id, &schema, &d);
        }
        self.advance_baseline_by(table_id, view_delta)?;
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// Marks the updater's own pending delta as committed at `version`:
    /// the baseline advances by the delta (the stored copy already
    /// reflects it) and the pending entry clears.
    pub fn commit_delta(&mut self, table_id: &str, delta: &TableDelta, version: u64) -> Result<()> {
        self.advance_baseline_by(table_id, delta)?;
        self.pending.remove(table_id);
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// Drops the pending entry for `table_id` (delta mode; used when a
    /// propagation turns out to be a no-op).
    pub fn clear_pending(&mut self, table_id: &str) {
        self.pending.remove(table_id);
    }

    /// Snapshot of the pending tracking state (cheap — pending deltas are
    /// small). Paired with [`PeerNode::rollback_writes`] for
    /// transactional rollback of staged writes.
    pub fn pending_snapshot(&self) -> PendingSnapshot {
        PendingSnapshot(self.pending.clone())
    }

    /// Restores a pending-state snapshot.
    pub fn restore_pending(&mut self, snapshot: PendingSnapshot) {
        self.pending = snapshot.0;
    }

    /// Rolls a failed transactional batch back: re-applies the staged
    /// writes' inverse deltas in reverse order — O(changed rows), no
    /// table snapshots in either propagation mode — and restores the
    /// pending-delta tracking captured before staging. Sharded mirrors
    /// and cached group indexes roll back alongside.
    pub fn rollback_writes(&mut self, inverses: &[(String, TableDelta)], pending: PendingSnapshot) {
        for (table, inverse) in inverses.iter().rev() {
            if self.shard_states.contains_key(table) {
                self.apply_view_delta(table, inverse)
                    .expect("applying a recorded inverse delta cannot fail");
            } else {
                // Source tables (shared copies are always sharded when
                // sharding is on): keep the group indexes in step.
                self.apply_source_delta_db(table, inverse)
                    .expect("applying a recorded inverse delta cannot fail");
            }
        }
        self.restore_pending(pending);
    }

    // ----- full-table propagation (the baseline) -----------------------

    /// Refreshes the stored shared copy from the local source (after the
    /// updater's own source edit, Fig. 5 step 1 / step 7). Returns the
    /// changed attributes relative to the previous stored copy.
    pub fn refresh_view(&mut self, table_id: &str) -> Result<BTreeSet<String>> {
        let new_view = self.regenerate_view(table_id)?;
        let old_view = self.db.table(table_id)?;
        let attrs = changed_attrs(old_view, &new_view);
        if !attrs.is_empty() {
            let rows: Vec<Row> = new_view.rows().cloned().collect();
            self.db.apply(table_id, WriteOp::Replace { rows })?;
        }
        Ok(attrs)
    }

    /// Applies a whole shared table received from the updating peer
    /// (Fig. 5 steps 4–5 / 10–11 in full-table mode): verifies the
    /// announced hash, replaces the stored copy, and reflects the change
    /// into the source via `put`.
    pub fn apply_remote_view(
        &mut self,
        table_id: &str,
        new_view: &Table,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        if new_view.content_hash() != announced_hash {
            return Err(CoreError::ConsistencyViolation(format!(
                "received `{table_id}` data hashing to {} but contract announced {}",
                new_view.content_hash().short(),
                announced_hash.short()
            )));
        }
        let binding = self.binding(table_id)?.clone();
        // put: reflect the view change into the source.
        let source = self.db.table(&binding.source_table)?;
        let new_source = exec::put(&binding.lens, source, new_view)?;
        let src_rows: Vec<Row> = new_source.rows().cloned().collect();
        self.db
            .apply(&binding.source_table, WriteOp::Replace { rows: src_rows })?;
        // Refresh the stored shared copy and the committed baseline.
        let view_rows: Vec<Row> = new_view.rows().cloned().collect();
        self.db
            .apply(table_id, WriteOp::Replace { rows: view_rows })?;
        self.baselines
            .insert(table_id.to_string(), new_view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        // Whole-table rewrites bypass delta tracking: re-derive the
        // sharded mirror and the group indexes from ground truth.
        self.resync_shard_state(table_id)?;
        self.rebuild_group_indexes_for_source(&binding.source_table)?;
        Ok(())
    }

    /// The view as of the last committed version.
    pub fn baseline(&self, table_id: &str) -> Result<&Table> {
        self.baselines
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Marks `view` as committed at `version`: replaces the stored shared
    /// copy and the baseline (full-table mode; called on the updater
    /// after the contract accepted its `request_update`).
    pub fn commit_view(&mut self, table_id: &str, view: &Table, version: u64) -> Result<()> {
        self.binding(table_id)?;
        let rows: Vec<Row> = view.rows().cloned().collect();
        self.db.apply(table_id, WriteOp::Replace { rows })?;
        self.baselines.insert(table_id.to_string(), view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        self.resync_shard_state(table_id)?;
        Ok(())
    }

    /// The Fig. 5 **Step 6** dependency check: other shares of this peer
    /// whose lens footprint (on the same source) overlaps the footprint of
    /// `table_id`'s lens. These are the candidates for cascaded
    /// regeneration.
    pub fn overlapping_shares(&self, table_id: &str) -> Result<Vec<String>> {
        let binding = self.binding(table_id)?;
        let source_schema = self.db.table(&binding.source_table)?.schema().clone();
        let base = analysis::analyze(&binding.lens, &source_schema)?;
        let mut out = Vec::new();
        for (other_id, other_binding) in &self.bindings {
            if other_id == table_id || other_binding.source_table != binding.source_table {
                continue;
            }
            let other = analysis::analyze(&other_binding.lens, &source_schema)?;
            if base.overlaps(&other) {
                out.push(other_id.clone());
            }
        }
        Ok(out)
    }

    /// Allocates the next transaction nonce.
    pub fn take_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// A full snapshot of the peer's database (for revert-on-deny).
    pub fn snapshot(&self) -> Database {
        self.db.clone()
    }

    // ----- durable-storage support -------------------------------------

    /// The peer's share bindings (persisted verbatim in snapshots).
    pub(crate) fn bindings_map(&self) -> &BTreeMap<String, PeerBinding> {
        &self.bindings
    }

    /// Per-share inverse deltas that rewind each stored copy back to its
    /// committed baseline (`diff_tables(stored, baseline)`). O(pending
    /// rows) per share — this is how a flush records baseline + pending
    /// state without writing a second copy of any table.
    pub(crate) fn baseline_inverses(&self) -> Vec<(String, TableDelta)> {
        let mut out = Vec::new();
        for (table_id, baseline) in &self.baselines {
            let Ok(stored) = self.db.table(table_id) else {
                continue;
            };
            let inv = diff_tables(stored, baseline);
            if !inv.is_empty() {
                out.push((table_id.clone(), inv));
            }
        }
        out
    }

    /// Rebuilds a peer from persisted parts: the recovered database
    /// (snapshot + WAL replay), the share bindings, and the per-share
    /// baseline inverses recorded at the last flush. Signing keys are
    /// re-derived from the deployment seed (they are never persisted) and
    /// fast-forwarded past the already-consumed one-time signatures;
    /// baselines rewind from the stored copies via the inverses, pending
    /// rows re-derive as `diff_tables(baseline, stored)`, and the sharded
    /// mirrors and group indexes rebuild from ground truth.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_from_parts(
        name: &str,
        seed: &str,
        key_capacity: usize,
        mode: PropagationMode,
        shards_per_table: usize,
        db: Database,
        bindings: BTreeMap<String, PeerBinding>,
        baseline_inverses: &[(String, TableDelta)],
        applied_versions: BTreeMap<String, u64>,
        next_nonce: u64,
        keys_used: u64,
    ) -> Result<PeerNode> {
        let mut peer = PeerNode::new(name, seed, key_capacity, mode, shards_per_table);
        peer.keys.restore_used(keys_used);
        peer.db = db;
        peer.bindings = bindings;
        peer.applied_versions = applied_versions;
        peer.next_nonce = next_nonce;
        let inverses: BTreeMap<&str, &TableDelta> = baseline_inverses
            .iter()
            .map(|(id, d)| (id.as_str(), d))
            .collect();
        let share_ids: Vec<String> = peer.bindings.keys().cloned().collect();
        for table_id in &share_ids {
            let stored = peer.db.table(table_id)?;
            let mut baseline = stored.clone();
            if let Some(inv) = inverses.get(table_id.as_str()) {
                baseline.apply_delta(inv)?;
            }
            let pending_delta = diff_tables(&baseline, stored);
            let schema = stored.schema().clone();
            if peer.mode == PropagationMode::Delta && peer.shards_per_table > 1 {
                peer.shard_states.insert(
                    table_id.clone(),
                    ShardState {
                        store: ShardMap::from_table(stored, peer.shards_per_table),
                        baseline: ShardMap::from_table(&baseline, peer.shards_per_table),
                        synced_at: peer.db.table_version(table_id),
                    },
                );
            }
            peer.baselines.insert(table_id.clone(), baseline);
            if !pending_delta.is_empty() {
                peer.merge_pending(table_id, &schema, &pending_delta);
            }
        }
        if peer.mode == PropagationMode::Delta {
            for table_id in &share_ids {
                if let LensSpec::ProjectDistinct { view_key, .. } =
                    &peer.bindings[table_id].lens.clone()
                {
                    let source_table = peer.bindings[table_id].source_table.clone();
                    let synced_at = peer.db.table_version(&source_table);
                    let idx = GroupIndex::build(peer.db.table(&source_table)?, view_key)?;
                    peer.group_indexes
                        .insert(table_id.clone(), (synced_at, idx));
                }
            }
        }
        Ok(peer)
    }

    /// Restores a database snapshot, re-deriving the sharded mirrors and
    /// group indexes from the restored contents.
    pub fn restore(&mut self, snapshot: Database) {
        self.db = snapshot;
        let sharded: Vec<String> = self.shard_states.keys().cloned().collect();
        for table_id in sharded {
            self.resync_shard_state(&table_id)
                .expect("restored snapshot holds every sharded table");
        }
        let sources: BTreeSet<String> = self
            .group_indexes
            .keys()
            .filter_map(|id| self.bindings.get(id).map(|b| b.source_table.clone()))
            .collect();
        for source in sources {
            self.rebuild_group_indexes_for_source(&source)
                .expect("restored snapshot holds every indexed source");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_bx::LensSpec;
    use medledger_relational::{row, Value};
    use medledger_workload::{fig1_full_records, full_records_schema};

    fn d3_table() -> Table {
        fig1_full_records()
            .project(
                &[
                    "patient_id",
                    "medication_name",
                    "clinical_data",
                    "mechanism_of_action",
                    "dosage",
                ],
                &["patient_id"],
            )
            .expect("D3 projection")
    }

    fn doctor_with_shares_in(mode: PropagationMode) -> PeerNode {
        doctor_with_shares_sharded(mode, 1)
    }

    fn doctor_with_shares_sharded(mode: PropagationMode, shards: usize) -> PeerNode {
        let mut doctor = PeerNode::new("Doctor", "peer-test", 16, mode, shards);
        doctor.add_source_table("D3", d3_table()).expect("add D3");
        // BX31: share with Patient.
        doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(
                        &["patient_id", "medication_name", "clinical_data", "dosage"],
                        &["patient_id"],
                    ),
                },
            )
            .expect("join D31");
        // BX32: share with Researcher.
        doctor
            .join_share(
                "D23&D32",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["medication_name", "mechanism_of_action"],
                        &["medication_name"],
                    ),
                },
            )
            .expect("join D32");
        doctor
    }

    fn doctor_with_shares() -> PeerNode {
        doctor_with_shares_in(PropagationMode::FullTable)
    }

    #[test]
    fn join_share_materializes_view() {
        let doctor = doctor_with_shares();
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(d31.len(), 2);
        assert_eq!(
            d31.schema().column_names(),
            vec!["patient_id", "medication_name", "clinical_data", "dosage"]
        );
        let d32 = doctor.shared_table("D23&D32").expect("D32");
        assert_eq!(d32.len(), 2);
        assert_eq!(doctor.shares().len(), 2);
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::select(medledger_relational::Predicate::True),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn refresh_view_reports_changed_attrs() {
        let mut doctor = doctor_with_shares();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("stop"))],
                },
            )
            .expect("edit source");
        let attrs = doctor.refresh_view("D13&D31").expect("refresh");
        assert_eq!(attrs.into_iter().collect::<Vec<_>>(), vec!["dosage"]);
        // Stored copy updated.
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(
            d31.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("stop")
        );
        // No further changes → empty set.
        assert!(doctor.refresh_view("D13&D31").expect("refresh").is_empty());
    }

    #[test]
    fn apply_remote_view_puts_into_source() {
        let mut doctor = doctor_with_shares();
        // Researcher updated MeA1 → MeA1-new in the shared D23&D32.
        let mut new_view = doctor.shared_table("D23&D32").expect("D32").clone();
        new_view
            .update(
                &[Value::text("Ibuprofen")],
                &[("mechanism_of_action", Value::text("MeA1-new"))],
            )
            .expect("edit view");
        let hash = new_view.content_hash();
        doctor
            .apply_remote_view("D23&D32", &new_view, hash, 1)
            .expect("apply");
        // Source D3 reflects the change.
        let d3 = doctor.db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("MeA1-new")
        );
        assert_eq!(doctor.applied_versions["D23&D32"], 1);
    }

    #[test]
    fn apply_remote_view_rejects_hash_mismatch() {
        let mut doctor = doctor_with_shares();
        let view = doctor.shared_table("D23&D32").expect("D32").clone();
        let err = doctor
            .apply_remote_view("D23&D32", &view, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
    }

    #[test]
    fn delta_write_shared_tracks_pending_and_siblings() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        let inverses = doctor
            .write_shared(
                "D23&D32",
                WriteOp::Update {
                    key: vec![Value::text("Ibuprofen")],
                    assignments: vec![("mechanism_of_action".into(), Value::text("MeA1-new"))],
                },
            )
            .expect("write shared");
        // The stored copy, the source, and the pending delta all moved.
        assert_eq!(
            doctor
                .shared_table("D23&D32")
                .expect("D32")
                .get(&[Value::text("Ibuprofen")])
                .expect("row")[1],
            Value::text("MeA1-new")
        );
        assert_eq!(
            doctor
                .db
                .table("D3")
                .expect("D3")
                .get(&[Value::Int(188)])
                .expect("row")[3],
            Value::text("MeA1-new")
        );
        let pending = doctor.pending_delta("D23&D32").expect("pending");
        assert_eq!(pending.updates.len(), 1);
        assert!(doctor.has_pending_change("D23&D32").expect("check"));
        // The sibling share's lens does not cover the mechanism → no
        // pending change there.
        assert!(!doctor.has_pending_change("D13&D31").expect("check"));
        // The baseline still matches the last committed state.
        assert_ne!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );

        // Rolling back the inverses restores everything.
        for (table, inv) in inverses.iter().rev() {
            doctor.db.apply_delta(table, inv).expect("rollback");
        }
        doctor.clear_pending("D23&D32");
        assert_eq!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );
    }

    #[test]
    fn delta_remote_apply_advances_baseline_and_stashes_cascades() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // The Researcher retired the Wellbutrin group from the shared
        // D23&D32 — translatable through the project-distinct lens (all
        // group members drop from D3).
        let view_delta = TableDelta {
            deletes: vec![vec![Value::text("Wellbutrin")]],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("translate");
        assert!(!source_delta.is_empty());
        let mut expected = doctor.shared_table("D23&D32").expect("D32").clone();
        expected.apply_delta(&view_delta).expect("expected view");
        doctor
            .apply_remote_delta(
                "D23&D32",
                &view_delta,
                &source_delta,
                expected.content_hash(),
                1,
            )
            .expect("apply");
        assert_eq!(doctor.applied_versions["D23&D32"], 1);
        assert_eq!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );
        // The group delete flowed into D3, and the sibling patient share
        // (whose lens shows patient 189's row) now has a pending cascade
        // delta tracked from the same source delta.
        assert!(doctor
            .db
            .table("D3")
            .expect("D3")
            .get(&[Value::Int(189)])
            .is_none());
        let cascade = doctor.pending_delta("D13&D31").expect("pending");
        assert_eq!(cascade.deletes, vec![vec![Value::Int(189)]]);
        assert!(doctor.has_pending_change("D13&D31").expect("check"));
    }

    #[test]
    fn conflicting_pending_resolves_like_full_table_mode() {
        // A peer carrying an uncommitted local change receives a
        // committed remote update of the same table: the delta-mode
        // conflict path must end byte-identical to full-table mode
        // (remote wins on the view, lens put merges into the source),
        // with pending tracking re-derived from ground truth.
        let mut delta_doc = doctor_with_shares_in(PropagationMode::Delta);
        let mut full_doc = doctor_with_shares_in(PropagationMode::FullTable);

        // Local uncommitted edit: clinical data of 188, which gives the
        // delta doctor a pending entry on the patient share.
        let local_edit = WriteOp::Update {
            key: vec![Value::Int(188)],
            assignments: vec![("clinical_data".into(), Value::text("local-note"))],
        };
        delta_doc
            .write_source("D3", local_edit.clone())
            .expect("delta write");
        assert!(delta_doc.has_pending_change("D13&D31").expect("check"));
        full_doc.db.apply("D3", local_edit).expect("full write");
        full_doc.refresh_view("D13&D31").expect("full refresh");

        // A committed remote update (dosage of 189) built on the
        // *committed* baseline arrives at both.
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::Int(189)],
                row![189i64, "Wellbutrin", "CliD2", "remote-dose"],
            )],
            ..Default::default()
        };
        let mut view_new = delta_doc.baseline("D13&D31").expect("baseline").clone();
        view_new.apply_delta(&view_delta).expect("view");
        let announced = view_new.content_hash();

        let source_delta = delta_doc
            .translate_remote_delta("D13&D31", &view_delta)
            .expect("translate");
        delta_doc
            .apply_remote_delta("D13&D31", &view_delta, &source_delta, announced, 1)
            .expect("delta apply");
        full_doc
            .apply_remote_view("D13&D31", &view_new, announced, 1)
            .expect("full apply");

        // Byte-identical end state across modes, and the delta doctor's
        // stored copy equals what its source regenerates.
        assert_eq!(delta_doc.db.fingerprint(), full_doc.db.fingerprint());
        assert_eq!(
            delta_doc.shared_table("D13&D31").expect("view"),
            &delta_doc.regenerate_view("D13&D31").expect("regen")
        );
        assert!(!delta_doc.has_pending_change("D13&D31").expect("check"));
        delta_doc
            .check_share_integrity("D13&D31", announced)
            .expect("integrity");
    }

    #[test]
    fn delta_remote_apply_rejects_hash_mismatch_without_corruption() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        let before = doctor.shared_hash("D23&D32").expect("hash");
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::text("Ibuprofen")],
                row!["Ibuprofen", "MeA1-new"],
            )],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("translate");
        let err = doctor
            .apply_remote_delta("D23&D32", &view_delta, &source_delta, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
        assert_eq!(doctor.shared_hash("D23&D32").expect("hash"), before);
    }

    #[test]
    fn prepare_update_delta_falls_back_for_out_of_band_edits() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // Edit the source directly, bypassing write_source tracking.
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("stop"))],
                },
            )
            .expect("edit source");
        let delta = doctor.prepare_update_delta("D13&D31").expect("prepare");
        assert_eq!(delta.updates.len(), 1);
        // The stored copy caught up and the pending delta is tracked.
        assert_eq!(
            doctor
                .shared_table("D13&D31")
                .expect("D31")
                .get(&[Value::Int(188)])
                .expect("row")[3],
            Value::text("stop")
        );
        assert!(doctor.has_pending_change("D13&D31").expect("check"));
        // Committing the delta advances the baseline and clears pending.
        doctor.commit_delta("D13&D31", &delta, 1).expect("commit");
        assert!(!doctor.has_pending_change("D13&D31").expect("check"));
        assert_eq!(
            doctor.shared_hash("D13&D31").expect("hash"),
            doctor.committed_hash("D13&D31").expect("hash")
        );
    }

    #[test]
    fn step6_overlap_detects_d31_d32_dependency() {
        let doctor = doctor_with_shares();
        // D31 and D32 share `medication_name` on D3.
        assert_eq!(
            doctor.overlapping_shares("D23&D32").expect("overlap"),
            vec!["D13&D31".to_string()]
        );
        assert_eq!(
            doctor.overlapping_shares("D13&D31").expect("overlap"),
            vec!["D23&D32".to_string()]
        );
    }

    #[test]
    fn step6_no_overlap_for_disjoint_lenses() {
        let mut doctor = PeerNode::new("Doctor", "disjoint", 8, PropagationMode::FullTable, 1);
        doctor.add_source_table("D3", d3_table()).expect("add");
        doctor
            .join_share(
                "dose-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(&["patient_id", "dosage"], &["patient_id"]),
                },
            )
            .expect("join");
        doctor
            .join_share(
                "mech-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["mechanism_of_action"],
                        &["mechanism_of_action"],
                    ),
                },
            )
            .expect("join");
        assert!(doctor
            .overlapping_shares("dose-share")
            .expect("overlap")
            .is_empty());
    }

    #[test]
    fn write_shared_round_trips_into_source() {
        for mode in [PropagationMode::FullTable, PropagationMode::Delta] {
            let mut doctor = doctor_with_shares_in(mode);
            doctor
                .write_shared(
                    "D13&D31",
                    WriteOp::Update {
                        key: vec![Value::Int(189)],
                        assignments: vec![("dosage".into(), Value::text("50 mg once"))],
                    },
                )
                .expect("write shared");
            let d3 = doctor.db.table("D3").expect("D3");
            assert_eq!(
                d3.get(&[Value::Int(189)]).expect("row")[4],
                Value::text("50 mg once"),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn write_source_rejects_shared_tables() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .write_source(
                "D13&D31",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut doctor = doctor_with_shares();
        let snap = doctor.snapshot();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .expect("delete");
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 1);
        doctor.restore(snap);
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 2);
    }

    #[test]
    fn leave_share_cleans_up() {
        let mut doctor = doctor_with_shares();
        doctor.leave_share("D23&D32").expect("leave");
        assert_eq!(doctor.shares(), vec!["D13&D31"]);
        assert!(!doctor.db.has_table("D23&D32"));
        assert!(doctor.leave_share("D23&D32").is_err());
    }

    /// Runs the same staged-write + remote-apply + commit sequence on a
    /// sharded and an unsharded doctor and asserts byte-identical state.
    fn run_mixed_sequence(doctor: &mut PeerNode) {
        doctor
            .write_shared(
                "D23&D32",
                WriteOp::Update {
                    key: vec![Value::text("Ibuprofen")],
                    assignments: vec![("mechanism_of_action".into(), Value::text("MeA1-x"))],
                },
            )
            .expect("write shared");
        let delta = doctor.prepare_update_delta("D23&D32").expect("prepare");
        doctor.commit_delta("D23&D32", &delta, 1).expect("commit");
        doctor
            .write_source(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("2x daily"))],
                },
            )
            .expect("write source");
        let d31 = doctor.prepare_update_delta("D13&D31").expect("prepare 31");
        doctor.commit_delta("D13&D31", &d31, 1).expect("commit 31");
        // A committed remote delta on the patient share.
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::Int(188)],
                row![188i64, "Ibuprofen", "CliD1", "remote-dose"],
            )],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D13&D31", &view_delta)
            .expect("translate");
        let mut expected = doctor.baseline("D13&D31").expect("baseline").clone();
        expected.apply_delta(&view_delta).expect("expected");
        doctor
            .apply_remote_delta(
                "D13&D31",
                &view_delta,
                &source_delta,
                expected.content_hash(),
                2,
            )
            .expect("remote apply");
    }

    #[test]
    fn sharded_peer_is_byte_identical_to_unsharded() {
        for shards in [2usize, 8] {
            let mut plain = doctor_with_shares_sharded(PropagationMode::Delta, 1);
            let mut sharded = doctor_with_shares_sharded(PropagationMode::Delta, shards);
            assert!(sharded.is_sharded("D13&D31"));
            assert!(!plain.is_sharded("D13&D31"));
            run_mixed_sequence(&mut plain);
            run_mixed_sequence(&mut sharded);
            assert_eq!(
                plain.db.fingerprint(),
                sharded.db.fingerprint(),
                "shards={shards}"
            );
            for table in ["D13&D31", "D23&D32"] {
                assert_eq!(
                    plain.shared_hash(table).expect("hash"),
                    sharded.shared_hash(table).expect("hash")
                );
                assert_eq!(
                    plain.committed_hash(table).expect("hash"),
                    sharded.committed_hash(table).expect("hash")
                );
                assert_eq!(
                    plain.pending_delta(table).expect("pending"),
                    sharded.pending_delta(table).expect("pending")
                );
                // The sharded mirrors agree with the assembled copies.
                let state = &sharded.shard_states[table];
                assert_eq!(
                    state.store.content_hash(),
                    sharded.shared_table(table).expect("table").content_hash()
                );
                assert_eq!(
                    state.baseline.content_hash(),
                    sharded.baseline(table).expect("baseline").content_hash()
                );
            }
        }
    }

    #[test]
    fn sharded_remote_apply_rejects_hash_mismatch_without_corruption() {
        let mut doctor = doctor_with_shares_sharded(PropagationMode::Delta, 8);
        let before = doctor.shared_hash("D13&D31").expect("hash");
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::Int(188)],
                row![188i64, "Ibuprofen", "CliD1", "bad-dose"],
            )],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D13&D31", &view_delta)
            .expect("translate");
        let err = doctor
            .apply_remote_delta("D13&D31", &view_delta, &source_delta, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
        assert_eq!(doctor.shared_hash("D13&D31").expect("hash"), before);
        let state = &doctor.shard_states["D13&D31"];
        assert_eq!(state.store.content_hash(), before);
    }

    #[test]
    fn sharded_rollback_keeps_mirrors_in_sync() {
        let mut doctor = doctor_with_shares_sharded(PropagationMode::Delta, 8);
        let before_fp = doctor.db.fingerprint();
        let before_hash = doctor.shared_hash("D13&D31").expect("hash");
        let pending = doctor.pending_snapshot();
        let inverses = doctor
            .write_shared(
                "D13&D31",
                WriteOp::Update {
                    key: vec![Value::Int(189)],
                    assignments: vec![("dosage".into(), Value::text("staged"))],
                },
            )
            .expect("write shared");
        assert_ne!(doctor.shared_hash("D13&D31").expect("hash"), before_hash);
        doctor.rollback_writes(&inverses, pending);
        assert_eq!(doctor.db.fingerprint(), before_fp);
        assert_eq!(doctor.shared_hash("D13&D31").expect("hash"), before_hash);
        let state = &doctor.shard_states["D13&D31"];
        assert_eq!(state.store.content_hash(), before_hash);
        assert!(!doctor.has_pending_change("D13&D31").expect("check"));
    }

    #[test]
    fn cached_group_index_tracks_applied_deltas() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // The ProjectDistinct share got an index at join time.
        assert!(doctor.group_indexes.contains_key("D23&D32"));
        assert!(!doctor.group_indexes.contains_key("D13&D31"));
        doctor
            .write_source(
                "D3",
                WriteOp::Insert {
                    row: row![190i64, "Ibuprofen", "CliD9", "MeA1", "3x"],
                },
            )
            .expect("insert");
        let rebuilt = GroupIndex::build(
            doctor.db.table("D3").expect("D3"),
            &["medication_name".to_string()],
        )
        .expect("rebuild");
        // The index is fresh (advanced, not rebuilt) and correct.
        assert!(doctor.fresh_group_index("D23&D32").is_some());
        let cached = &doctor.group_indexes["D23&D32"].1;
        assert_eq!(cached.group_count(), rebuilt.group_count());
        let ibu = cached
            .rows_of(&[Value::text("Ibuprofen")])
            .expect("group present");
        assert_eq!(ibu.len(), 2);
        assert!(ibu.contains(&vec![Value::Int(190)]));
        // And indexed translation agrees with a fresh (uncached) path.
        let view_delta = TableDelta {
            deletes: vec![vec![Value::text("Wellbutrin")]],
            ..Default::default()
        };
        let indexed = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("indexed translate");
        let fresh = incremental::put_delta(
            &doctor.bindings["D23&D32"].lens,
            doctor.db.table("D3").expect("D3"),
            &view_delta,
        )
        .expect("uncached translate");
        assert_eq!(indexed, fresh);
    }

    #[test]
    fn out_of_band_shared_edit_never_serves_a_stale_fold() {
        let mut doctor = doctor_with_shares_sharded(PropagationMode::Delta, 8);
        // Warm the mirror's fold, then edit the stored shared copy
        // directly via the public `db` field, bypassing the tracked
        // paths.
        let before = doctor.shared_hash("D13&D31").expect("hash");
        doctor
            .db
            .apply(
                "D13&D31",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("oob-dose"))],
                },
            )
            .expect("out-of-band edit");
        assert!(
            doctor.fresh_shard_state("D13&D31").is_none(),
            "version guard must flag the mirror stale"
        );
        // The fold is bypassed: shared_hash reflects the edited copy.
        let after = doctor.shared_hash("D13&D31").expect("hash");
        assert_ne!(after, before);
        assert_eq!(
            after,
            doctor
                .shared_table("D13&D31")
                .expect("table")
                .content_hash()
        );
        // The next tracked apply resyncs the mirror from ground truth
        // before applying on top, and re-stamps it fresh.
        doctor
            .write_shared(
                "D13&D31",
                WriteOp::Update {
                    key: vec![Value::Int(189)],
                    assignments: vec![("dosage".into(), Value::text("tracked"))],
                },
            )
            .expect("tracked write");
        assert!(doctor.fresh_shard_state("D13&D31").is_some());
        let state = &doctor.shard_states["D13&D31"];
        assert_eq!(
            state.store.content_hash(),
            doctor
                .shared_table("D13&D31")
                .expect("table")
                .content_hash()
        );
    }

    #[test]
    fn out_of_band_source_edit_never_uses_a_stale_group_index() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // Edit the source directly, bypassing the tracked write paths —
        // a supported flow (see prepare_update_delta). The cached index
        // has not seen patient 191 join the Wellbutrin group.
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Insert {
                    row: row![191i64, "Wellbutrin", "CliD9", "MeA2", "50 mg"],
                },
            )
            .expect("out-of-band insert");
        assert!(
            doctor.fresh_group_index("D23&D32").is_none(),
            "version guard must flag the index stale"
        );
        // Translating a whole-group delete must still cover BOTH members
        // (189 and the out-of-band 191) — the stale index is bypassed.
        let view_delta = TableDelta {
            deletes: vec![vec![Value::text("Wellbutrin")]],
            ..Default::default()
        };
        let translated = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("translate");
        assert!(translated.deletes.contains(&vec![Value::Int(189)]));
        assert!(translated.deletes.contains(&vec![Value::Int(191)]));
        // The next tracked source apply rebuilds the index from ground
        // truth and re-stamps it fresh.
        doctor
            .write_source(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("1x"))],
                },
            )
            .expect("tracked write");
        assert!(doctor.fresh_group_index("D23&D32").is_some());
        let idx = &doctor.group_indexes["D23&D32"].1;
        assert!(idx
            .rows_of(&[Value::text("Wellbutrin")])
            .expect("group")
            .contains(&vec![Value::Int(191)]));
    }

    #[test]
    fn nonce_allocation_is_sequential() {
        let mut p = PeerNode::new("P", "nonce", 4, PropagationMode::Delta, 1);
        assert_eq!(p.take_nonce(), 0);
        assert_eq!(p.take_nonce(), 1);
        assert_eq!(p.take_nonce(), 2);
    }

    #[test]
    fn full_records_schema_available() {
        // Sanity: the workload schema matches what peers expect to split.
        let s = full_records_schema();
        assert_eq!(s.arity(), 7);
        let mut p = PeerNode::new("P", "schema", 4, PropagationMode::Delta, 1);
        p.create_source_table("full", s).expect("create");
        p.db.apply(
            "full",
            WriteOp::Insert {
                row: row![1i64, "m", "c", "a", "d", "me", "mo"],
            },
        )
        .expect("insert");
    }
}
