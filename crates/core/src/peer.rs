//! Peer nodes: a stakeholder's client, server app and database manager.

use crate::agreement::PeerBinding;
use crate::error::CoreError;
use crate::Result;
use medledger_bx::{analysis, changed_attrs, exec, incremental};
use medledger_crypto::{Hash256, KeyPair};
use medledger_ledger::AccountId;
use medledger_relational::{
    delta_from_write_op, diff_tables, Database, Row, Schema, Table, TableDelta, Value, WriteOp,
};
use std::collections::{BTreeMap, BTreeSet};

/// How shared-table updates travel between peers.
///
/// The mode is a deployment-wide choice ([`crate::system::SystemConfig`]);
/// both modes produce byte-identical final states — the property the
/// workspace's mode-equivalence tests assert — but at very different cost:
/// delta mode's per-update work and bandwidth scale with the rows an
/// update touched, full-table mode's with the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Ship row-level [`TableDelta`]s and run the lenses incrementally
    /// (`get_delta` / `put_delta`). The production path.
    #[default]
    Delta,
    /// Exchange whole tables and re-run full `get` / `put` on every
    /// propagation — the paper-literal baseline, kept for comparison
    /// benches and equivalence tests.
    FullTable,
}

/// Tracked-but-uncommitted changes of one shared view, keyed by primary
/// key. `Some(row)` = the row's pending state, `None` = pending delete;
/// later writes to the same key overwrite earlier ones, which is exactly
/// delta composition for state-valued deltas.
type PendingRows = BTreeMap<Vec<Value>, Option<Row>>;

/// Opaque snapshot of a peer's whole pending-delta tracking state.
/// Paired with the inverse deltas a staged write returns, it is
/// everything a transactional caller (the facade's `UpdateBatch`, the
/// engine's `CommitQueue`) needs to roll a failed batch back via
/// [`PeerNode::rollback_writes`]. Cheap: pending deltas hold only the
/// rows touched since the last committed version.
#[derive(Clone, Debug, Default)]
pub struct PendingSnapshot(BTreeMap<String, PendingRows>);

fn merge_into_pending(pending: &mut PendingRows, schema: &Schema, delta: &TableDelta) {
    for row in &delta.inserts {
        pending.insert(schema.key_of(row), Some(row.clone()));
    }
    for (key, row) in &delta.updates {
        pending.insert(key.clone(), Some(row.clone()));
    }
    for key in &delta.deletes {
        pending.insert(key.clone(), None);
    }
}

/// Normalizes pending rows against the committed baseline into a
/// canonical [`TableDelta`]: no-op entries drop out, inserts/updates are
/// classified by baseline membership. Cost is O(pending) lookups.
fn normalize_pending(pending: &PendingRows, baseline: &Table) -> TableDelta {
    let mut delta = TableDelta::default();
    for (key, change) in pending {
        match change {
            Some(row) => match baseline.get(key) {
                Some(old) if old == row => {}
                Some(_) => delta.updates.push((key.clone(), row.clone())),
                None => delta.inserts.push(row.clone()),
            },
            None => {
                if baseline.contains_key(key) {
                    delta.deletes.push(key.clone());
                }
            }
        }
    }
    let schema = baseline.schema().clone();
    delta.sort_canonical(|r| schema.key_of(r));
    delta
}

/// A peer (Patient, Doctor, Researcher, …) in the Fig. 2 architecture.
///
/// The peer's [`Database`] holds its *source* tables (full local data)
/// plus a materialized copy of every shared table it participates in
/// (stored under the shared table id). The **database manager** methods
/// are the paper's "BX" boxes: in [`PropagationMode::Delta`] they push
/// row-level deltas through the lenses (`get_delta` / `put_delta`); in
/// [`PropagationMode::FullTable`] they re-run full `get` / `put` over
/// whole tables.
///
/// State per shared table in delta mode:
/// * the **stored copy** (in `db`) always reflects every local write,
/// * the **baseline** is the view as of the last version committed on
///   chain (advanced by applying the committed delta, never by cloning),
/// * the **pending rows** are the composed local changes since the
///   baseline — what the next propagation ships.
#[derive(Clone, Debug)]
pub struct PeerNode {
    /// Human-readable name ("Patient", "Doctor", …).
    pub name: String,
    /// Ledger account (also the public signing key).
    pub account: AccountId,
    /// Signing keys for ledger transactions.
    pub keys: KeyPair,
    /// Local database: sources + materialized shared tables.
    pub db: Database,
    /// How this peer exchanges shared-table updates.
    pub mode: PropagationMode,
    /// Shared-table bindings this peer participates in.
    bindings: BTreeMap<String, PeerBinding>,
    /// Per shared table: the view as of the last version committed on
    /// chain. Diffing (or normalizing pending rows) against this baseline
    /// yields the `changed_attrs` the contract checks write permission on.
    baselines: BTreeMap<String, Table>,
    /// Per shared table: composed uncommitted local changes (delta mode).
    pending: BTreeMap<String, PendingRows>,
    /// Last applied version per shared table (mirror of contract state).
    pub applied_versions: BTreeMap<String, u64>,
    /// Next ledger nonce.
    pub next_nonce: u64,
}

impl PeerNode {
    /// Creates a peer with a deterministic key derived from `name` and
    /// `seed`, able to sign `key_capacity` transactions.
    pub fn new(
        name: impl Into<String>,
        seed: &str,
        key_capacity: usize,
        mode: PropagationMode,
    ) -> Self {
        let name = name.into();
        let keys = KeyPair::generate(&format!("{seed}-peer-{name}"), key_capacity);
        PeerNode {
            account: keys.public(),
            db: Database::new(name.clone()),
            name,
            keys,
            mode,
            bindings: BTreeMap::new(),
            baselines: BTreeMap::new(),
            pending: BTreeMap::new(),
            applied_versions: BTreeMap::new(),
            next_nonce: 0,
        }
    }

    /// Registers a source table with initial contents.
    pub fn add_source_table(&mut self, name: &str, table: Table) -> Result<()> {
        self.db.put_table(name, table)?;
        Ok(())
    }

    /// Creates an empty source table.
    pub fn create_source_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.db.create_table(name, schema)?;
        Ok(())
    }

    /// Joins a shared table: records the binding, materializes the view
    /// via the lens's `get`, and stores it under `table_id`.
    pub fn join_share(&mut self, table_id: &str, binding: PeerBinding) -> Result<Hash256> {
        let source = self.db.table(&binding.source_table)?;
        let view = exec::get(&binding.lens, source)?;
        let hash = view.content_hash();
        if self.db.has_table(table_id) {
            return Err(CoreError::BadAgreement(format!(
                "peer {} already participates in `{table_id}`",
                self.name
            )));
        }
        self.db.put_table(table_id, view.clone())?;
        self.bindings.insert(table_id.to_string(), binding);
        self.baselines.insert(table_id.to_string(), view);
        self.applied_versions.insert(table_id.to_string(), 0);
        Ok(hash)
    }

    /// Leaves a share: drops the local materialized copy and binding.
    pub fn leave_share(&mut self, table_id: &str) -> Result<()> {
        self.binding(table_id)?;
        self.bindings.remove(table_id);
        self.baselines.remove(table_id);
        self.pending.remove(table_id);
        self.applied_versions.remove(table_id);
        self.db.drop_table(table_id)?;
        Ok(())
    }

    /// The binding for a shared table.
    pub fn binding(&self, table_id: &str) -> Result<&PeerBinding> {
        self.bindings
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Shared table ids this peer participates in.
    pub fn shares(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }

    /// Sibling shares bound to the same source as `table_id` (excluding
    /// `table_id` itself).
    fn sibling_shares(&self, source_table: &str, except: Option<&str>) -> Vec<String> {
        self.bindings
            .iter()
            .filter(|(id, b)| b.source_table == source_table && Some(id.as_str()) != except)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Applies a local write to a **source** table (Fig. 5 step 0: the
    /// Researcher edits D2 before propagating).
    ///
    /// In delta mode the write is converted to a row-level delta, pushed
    /// forward through every lens bound to this source (`get_delta`), the
    /// affected shared copies are refreshed incrementally, and the view
    /// deltas accumulate as pending changes for the next propagation.
    /// Returns the applied inverses `(table, inverse_delta)` in
    /// application order so a transactional caller can roll back in
    /// O(changed rows).
    pub fn write_source(&mut self, table: &str, op: WriteOp) -> Result<Vec<(String, TableDelta)>> {
        if self.bindings.contains_key(table) {
            return Err(CoreError::BadAgreement(format!(
                "`{table}` is a shared table; edit the source and propagate, \
                 or use write_shared"
            )));
        }
        if self.mode == PropagationMode::FullTable {
            // Full-table mode defers the lens work to propagation time,
            // but the write itself still applies as a delta so the caller
            // gets an inverse for O(changed rows) transactional rollback
            // (same contract as delta mode — no table snapshots).
            let source_delta = delta_from_write_op(self.db.table(table)?, &op)?;
            let inv = self.db.apply_delta(table, &source_delta)?;
            return Ok(vec![(table.to_string(), inv)]);
        }
        let source_old = self.db.table(table)?;
        let source_delta = delta_from_write_op(source_old, &op)?;
        // Push the source delta forward through every lens on this source
        // *before* mutating, so the old source anchors the lookups.
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(table, None) {
            let lens = &self.bindings[&share_id].lens;
            let view_delta = incremental::get_delta(lens, source_old, &source_delta)?;
            if !view_delta.is_empty() {
                derived.push((share_id, view_delta));
            }
        }
        let mut inverses = Vec::with_capacity(1 + derived.len());
        let inv = self.db.apply_delta(table, &source_delta)?;
        inverses.push((table.to_string(), inv));
        for (share_id, view_delta) in derived {
            let inv = self.db.apply_delta(&share_id, &view_delta)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            merge_into_pending(
                self.pending.entry(share_id.clone()).or_default(),
                &schema,
                &view_delta,
            );
            inverses.push((share_id, inv));
        }
        Ok(inverses)
    }

    /// Applies a local write directly to a **shared** table copy and
    /// immediately reflects it into the source (entry-level CRUD on
    /// shared data, Fig. 4). The caller still must propagate.
    ///
    /// Delta mode reflects the change via `put_delta` (O(changed rows))
    /// and also refreshes sibling shares on the same source via
    /// `get_delta`; full-table mode re-runs the full lens `put`. Returns
    /// applied inverses as in [`PeerNode::write_source`].
    pub fn write_shared(
        &mut self,
        table_id: &str,
        op: WriteOp,
    ) -> Result<Vec<(String, TableDelta)>> {
        let binding = self.binding(table_id)?.clone();
        if self.mode == PropagationMode::FullTable {
            // The lens still runs as a full `put` (that is the mode's
            // point), but both mutations apply as deltas so the caller
            // gets inverses for rollback instead of table snapshots.
            let view_delta = delta_from_write_op(self.db.table(table_id)?, &op)?;
            let view_inv = self.db.apply_delta(table_id, &view_delta)?;
            let view = self.db.table(table_id)?.clone();
            let source_old = self.db.table(&binding.source_table)?;
            // An untranslatable write must leave the peer untouched: undo
            // the already-applied view delta before surfacing the error.
            let new_source = match exec::put(&binding.lens, source_old, &view) {
                Ok(t) => t,
                Err(e) => {
                    self.db
                        .apply_delta(table_id, &view_inv)
                        .expect("inverse of a just-applied delta applies");
                    return Err(e.into());
                }
            };
            let source_delta = diff_tables(source_old, &new_source);
            let mut inverses = vec![(table_id.to_string(), view_inv)];
            if !source_delta.is_empty() {
                let inv = self.db.apply_delta(&binding.source_table, &source_delta)?;
                inverses.push((binding.source_table.clone(), inv));
            }
            return Ok(inverses);
        }
        let view = self.db.table(table_id)?;
        let view_delta = delta_from_write_op(view, &op)?;
        let view_schema = view.schema().clone();
        let source_old = self.db.table(&binding.source_table)?;
        let source_delta = incremental::put_delta(&binding.lens, source_old, &view_delta)?;
        // Sibling views refresh from the source delta (the raw material of
        // the Fig. 5 step-6 dependency check).
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
            let lens = &self.bindings[&share_id].lens;
            let d = incremental::get_delta(lens, source_old, &source_delta)?;
            if !d.is_empty() {
                derived.push((share_id, d));
            }
        }
        let mut inverses = Vec::with_capacity(2 + derived.len());
        let inv = self.db.apply_delta(table_id, &view_delta)?;
        inverses.push((table_id.to_string(), inv));
        merge_into_pending(
            self.pending.entry(table_id.to_string()).or_default(),
            &view_schema,
            &view_delta,
        );
        if !source_delta.is_empty() {
            let inv = self.db.apply_delta(&binding.source_table, &source_delta)?;
            inverses.push((binding.source_table.clone(), inv));
        }
        for (share_id, d) in derived {
            let inv = self.db.apply_delta(&share_id, &d)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            merge_into_pending(
                self.pending.entry(share_id.clone()).or_default(),
                &schema,
                &d,
            );
            inverses.push((share_id, inv));
        }
        Ok(inverses)
    }

    /// Regenerates the shared view from the (possibly updated) source
    /// without storing it (full-table Fig. 5 step 1 uses the result to
    /// diff).
    pub fn regenerate_view(&self, table_id: &str) -> Result<Table> {
        let binding = self.binding(table_id)?;
        let source = self.db.table(&binding.source_table)?;
        Ok(exec::get(&binding.lens, source)?)
    }

    /// The stored (materialized) copy of a shared table.
    pub fn shared_table(&self, table_id: &str) -> Result<&Table> {
        self.binding(table_id)?;
        Ok(self.db.table(table_id)?)
    }

    /// Content hash of the stored shared copy.
    pub fn shared_hash(&self, table_id: &str) -> Result<Hash256> {
        Ok(self.shared_table(table_id)?.content_hash())
    }

    /// Content hash of the last *committed* view — what must equal the
    /// hash the sharing contract holds while the table is synced, even
    /// when the peer carries pending local changes (e.g. a
    /// permission-blocked cascade awaiting retry).
    pub fn committed_hash(&self, table_id: &str) -> Result<Hash256> {
        Ok(self.baseline(table_id)?.content_hash())
    }

    /// Verifies this peer's local invariants for a *synced* shared table
    /// against the hash the contract committed:
    ///
    /// 1. the committed baseline must hash to `contract_hash`, and
    /// 2. the stored copy must equal the baseline **plus** any tracked
    ///    pending delta — so with nothing pending (the full-table mode
    ///    and the quiescent delta-mode case) the stored copy itself must
    ///    match the contract, and a peer carrying a pending change (e.g.
    ///    a blocked cascade) is still checked against what it serves.
    pub fn check_share_integrity(&self, table_id: &str, contract_hash: Hash256) -> Result<()> {
        let committed = self.committed_hash(table_id)?;
        if committed != contract_hash {
            return Err(CoreError::ConsistencyViolation(format!(
                "peer {} holds `{table_id}` committed at {} but contract says {}",
                self.name,
                committed.short(),
                contract_hash.short()
            )));
        }
        let pending = self.pending_delta(table_id)?;
        let expected = if pending.is_empty() {
            contract_hash
        } else {
            let mut t = self.baseline(table_id)?.clone();
            t.apply_delta(&pending)?;
            t.content_hash()
        };
        let stored = self.shared_hash(table_id)?;
        if stored != expected {
            return Err(CoreError::ConsistencyViolation(format!(
                "peer {} stores `{table_id}` hashing to {} but committed state \
                 plus its {} pending row(s) implies {}",
                self.name,
                stored.short(),
                pending.row_count(),
                expected.short()
            )));
        }
        Ok(())
    }

    // ----- delta-mode propagation hooks -------------------------------

    /// The normalized pending delta of `table_id` relative to the
    /// committed baseline (empty delta if nothing is pending).
    pub fn pending_delta(&self, table_id: &str) -> Result<TableDelta> {
        let baseline = self.baseline(table_id)?;
        Ok(match self.pending.get(table_id) {
            Some(p) => normalize_pending(p, baseline),
            None => TableDelta::default(),
        })
    }

    /// True iff the peer holds a pending local change of `table_id` —
    /// the delta-mode Fig. 5 step-6 "does this share now differ?" check,
    /// answered in O(pending) instead of a full regenerate-and-diff.
    pub fn has_pending_change(&self, table_id: &str) -> Result<bool> {
        Ok(!self.pending_delta(table_id)?.is_empty())
    }

    /// Delta-mode Fig. 5 step 1: the delta this peer would propagate for
    /// `table_id`, with the stored copy guaranteed to reflect it.
    ///
    /// Normally this is the normalized pending delta (O(pending)). When
    /// no writes were tracked (out-of-band edits straight to `db`), it
    /// falls back to a full regenerate-and-diff and brings the stored
    /// copy and pending tracking in line.
    pub fn prepare_update_delta(&mut self, table_id: &str) -> Result<TableDelta> {
        let normalized = self.pending_delta(table_id)?;
        if !normalized.is_empty() {
            return Ok(normalized);
        }
        let regenerated = self.regenerate_view(table_id)?;
        let delta = diff_tables(self.baseline(table_id)?, &regenerated);
        if delta.is_empty() {
            self.pending.remove(table_id);
            return Ok(delta);
        }
        let stored_delta = diff_tables(self.db.table(table_id)?, &regenerated);
        if !stored_delta.is_empty() {
            self.db.apply_delta(table_id, &stored_delta)?;
        }
        let schema = self.db.table(table_id)?.schema().clone();
        merge_into_pending(
            self.pending.entry(table_id.to_string()).or_default(),
            &schema,
            &delta,
        );
        Ok(delta)
    }

    /// Translates an incoming view delta into this peer's source delta
    /// (`put_delta`) **without applying anything** — the pipeline's
    /// pre-flight check, run for every sharing peer before the update is
    /// submitted on chain.
    pub fn translate_remote_delta(
        &self,
        table_id: &str,
        view_delta: &TableDelta,
    ) -> Result<TableDelta> {
        let binding = self.binding(table_id)?;
        let source = self.db.table(&binding.source_table)?;
        Ok(incremental::put_delta(&binding.lens, source, view_delta)?)
    }

    /// Applies a committed remote delta (Fig. 5 steps 4–5 / 10–11 in
    /// delta mode): refreshes the stored copy row-by-row, verifies the
    /// announced hash via the incremental digest, reflects the change
    /// into the source with the pre-computed `source_delta`, refreshes
    /// sibling shares (stashing their deltas as pending for the step-6
    /// cascade), and advances the committed baseline by the same delta.
    pub fn apply_remote_delta(
        &mut self,
        table_id: &str,
        view_delta: &TableDelta,
        source_delta: &TableDelta,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        let binding = self.binding(table_id)?.clone();
        // Conflict path: this peer carries uncommitted local changes of
        // the same table (e.g. a permission-blocked cascade awaiting
        // retry) while a committed remote update arrives. Resolve exactly
        // as full-table mode does — the remote view wins, the lens `put`
        // merges it into the source — then re-derive the pending tracking
        // of every share on this source from ground truth, so a residual
        // local difference survives as a fresh pending delta (the retry
        // is preserved, not silently dropped). O(table), but only on this
        // rare contended path.
        if self.pending.contains_key(table_id) {
            let mut view_new = self.baseline(table_id)?.clone();
            view_new.apply_delta(view_delta).map_err(|e| {
                CoreError::ConsistencyViolation(format!(
                    "committed `{table_id}` delta does not apply to the committed baseline: {e}"
                ))
            })?;
            // Verified before any mutation: a corrupt delta leaves the
            // peer untouched.
            self.apply_remote_view(table_id, &view_new, announced_hash, version)?;
            self.pending.remove(table_id);
            for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
                let regenerated = self.regenerate_view(&share_id)?;
                let stored_delta = diff_tables(self.db.table(&share_id)?, &regenerated);
                if !stored_delta.is_empty() {
                    self.db.apply_delta(&share_id, &stored_delta)?;
                }
                let pending_delta = diff_tables(self.baseline(&share_id)?, &regenerated);
                self.pending.remove(&share_id);
                if !pending_delta.is_empty() {
                    let schema = regenerated.schema().clone();
                    merge_into_pending(
                        self.pending.entry(share_id.clone()).or_default(),
                        &schema,
                        &pending_delta,
                    );
                }
            }
            return Ok(());
        }
        let source_old = self.db.table(&binding.source_table)?;
        let mut derived: Vec<(String, TableDelta)> = Vec::new();
        for share_id in self.sibling_shares(&binding.source_table, Some(table_id)) {
            let lens = &self.bindings[&share_id].lens;
            let d = incremental::get_delta(lens, source_old, source_delta)?;
            if !d.is_empty() {
                derived.push((share_id, d));
            }
        }
        let view_inv = self.db.apply_delta(table_id, view_delta)?;
        if self.db.table(table_id)?.content_hash() != announced_hash {
            // Corrupt or stale delta: restore the stored copy and refuse.
            self.db.apply_delta(table_id, &view_inv)?;
            return Err(CoreError::ConsistencyViolation(format!(
                "applying the `{table_id}` delta does not reproduce the hash the \
                 contract announced ({})",
                announced_hash.short()
            )));
        }
        if !source_delta.is_empty() {
            self.db.apply_delta(&binding.source_table, source_delta)?;
        }
        for (share_id, d) in derived {
            self.db.apply_delta(&share_id, &d)?;
            let schema = self.db.table(&share_id)?.schema().clone();
            merge_into_pending(
                self.pending.entry(share_id.clone()).or_default(),
                &schema,
                &d,
            );
        }
        let baseline = self
            .baselines
            .get_mut(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))?;
        baseline.apply_delta(view_delta)?;
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// Marks the updater's own pending delta as committed at `version`:
    /// the baseline advances by the delta (the stored copy already
    /// reflects it) and the pending entry clears.
    pub fn commit_delta(&mut self, table_id: &str, delta: &TableDelta, version: u64) -> Result<()> {
        let baseline = self
            .baselines
            .get_mut(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))?;
        baseline.apply_delta(delta)?;
        self.pending.remove(table_id);
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// Drops the pending entry for `table_id` (delta mode; used when a
    /// propagation turns out to be a no-op).
    pub fn clear_pending(&mut self, table_id: &str) {
        self.pending.remove(table_id);
    }

    /// Snapshot of the pending tracking state (cheap — pending deltas are
    /// small). Paired with [`PeerNode::rollback_writes`] for
    /// transactional rollback of staged writes.
    pub fn pending_snapshot(&self) -> PendingSnapshot {
        PendingSnapshot(self.pending.clone())
    }

    /// Restores a pending-state snapshot.
    pub fn restore_pending(&mut self, snapshot: PendingSnapshot) {
        self.pending = snapshot.0;
    }

    /// Rolls a failed transactional batch back: re-applies the staged
    /// writes' inverse deltas in reverse order — O(changed rows), no
    /// table snapshots in either propagation mode — and restores the
    /// pending-delta tracking captured before staging.
    pub fn rollback_writes(&mut self, inverses: &[(String, TableDelta)], pending: PendingSnapshot) {
        for (table, inverse) in inverses.iter().rev() {
            self.db
                .apply_delta(table, inverse)
                .expect("applying a recorded inverse delta cannot fail");
        }
        self.restore_pending(pending);
    }

    // ----- full-table propagation (the baseline) -----------------------

    /// Refreshes the stored shared copy from the local source (after the
    /// updater's own source edit, Fig. 5 step 1 / step 7). Returns the
    /// changed attributes relative to the previous stored copy.
    pub fn refresh_view(&mut self, table_id: &str) -> Result<BTreeSet<String>> {
        let new_view = self.regenerate_view(table_id)?;
        let old_view = self.db.table(table_id)?;
        let attrs = changed_attrs(old_view, &new_view);
        if !attrs.is_empty() {
            let rows: Vec<Row> = new_view.rows().cloned().collect();
            self.db.apply(table_id, WriteOp::Replace { rows })?;
        }
        Ok(attrs)
    }

    /// Applies a whole shared table received from the updating peer
    /// (Fig. 5 steps 4–5 / 10–11 in full-table mode): verifies the
    /// announced hash, replaces the stored copy, and reflects the change
    /// into the source via `put`.
    pub fn apply_remote_view(
        &mut self,
        table_id: &str,
        new_view: &Table,
        announced_hash: Hash256,
        version: u64,
    ) -> Result<()> {
        if new_view.content_hash() != announced_hash {
            return Err(CoreError::ConsistencyViolation(format!(
                "received `{table_id}` data hashing to {} but contract announced {}",
                new_view.content_hash().short(),
                announced_hash.short()
            )));
        }
        let binding = self.binding(table_id)?.clone();
        // put: reflect the view change into the source.
        let source = self.db.table(&binding.source_table)?;
        let new_source = exec::put(&binding.lens, source, new_view)?;
        let src_rows: Vec<Row> = new_source.rows().cloned().collect();
        self.db
            .apply(&binding.source_table, WriteOp::Replace { rows: src_rows })?;
        // Refresh the stored shared copy and the committed baseline.
        let view_rows: Vec<Row> = new_view.rows().cloned().collect();
        self.db
            .apply(table_id, WriteOp::Replace { rows: view_rows })?;
        self.baselines
            .insert(table_id.to_string(), new_view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// The view as of the last committed version.
    pub fn baseline(&self, table_id: &str) -> Result<&Table> {
        self.baselines
            .get(table_id)
            .ok_or_else(|| CoreError::UnknownShare(table_id.to_string()))
    }

    /// Marks `view` as committed at `version`: replaces the stored shared
    /// copy and the baseline (full-table mode; called on the updater
    /// after the contract accepted its `request_update`).
    pub fn commit_view(&mut self, table_id: &str, view: &Table, version: u64) -> Result<()> {
        self.binding(table_id)?;
        let rows: Vec<Row> = view.rows().cloned().collect();
        self.db.apply(table_id, WriteOp::Replace { rows })?;
        self.baselines.insert(table_id.to_string(), view.clone());
        self.applied_versions.insert(table_id.to_string(), version);
        Ok(())
    }

    /// The Fig. 5 **Step 6** dependency check: other shares of this peer
    /// whose lens footprint (on the same source) overlaps the footprint of
    /// `table_id`'s lens. These are the candidates for cascaded
    /// regeneration.
    pub fn overlapping_shares(&self, table_id: &str) -> Result<Vec<String>> {
        let binding = self.binding(table_id)?;
        let source_schema = self.db.table(&binding.source_table)?.schema().clone();
        let base = analysis::analyze(&binding.lens, &source_schema)?;
        let mut out = Vec::new();
        for (other_id, other_binding) in &self.bindings {
            if other_id == table_id || other_binding.source_table != binding.source_table {
                continue;
            }
            let other = analysis::analyze(&other_binding.lens, &source_schema)?;
            if base.overlaps(&other) {
                out.push(other_id.clone());
            }
        }
        Ok(out)
    }

    /// Allocates the next transaction nonce.
    pub fn take_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// A full snapshot of the peer's database (for revert-on-deny).
    pub fn snapshot(&self) -> Database {
        self.db.clone()
    }

    /// Restores a database snapshot.
    pub fn restore(&mut self, snapshot: Database) {
        self.db = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medledger_bx::LensSpec;
    use medledger_relational::{row, Value};
    use medledger_workload::{fig1_full_records, full_records_schema};

    fn d3_table() -> Table {
        fig1_full_records()
            .project(
                &[
                    "patient_id",
                    "medication_name",
                    "clinical_data",
                    "mechanism_of_action",
                    "dosage",
                ],
                &["patient_id"],
            )
            .expect("D3 projection")
    }

    fn doctor_with_shares_in(mode: PropagationMode) -> PeerNode {
        let mut doctor = PeerNode::new("Doctor", "peer-test", 16, mode);
        doctor.add_source_table("D3", d3_table()).expect("add D3");
        // BX31: share with Patient.
        doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(
                        &["patient_id", "medication_name", "clinical_data", "dosage"],
                        &["patient_id"],
                    ),
                },
            )
            .expect("join D31");
        // BX32: share with Researcher.
        doctor
            .join_share(
                "D23&D32",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["medication_name", "mechanism_of_action"],
                        &["medication_name"],
                    ),
                },
            )
            .expect("join D32");
        doctor
    }

    fn doctor_with_shares() -> PeerNode {
        doctor_with_shares_in(PropagationMode::FullTable)
    }

    #[test]
    fn join_share_materializes_view() {
        let doctor = doctor_with_shares();
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(d31.len(), 2);
        assert_eq!(
            d31.schema().column_names(),
            vec!["patient_id", "medication_name", "clinical_data", "dosage"]
        );
        let d32 = doctor.shared_table("D23&D32").expect("D32");
        assert_eq!(d32.len(), 2);
        assert_eq!(doctor.shares().len(), 2);
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .join_share(
                "D13&D31",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::select(medledger_relational::Predicate::True),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn refresh_view_reports_changed_attrs() {
        let mut doctor = doctor_with_shares();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("stop"))],
                },
            )
            .expect("edit source");
        let attrs = doctor.refresh_view("D13&D31").expect("refresh");
        assert_eq!(attrs.into_iter().collect::<Vec<_>>(), vec!["dosage"]);
        // Stored copy updated.
        let d31 = doctor.shared_table("D13&D31").expect("D31");
        assert_eq!(
            d31.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("stop")
        );
        // No further changes → empty set.
        assert!(doctor.refresh_view("D13&D31").expect("refresh").is_empty());
    }

    #[test]
    fn apply_remote_view_puts_into_source() {
        let mut doctor = doctor_with_shares();
        // Researcher updated MeA1 → MeA1-new in the shared D23&D32.
        let mut new_view = doctor.shared_table("D23&D32").expect("D32").clone();
        new_view
            .update(
                &[Value::text("Ibuprofen")],
                &[("mechanism_of_action", Value::text("MeA1-new"))],
            )
            .expect("edit view");
        let hash = new_view.content_hash();
        doctor
            .apply_remote_view("D23&D32", &new_view, hash, 1)
            .expect("apply");
        // Source D3 reflects the change.
        let d3 = doctor.db.table("D3").expect("D3");
        assert_eq!(
            d3.get(&[Value::Int(188)]).expect("row")[3],
            Value::text("MeA1-new")
        );
        assert_eq!(doctor.applied_versions["D23&D32"], 1);
    }

    #[test]
    fn apply_remote_view_rejects_hash_mismatch() {
        let mut doctor = doctor_with_shares();
        let view = doctor.shared_table("D23&D32").expect("D32").clone();
        let err = doctor
            .apply_remote_view("D23&D32", &view, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
    }

    #[test]
    fn delta_write_shared_tracks_pending_and_siblings() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        let inverses = doctor
            .write_shared(
                "D23&D32",
                WriteOp::Update {
                    key: vec![Value::text("Ibuprofen")],
                    assignments: vec![("mechanism_of_action".into(), Value::text("MeA1-new"))],
                },
            )
            .expect("write shared");
        // The stored copy, the source, and the pending delta all moved.
        assert_eq!(
            doctor
                .shared_table("D23&D32")
                .expect("D32")
                .get(&[Value::text("Ibuprofen")])
                .expect("row")[1],
            Value::text("MeA1-new")
        );
        assert_eq!(
            doctor
                .db
                .table("D3")
                .expect("D3")
                .get(&[Value::Int(188)])
                .expect("row")[3],
            Value::text("MeA1-new")
        );
        let pending = doctor.pending_delta("D23&D32").expect("pending");
        assert_eq!(pending.updates.len(), 1);
        assert!(doctor.has_pending_change("D23&D32").expect("check"));
        // The sibling share's lens does not cover the mechanism → no
        // pending change there.
        assert!(!doctor.has_pending_change("D13&D31").expect("check"));
        // The baseline still matches the last committed state.
        assert_ne!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );

        // Rolling back the inverses restores everything.
        for (table, inv) in inverses.iter().rev() {
            doctor.db.apply_delta(table, inv).expect("rollback");
        }
        doctor.clear_pending("D23&D32");
        assert_eq!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );
    }

    #[test]
    fn delta_remote_apply_advances_baseline_and_stashes_cascades() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // The Researcher retired the Wellbutrin group from the shared
        // D23&D32 — translatable through the project-distinct lens (all
        // group members drop from D3).
        let view_delta = TableDelta {
            deletes: vec![vec![Value::text("Wellbutrin")]],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("translate");
        assert!(!source_delta.is_empty());
        let mut expected = doctor.shared_table("D23&D32").expect("D32").clone();
        expected.apply_delta(&view_delta).expect("expected view");
        doctor
            .apply_remote_delta(
                "D23&D32",
                &view_delta,
                &source_delta,
                expected.content_hash(),
                1,
            )
            .expect("apply");
        assert_eq!(doctor.applied_versions["D23&D32"], 1);
        assert_eq!(
            doctor.shared_hash("D23&D32").expect("hash"),
            doctor.committed_hash("D23&D32").expect("hash")
        );
        // The group delete flowed into D3, and the sibling patient share
        // (whose lens shows patient 189's row) now has a pending cascade
        // delta tracked from the same source delta.
        assert!(doctor
            .db
            .table("D3")
            .expect("D3")
            .get(&[Value::Int(189)])
            .is_none());
        let cascade = doctor.pending_delta("D13&D31").expect("pending");
        assert_eq!(cascade.deletes, vec![vec![Value::Int(189)]]);
        assert!(doctor.has_pending_change("D13&D31").expect("check"));
    }

    #[test]
    fn conflicting_pending_resolves_like_full_table_mode() {
        // A peer carrying an uncommitted local change receives a
        // committed remote update of the same table: the delta-mode
        // conflict path must end byte-identical to full-table mode
        // (remote wins on the view, lens put merges into the source),
        // with pending tracking re-derived from ground truth.
        let mut delta_doc = doctor_with_shares_in(PropagationMode::Delta);
        let mut full_doc = doctor_with_shares_in(PropagationMode::FullTable);

        // Local uncommitted edit: clinical data of 188, which gives the
        // delta doctor a pending entry on the patient share.
        let local_edit = WriteOp::Update {
            key: vec![Value::Int(188)],
            assignments: vec![("clinical_data".into(), Value::text("local-note"))],
        };
        delta_doc
            .write_source("D3", local_edit.clone())
            .expect("delta write");
        assert!(delta_doc.has_pending_change("D13&D31").expect("check"));
        full_doc.db.apply("D3", local_edit).expect("full write");
        full_doc.refresh_view("D13&D31").expect("full refresh");

        // A committed remote update (dosage of 189) built on the
        // *committed* baseline arrives at both.
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::Int(189)],
                row![189i64, "Wellbutrin", "CliD2", "remote-dose"],
            )],
            ..Default::default()
        };
        let mut view_new = delta_doc.baseline("D13&D31").expect("baseline").clone();
        view_new.apply_delta(&view_delta).expect("view");
        let announced = view_new.content_hash();

        let source_delta = delta_doc
            .translate_remote_delta("D13&D31", &view_delta)
            .expect("translate");
        delta_doc
            .apply_remote_delta("D13&D31", &view_delta, &source_delta, announced, 1)
            .expect("delta apply");
        full_doc
            .apply_remote_view("D13&D31", &view_new, announced, 1)
            .expect("full apply");

        // Byte-identical end state across modes, and the delta doctor's
        // stored copy equals what its source regenerates.
        assert_eq!(delta_doc.db.fingerprint(), full_doc.db.fingerprint());
        assert_eq!(
            delta_doc.shared_table("D13&D31").expect("view"),
            &delta_doc.regenerate_view("D13&D31").expect("regen")
        );
        assert!(!delta_doc.has_pending_change("D13&D31").expect("check"));
        delta_doc
            .check_share_integrity("D13&D31", announced)
            .expect("integrity");
    }

    #[test]
    fn delta_remote_apply_rejects_hash_mismatch_without_corruption() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        let before = doctor.shared_hash("D23&D32").expect("hash");
        let view_delta = TableDelta {
            updates: vec![(
                vec![Value::text("Ibuprofen")],
                row!["Ibuprofen", "MeA1-new"],
            )],
            ..Default::default()
        };
        let source_delta = doctor
            .translate_remote_delta("D23&D32", &view_delta)
            .expect("translate");
        let err = doctor
            .apply_remote_delta("D23&D32", &view_delta, &source_delta, Hash256([9; 32]), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ConsistencyViolation(_)));
        assert_eq!(doctor.shared_hash("D23&D32").expect("hash"), before);
    }

    #[test]
    fn prepare_update_delta_falls_back_for_out_of_band_edits() {
        let mut doctor = doctor_with_shares_in(PropagationMode::Delta);
        // Edit the source directly, bypassing write_source tracking.
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![("dosage".into(), Value::text("stop"))],
                },
            )
            .expect("edit source");
        let delta = doctor.prepare_update_delta("D13&D31").expect("prepare");
        assert_eq!(delta.updates.len(), 1);
        // The stored copy caught up and the pending delta is tracked.
        assert_eq!(
            doctor
                .shared_table("D13&D31")
                .expect("D31")
                .get(&[Value::Int(188)])
                .expect("row")[3],
            Value::text("stop")
        );
        assert!(doctor.has_pending_change("D13&D31").expect("check"));
        // Committing the delta advances the baseline and clears pending.
        doctor.commit_delta("D13&D31", &delta, 1).expect("commit");
        assert!(!doctor.has_pending_change("D13&D31").expect("check"));
        assert_eq!(
            doctor.shared_hash("D13&D31").expect("hash"),
            doctor.committed_hash("D13&D31").expect("hash")
        );
    }

    #[test]
    fn step6_overlap_detects_d31_d32_dependency() {
        let doctor = doctor_with_shares();
        // D31 and D32 share `medication_name` on D3.
        assert_eq!(
            doctor.overlapping_shares("D23&D32").expect("overlap"),
            vec!["D13&D31".to_string()]
        );
        assert_eq!(
            doctor.overlapping_shares("D13&D31").expect("overlap"),
            vec!["D23&D32".to_string()]
        );
    }

    #[test]
    fn step6_no_overlap_for_disjoint_lenses() {
        let mut doctor = PeerNode::new("Doctor", "disjoint", 8, PropagationMode::FullTable);
        doctor.add_source_table("D3", d3_table()).expect("add");
        doctor
            .join_share(
                "dose-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project(&["patient_id", "dosage"], &["patient_id"]),
                },
            )
            .expect("join");
        doctor
            .join_share(
                "mech-share",
                PeerBinding {
                    source_table: "D3".into(),
                    lens: LensSpec::project_distinct(
                        &["mechanism_of_action"],
                        &["mechanism_of_action"],
                    ),
                },
            )
            .expect("join");
        assert!(doctor
            .overlapping_shares("dose-share")
            .expect("overlap")
            .is_empty());
    }

    #[test]
    fn write_shared_round_trips_into_source() {
        for mode in [PropagationMode::FullTable, PropagationMode::Delta] {
            let mut doctor = doctor_with_shares_in(mode);
            doctor
                .write_shared(
                    "D13&D31",
                    WriteOp::Update {
                        key: vec![Value::Int(189)],
                        assignments: vec![("dosage".into(), Value::text("50 mg once"))],
                    },
                )
                .expect("write shared");
            let d3 = doctor.db.table("D3").expect("D3");
            assert_eq!(
                d3.get(&[Value::Int(189)]).expect("row")[4],
                Value::text("50 mg once"),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn write_source_rejects_shared_tables() {
        let mut doctor = doctor_with_shares();
        let err = doctor
            .write_source(
                "D13&D31",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadAgreement(_)));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut doctor = doctor_with_shares();
        let snap = doctor.snapshot();
        doctor
            .db
            .apply(
                "D3",
                WriteOp::Delete {
                    key: vec![Value::Int(188)],
                },
            )
            .expect("delete");
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 1);
        doctor.restore(snap);
        assert_eq!(doctor.db.table("D3").expect("D3").len(), 2);
    }

    #[test]
    fn leave_share_cleans_up() {
        let mut doctor = doctor_with_shares();
        doctor.leave_share("D23&D32").expect("leave");
        assert_eq!(doctor.shares(), vec!["D13&D31"]);
        assert!(!doctor.db.has_table("D23&D32"));
        assert!(doctor.leave_share("D23&D32").is_err());
    }

    #[test]
    fn nonce_allocation_is_sequential() {
        let mut p = PeerNode::new("P", "nonce", 4, PropagationMode::Delta);
        assert_eq!(p.take_nonce(), 0);
        assert_eq!(p.take_nonce(), 1);
        assert_eq!(p.take_nonce(), 2);
    }

    #[test]
    fn full_records_schema_available() {
        // Sanity: the workload schema matches what peers expect to split.
        let s = full_records_schema();
        assert_eq!(s.arity(), 7);
        let mut p = PeerNode::new("P", "schema", 4, PropagationMode::Delta);
        p.create_source_table("full", s).expect("create");
        p.db.apply(
            "full",
            WriteOp::Insert {
                row: row![1i64, "m", "c", "a", "d", "me", "mo"],
            },
        )
        .expect("insert");
    }
}
