//! Hand-parsed reader for `ordering_policy.toml` — the TOML subset the
//! policy file actually uses: `[table]` headers, a string-array
//! `orderings` key, and a `"""..."""` multi-line `rationale` key.
//! Anything outside that subset is an error, which doubles as a format
//! lint on the policy file itself.

use std::collections::BTreeMap;

/// One policy entry.
#[derive(Debug, Clone)]
pub struct PolicyEntry {
    /// Atomic-ordering variants the key permits (e.g. `"Acquire"`).
    pub orderings: Vec<String>,
    /// Human rationale; must be non-empty.
    pub rationale: String,
}

/// The parsed policy table, keyed by marker name.
pub type Policy = BTreeMap<String, PolicyEntry>;

const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Parses the policy file contents. Errors carry a line number.
pub fn parse(src: &str) -> Result<Policy, String> {
    let mut policy = Policy::new();
    let mut current: Option<String> = None;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty table name"));
            }
            if policy.contains_key(&name) {
                return Err(format!("line {lineno}: duplicate table [{name}]"));
            }
            policy.insert(
                name.clone(),
                PolicyEntry {
                    orderings: Vec::new(),
                    rationale: String::new(),
                },
            );
            current = Some(name);
            continue;
        }
        let Some(key) = current.clone() else {
            return Err(format!("line {lineno}: key outside any [table]"));
        };
        let entry = policy.get_mut(&key).expect("current table exists");
        if let Some(rest) = line.strip_prefix("orderings") {
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(format!("line {lineno}: expected `orderings = [...]`"));
            };
            let rest = rest.trim();
            let inner = rest
                .strip_prefix('[')
                .and_then(|r| r.strip_suffix(']'))
                .ok_or_else(|| format!("line {lineno}: orderings must be a [..] array"))?;
            for item in inner.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let name = item
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: orderings items must be quoted"))?;
                if !ORDERING_NAMES.contains(&name) {
                    return Err(format!("line {lineno}: `{name}` is not an atomic ordering"));
                }
                entry.orderings.push(name.to_string());
            }
            if entry.orderings.is_empty() {
                return Err(format!("line {lineno}: [{key}] permits no orderings"));
            }
        } else if let Some(rest) = line.strip_prefix("rationale") {
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(format!("line {lineno}: expected `rationale = \"...\"`"));
            };
            let rest = rest.trim();
            if let Some(after) = rest.strip_prefix("\"\"\"") {
                let mut text = String::new();
                if let Some(end) = after.find("\"\"\"") {
                    text.push_str(&after[..end]);
                } else {
                    text.push_str(after);
                    let mut closed = false;
                    for (_, raw) in lines.by_ref() {
                        if let Some(end) = raw.find("\"\"\"") {
                            text.push_str(&raw[..end]);
                            closed = true;
                            break;
                        }
                        text.push_str(raw);
                        text.push('\n');
                    }
                    if !closed {
                        return Err(format!("line {lineno}: unterminated \"\"\" string"));
                    }
                }
                entry.rationale = text.trim().to_string();
            } else if let Some(inner) = rest.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                entry.rationale = inner.trim().to_string();
            } else {
                return Err(format!("line {lineno}: rationale must be a string"));
            }
        } else {
            return Err(format!("line {lineno}: unknown key in [{key}]"));
        }
    }
    for (name, entry) in &policy {
        if entry.orderings.is_empty() {
            return Err(format!("[{name}] is missing `orderings`"));
        }
        if entry.rationale.is_empty() {
            return Err(format!("[{name}] is missing a non-empty `rationale`"));
        }
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let src = "# comment\n[alpha]\norderings = [\"Acquire\", \"Release\"]\nrationale = \"\"\"\nmulti\nline\n\"\"\"\n\n[beta]\norderings = [\"Relaxed\"]\nrationale = \"one line\"\n";
        let p = parse(src).expect("parses");
        assert_eq!(p["alpha"].orderings, vec!["Acquire", "Release"]);
        assert!(p["alpha"].rationale.contains("multi\nline"));
        assert_eq!(p["beta"].rationale, "one line");
    }

    #[test]
    fn rejects_bad_ordering_names() {
        let src = "[a]\norderings = [\"Sequential\"]\nrationale = \"x\"\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_missing_rationale() {
        let src = "[a]\norderings = [\"Relaxed\"]\n";
        assert!(parse(src).is_err());
    }
}
