//! The four lint rules, run over [`super::scan`]ned files:
//!
//! - **unsafe-safety** — every line carrying an `unsafe` token needs a
//!   `SAFETY:` justification (same line or the comment block above).
//! - **ordering-policy** — every non-test `Ordering::` site in
//!   `crates/node` must carry an `// ordering: <key>` marker naming an
//!   entry in `ordering_policy.toml` that permits the variants used.
//! - **unwrap-ban** — no `unwrap()`/`expect(` in non-test code of the
//!   runtime, engine, or persistence layers, except lock-poisoning
//!   chains and sites explicitly marked `// lint: allow(unwrap)`.
//! - **wire-exhaustive** — every `wire::Message` variant appears in
//!   both codec directions, and every `RejectKind`/`CommitError`
//!   variant in the tag maps and the gateway's rejection mapping.

use super::policy::Policy;
use super::scan::Line;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Whether `code` contains `word` with identifier boundaries on both
/// sides.
fn has_token(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Collects the comment text attached to line `i`: its own trailing
/// comment plus the contiguous comment-only block directly above.
fn attached_comments(lines: &[Line], i: usize) -> String {
    let mut text = lines[i].comment.clone();
    let mut j = i;
    while j > 0 && lines[j - 1].is_comment_only() {
        j -= 1;
        text.push('\n');
        text.push_str(&lines[j].comment);
    }
    text
}

// ---------------------------------------------------------------------
// unsafe-safety
// ---------------------------------------------------------------------

/// Flags `unsafe` tokens without a `SAFETY:` justification.
pub fn unsafe_safety(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        // `#![forbid(unsafe_code)]` and friends mention the lint name,
        // not the keyword; `has_token` already rejects `unsafe_code`,
        // but `unsafe fn` declarations and `unsafe impl` still land
        // here on purpose — they need justification too.
        if !attached_comments(lines, i).contains("SAFETY:") {
            findings.push(Finding {
                file: file.to_string(),
                line: line.number,
                rule: "unsafe-safety",
                message: "`unsafe` without a `// SAFETY:` justification on the line or in \
                          the comment block above"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// ordering-policy
// ---------------------------------------------------------------------

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn orderings_on_line(code: &str) -> Vec<&'static str> {
    ORDERING_VARIANTS
        .iter()
        .filter(|v| code.contains(&format!("Ordering::{v}")))
        .copied()
        .collect()
}

/// Flags `Ordering::` sites without a valid `// ordering: <key>`
/// marker, or whose variants the named policy entry does not permit.
pub fn ordering_policy(file: &str, lines: &[Line], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let used = orderings_on_line(&line.code);
        if used.is_empty() {
            continue;
        }
        let comments = attached_comments(lines, i);
        let Some(key) = comments
            .lines()
            .find_map(|c| c.trim().strip_prefix("ordering:"))
            .map(|k| k.trim().to_string())
        else {
            findings.push(Finding {
                file: file.to_string(),
                line: line.number,
                rule: "ordering-policy",
                message: format!(
                    "`Ordering::{}` without an `// ordering: <key>` marker; register the \
                     site in crates/check/ordering_policy.toml",
                    used[0]
                ),
            });
            continue;
        };
        let Some(entry) = policy.get(&key) else {
            findings.push(Finding {
                file: file.to_string(),
                line: line.number,
                rule: "ordering-policy",
                message: format!("marker names unknown policy key `{key}`"),
            });
            continue;
        };
        for v in used {
            if !entry.orderings.iter().any(|o| o == v) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line.number,
                    rule: "ordering-policy",
                    message: format!(
                        "`Ordering::{v}` is not permitted by policy key `{key}` \
                         (allows: {})",
                        entry.orderings.join(", ")
                    ),
                });
            }
        }
    }
    findings
}

/// Returns the policy keys never referenced by any scanned file — a
/// stale table is as misleading as a missing one.
pub fn unused_policy_keys(policy: &Policy, used_keys: &[String]) -> Vec<Finding> {
    policy
        .keys()
        .filter(|k| !used_keys.iter().any(|u| u == *k))
        .map(|k| Finding {
            file: "crates/check/ordering_policy.toml".to_string(),
            line: 0,
            rule: "ordering-policy",
            message: format!("policy key `{k}` is not referenced by any source site"),
        })
        .collect()
}

/// Collects the marker keys a file references (feeds
/// [`unused_policy_keys`]).
pub fn referenced_keys(lines: &[Line]) -> Vec<String> {
    lines
        .iter()
        .filter_map(|l| l.comment.trim().strip_prefix("ordering:"))
        .map(|k| k.trim().to_string())
        .collect()
}

// ---------------------------------------------------------------------
// unwrap-ban
// ---------------------------------------------------------------------

/// Methods whose failure is lock poisoning — a crashed thread already
/// holds the invariant broken, so propagating the panic is the policy.
const POISON_SOURCES: &[&str] = &["lock", "wait", "wait_timeout", "read", "write"];

/// The method call immediately preceding position `at` in `code`
/// (possibly continued from the previous code line when the call chain
/// is line-broken).
fn receiver_method(code: &str, at: usize, prev_code: &str) -> Option<String> {
    let mut before = code[..at].trim_end();
    if before.is_empty() {
        before = prev_code.trim_end();
    }
    let bytes: Vec<char> = before.chars().collect();
    if *bytes.last()? != ')' {
        return None;
    }
    let mut depth = 0i64;
    let mut open = None;
    for (i, c) in bytes.iter().enumerate().rev() {
        match c {
            ')' => depth += 1,
            '(' => {
                depth -= 1;
                if depth == 0 {
                    open = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    let ident: String = bytes[..open]
        .iter()
        .rev()
        .take_while(|c| c.is_alphanumeric() || **c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Flags `.unwrap()` / `.expect(` in non-test code, excepting
/// lock-poisoning chains and explicitly marked sites.
pub fn unwrap_ban(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut sites = Vec::new();
        let mut from = 0;
        while let Some(p) = line.code[from..].find(".unwrap()") {
            sites.push((from + p, ".unwrap()"));
            from += p + 1;
        }
        from = 0;
        while let Some(p) = line.code[from..].find(".expect(") {
            sites.push((from + p, ".expect("));
            from += p + 1;
        }
        if sites.is_empty() {
            continue;
        }
        let allowed_marker = attached_comments(lines, i).contains("lint: allow(unwrap)");
        let prev_code = if i > 0 {
            let mut j = i - 1;
            while j > 0 && lines[j].is_comment_only() {
                j -= 1;
            }
            lines[j].code.clone()
        } else {
            String::new()
        };
        for (at, what) in sites {
            if allowed_marker {
                continue;
            }
            let recv = receiver_method(&line.code, at, &prev_code);
            if recv.as_deref().is_some_and(|m| POISON_SOURCES.contains(&m)) {
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: line.number,
                rule: "unwrap-ban",
                message: format!(
                    "`{what}..` in non-test code: return an error instead, or mark the \
                     site `// lint: allow(unwrap) — <reason>`"
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// wire-exhaustive
// ---------------------------------------------------------------------

/// Extracts variant names of `enum <name>` from scanned lines.
pub fn enum_variants(lines: &[Line], name: &str) -> Option<Vec<String>> {
    let decl = format!("enum {name}");
    let start = lines
        .iter()
        .position(|l| has_token(&l.code, "enum") && l.code.contains(&decl) && !l.in_test)?;
    let mut variants = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for line in &lines[start..] {
        let before = depth;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if !opened {
            continue;
        }
        if before == 1 {
            // Directly inside the enum body: a variant (field lines of
            // struct variants sit at depth 2 and are skipped).
            collect_variant(&line.code, &mut variants);
        } else if before == 0 {
            // The declaration line; a variant may be inlined after the
            // opening brace.
            if let Some((_, after)) = line.code.split_once('{') {
                collect_variant(after, &mut variants);
            }
        }
        if depth <= 0 {
            break;
        }
    }
    Some(variants)
}

fn collect_variant(code: &str, variants: &mut Vec<String>) {
    if code.trim_start().starts_with('#') {
        return;
    }
    // Split on commas outside any nesting, so both one-variant-per-line
    // and single-line `enum K { A, B }` bodies work, while a struct
    // variant's fields stay inside their own braces.
    let mut depth = 0i64;
    let mut segment = String::new();
    let mut segments = Vec::new();
    for c in code.chars() {
        match c {
            '{' | '(' | '[' => depth += 1,
            '}' | ')' | ']' => depth -= 1,
            ',' if depth <= 0 => {
                segments.push(std::mem::take(&mut segment));
                continue;
            }
            _ => {}
        }
        segment.push(c);
    }
    segments.push(segment);
    for seg in segments {
        let ident: String = seg
            .trim()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(ident);
        }
    }
}

/// The index of the first `impl <name>` line (to anchor [`fn_span`]
/// searches to the right type's methods).
pub fn impl_line(lines: &[Line], name: &str) -> Option<usize> {
    let decl = format!("impl {name}");
    lines.iter().position(|l| {
        let t = l.code.trim_start();
        !l.in_test && (t.starts_with(&decl) || t.contains(&format!("impl {name} ")))
    })
}

/// The scanned-line span of `fn <name>`'s body (inclusive indices),
/// searching from line index `from`.
pub fn fn_span(lines: &[Line], name: &str, from: usize) -> Option<(usize, usize)> {
    let decl = format!("fn {name}");
    let start = from
        + lines[from..].iter().position(|l| {
            if l.in_test {
                return false;
            }
            match l.code.find(&decl) {
                Some(p) => {
                    let after = &l.code[p + decl.len()..];
                    after.starts_with('(') || after.starts_with('<')
                }
                None => false,
            }
        })?;
    let mut depth = 0i64;
    let mut opened = false;
    for (off, line) in lines[start..].iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some((start, start + off));
        }
    }
    None
}

/// Asserts every `enum_name::variant` token appears inside the span.
pub fn span_covers(
    file: &str,
    lines: &[Line],
    span: (usize, usize),
    enum_name: &str,
    variants: &[String],
    context: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for v in variants {
        let token = format!("{enum_name}::{v}");
        let found = lines[span.0..=span.1]
            .iter()
            .any(|l| l.code.contains(&token));
        if !found {
            findings.push(Finding {
                file: file.to_string(),
                line: lines[span.0].number,
                rule: "wire-exhaustive",
                message: format!("{context} does not handle `{token}`"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::scan::scan;
    use super::*;

    #[test]
    fn token_boundaries_hold() {
        assert!(has_token("unsafe { }", "unsafe"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_token("not_unsafe()", "unsafe"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let ok = scan("// SAFETY: pointer is valid for 'a\nunsafe { deref(p) }\n");
        assert!(unsafe_safety("f.rs", &ok).is_empty());
        let bad = scan("unsafe { deref(p) }\n");
        assert_eq!(unsafe_safety("f.rs", &bad).len(), 1);
    }

    #[test]
    fn poison_chains_are_allowed() {
        let lines = scan("let g = self.state.lock().expect(\"lock\");\n");
        assert!(unwrap_ban("f.rs", &lines).is_empty());
        let lines = scan("let v = map.get(k).unwrap();\n");
        assert_eq!(unwrap_ban("f.rs", &lines).len(), 1);
    }

    #[test]
    fn allow_marker_suppresses() {
        let lines = scan("// lint: allow(unwrap) — startup only\nlet v = x.parse().unwrap();\n");
        assert!(unwrap_ban("f.rs", &lines).is_empty());
    }

    #[test]
    fn line_broken_expect_uses_previous_line() {
        let lines = scan("let g = self.state.lock()\n    .expect(\"lock\");\n");
        assert!(unwrap_ban("f.rs", &lines).is_empty());
    }

    #[test]
    fn variants_are_extracted() {
        let src = "pub enum Message {\n    /// doc\n    Submit { peer: String },\n    Poll(u64),\n    Shutdown,\n}\n";
        let v = enum_variants(&scan(src), "Message").expect("enum found");
        assert_eq!(v, vec!["Submit", "Poll", "Shutdown"]);
    }

    #[test]
    fn fn_spans_and_coverage() {
        let src = "fn tag(self) -> u8 {\n    match self {\n        Kind::A => 0,\n    }\n}\n";
        let lines = scan(src);
        let span = fn_span(&lines, "tag", 0).expect("span");
        let vars = vec!["A".to_string(), "B".to_string()];
        let fs = span_covers("f.rs", &lines, span, "Kind", &vars, "tag()");
        assert_eq!(fs.len(), 1, "B is unhandled");
        assert!(fs[0].message.contains("Kind::B"));
    }
}
