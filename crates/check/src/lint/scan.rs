//! Line-oriented Rust source scanner: a character-level stripper that
//! classifies every line into code and comment parts (string and
//! comment *contents* blanked from the code view, so token searches
//! can't be fooled by `"unsafe"` in a string literal) and tracks which
//! lines sit inside `#[cfg(test)]` regions.
//!
//! This is deliberately not a parser. The rules it feeds need token
//! presence and comment adjacency, nothing more, and keeping it at the
//! character level means zero dependencies and total transparency about
//! what is and isn't matched.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments removed and string/char literal contents
    /// blanked (quotes kept). Token searches run against this.
    pub code: String,
    /// The comment text on this line (without `//` / block markers),
    /// empty when none.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item or module.
    pub in_test: bool,
}

impl Line {
    /// Whether the line holds no code tokens at all (blank or
    /// comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `src` into classified [`Line`]s.
pub fn scan(src: &str) -> Vec<Line> {
    let stripped = strip(src);
    mark_tests(stripped)
}

/// Pass 1: split each physical line into code and comment parts,
/// blanking string/char contents in the code part.
fn strip(src: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut number = 1usize;
    let mut mode = Mode::Code;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            lines.push(Line {
                number,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            number += 1;
            // Line comments end at the newline; everything else
            // continues.
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    // Consume the rest of the physical line as comment.
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        comment.push(n);
                        chars.next();
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(1);
                }
                '"' => {
                    code.push('"');
                    mode = Mode::Str;
                }
                'r' if matches!(chars.peek(), Some(&'"') | Some(&'#')) => {
                    // Possible raw string: r"..." or r#"..."#. Look
                    // ahead for hashes then a quote.
                    let mut hashes = 0u32;
                    let mut look = chars.clone();
                    while look.peek() == Some(&'#') {
                        hashes += 1;
                        look.next();
                    }
                    if look.peek() == Some(&'"') {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        chars.next(); // the quote
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                    } else {
                        code.push('r');
                    }
                }
                '\'' => {
                    // Lifetime or char literal? A char literal closes
                    // with a quote shortly after; a lifetime is
                    // followed by an identifier and no closing quote.
                    let mut look = chars.clone();
                    let mut is_char = false;
                    let mut seen = 0;
                    while let Some(n) = look.next() {
                        seen += 1;
                        if n == '\\' {
                            look.next();
                            seen += 1;
                            continue;
                        }
                        if n == '\'' {
                            is_char = true;
                            break;
                        }
                        if seen > 2 {
                            break;
                        }
                    }
                    code.push('\'');
                    if is_char {
                        mode = Mode::Char;
                    }
                }
                _ => code.push(c),
            },
            Mode::BlockComment(depth) => match c {
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(depth + 1);
                }
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                }
                _ => comment.push(c),
            },
            Mode::Str => match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    code.push('"');
                    mode = Mode::Code;
                }
                _ => {}
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut look = chars.clone();
                    let mut ok = true;
                    for _ in 0..hashes {
                        if look.next() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        code.push('"');
                        mode = Mode::Code;
                    }
                }
            }
            Mode::Char => {
                if c == '\\' {
                    chars.next();
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            number,
            code,
            comment,
            in_test: false,
        });
    }
    lines
}

/// Pass 2: mark lines covered by a `#[cfg(test)]` attribute — from the
/// attribute through the end of the item it gates (tracked by brace
/// depth).
fn mark_tests(mut lines: Vec<Line>) -> Vec<Line> {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        let is_test_attr = code.starts_with("#[cfg(test)]")
            || code.starts_with("#[cfg(all(test")
            || code.starts_with("#[test]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Everything from here until the gated item closes is test
        // code. Find the first `{`, then run the brace counter to its
        // matching `}` (an attribute gating a brace-less item — e.g. a
        // `use` — ends at the first `;` before any `{`).
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            lines[j].in_test = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => {
                        depth = 0;
                        opened = true; // terminate below
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unsafe { }\"; // unsafe here\nunsafe { real() }\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"), "{}", lines[0].code);
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(lines[1].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "a();\n/* Ordering::Relaxed\nstill comment */ b();\n";
        let lines = scan(src);
        assert!(!lines[1].code.contains("Ordering"));
        assert!(lines[1].comment.contains("Ordering::Relaxed"));
        assert!(lines[2].code.contains("b()"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'q';\nlet n = '\\n';\n";
        let lines = scan(src);
        assert!(lines[0].code.contains("str"), "{}", lines[0].code);
        assert!(!lines[1].code.contains('q'));
        assert!(
            lines[2].code.contains("''")
                || !lines[2].code.contains('n')
                || lines[2].code.contains("let n")
        );
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"Ordering::SeqCst \"quoted\" \"#; f();\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("Ordering"), "{}", lines[0].code);
        assert!(lines[0].code.contains("f()"));
    }
}
