//! The workspace lint engine: scans the repo's Rust sources with the
//! character-level stripper in [`scan`], then applies the rules in
//! [`rules`] with per-rule scopes. [`run_workspace`] is the whole
//! pipeline; the `lint` binary is a thin CLI over it.

pub mod policy;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

pub use rules::Finding;

/// Directories never scanned (third-party or generated).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Files in scope for the unwrap ban: the layers where a stray panic
/// takes down a node or corrupts a recovery path.
fn unwrap_scope(rel: &str) -> bool {
    (rel.starts_with("crates/node/src/") && !rel.starts_with("crates/node/src/bin/"))
        || rel.starts_with("crates/engine/src/")
        || rel == "crates/core/src/persist.rs"
}

/// Recursively collects `.rs` files under `root`, skipping
/// [`SKIP_DIRS`].
fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule over the workspace at `root`. Returns findings
/// (empty = clean); `Err` is an environment problem (unreadable file,
/// malformed policy), not a lint result.
pub fn run_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let policy_path = root.join("crates/check/ordering_policy.toml");
    let policy_src = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let policy =
        policy::parse(&policy_src).map_err(|e| format!("{}: {e}", policy_path.display()))?;

    let mut findings = Vec::new();
    let mut used_keys = Vec::new();

    for path in rust_files(root).map_err(|e| format!("walking {}: {e}", root.display()))? {
        let rel = rel(root, &path);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let lines = scan::scan(&src);

        if rel.starts_with("crates/") {
            findings.extend(rules::unsafe_safety(&rel, &lines));
        }
        if rel.starts_with("crates/node/src/") || rel.starts_with("crates/telemetry/src/") {
            findings.extend(rules::ordering_policy(&rel, &lines, &policy));
            used_keys.extend(rules::referenced_keys(&lines));
        }
        if unwrap_scope(&rel) {
            findings.extend(rules::unwrap_ban(&rel, &lines));
        }
    }

    findings.extend(rules::unused_policy_keys(&policy, &used_keys));
    findings.extend(wire_exhaustive(root)?);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// The wire-protocol exhaustiveness rule: every `Message` variant in
/// both codec directions, every `RejectKind` in both tag maps, and
/// every `CommitError` mapped to a rejection by the gateway.
fn wire_exhaustive(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();

    let wire_path = "crates/node/src/wire.rs";
    let wire_src = std::fs::read_to_string(root.join(wire_path))
        .map_err(|e| format!("cannot read {wire_path}: {e}"))?;
    let wire = scan::scan(&wire_src);

    let messages =
        rules::enum_variants(&wire, "Message").ok_or("wire.rs: enum Message not found")?;
    if messages.is_empty() {
        return Err("wire.rs: enum Message has no variants".to_string());
    }
    let impl_msg = rules::impl_line(&wire, "Message").ok_or("wire.rs: impl Message not found")?;
    for (fn_name, context) in [
        ("encode_into", "Message::encode_into"),
        ("decode_from", "Message::decode_from"),
    ] {
        let span = rules::fn_span(&wire, fn_name, impl_msg)
            .ok_or_else(|| format!("wire.rs: fn {fn_name} not found after impl Message"))?;
        findings.extend(rules::span_covers(
            wire_path, &wire, span, "Message", &messages, context,
        ));
    }

    let rejects =
        rules::enum_variants(&wire, "RejectKind").ok_or("wire.rs: enum RejectKind not found")?;
    let impl_rk =
        rules::impl_line(&wire, "RejectKind").ok_or("wire.rs: impl RejectKind not found")?;
    for (fn_name, context) in [
        ("tag", "RejectKind::tag"),
        ("from_tag", "RejectKind::from_tag"),
    ] {
        let span = rules::fn_span(&wire, fn_name, impl_rk)
            .ok_or_else(|| format!("wire.rs: fn {fn_name} not found after impl RejectKind"))?;
        findings.extend(rules::span_covers(
            wire_path,
            &wire,
            span,
            "RejectKind",
            &rejects,
            context,
        ));
    }

    let facade_path = "crates/core/src/facade.rs";
    let facade_src = std::fs::read_to_string(root.join(facade_path))
        .map_err(|e| format!("cannot read {facade_path}: {e}"))?;
    let commit_errors = rules::enum_variants(&scan::scan(&facade_src), "CommitError")
        .ok_or("facade.rs: enum CommitError not found")?;

    let gw_path = "crates/node/src/gateway.rs";
    let gw_src = std::fs::read_to_string(root.join(gw_path))
        .map_err(|e| format!("cannot read {gw_path}: {e}"))?;
    let gw = scan::scan(&gw_src);
    let span = rules::fn_span(&gw, "to_wire_reject", 0)
        .ok_or("gateway.rs: fn to_wire_reject not found")?;
    findings.extend(rules::span_covers(
        gw_path,
        &gw,
        span,
        "CommitError",
        &commit_errors,
        "to_wire_reject",
    ));
    // And the mapping must also name every RejectKind, so a new kind
    // cannot exist without a producer.
    findings.extend(rules::span_covers(
        gw_path,
        &gw,
        span,
        "RejectKind",
        &rejects,
        "to_wire_reject",
    ));

    Ok(findings)
}
