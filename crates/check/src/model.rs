//! Sequentialized model execution: runs a scenario's threads as real OS
//! threads with exactly one running at a time, handing the "run token"
//! between them at instrumentation points.
//!
//! Each model thread installs a [`SchedHook`] (see
//! [`medledger_node::sched`]) for its lifetime. Every
//! `sched::point(..)` in the code under test becomes a *switch point*:
//! the scheduler picks the next runnable thread, and when more than one
//! is runnable the pick is a recorded [`Decision`] supplied by a
//! [`Strategy`]. Traced-atomic staleness choices flow through the same
//! decision stream, so one decision trace fully determines one
//! execution — the property DFS enumeration and seed replay both rest
//! on.
//!
//! Blocking is modeled, not real: [`block_on`] parks the calling model
//! thread at the scheduler (never the OS), and [`Waker`]s created by it
//! mark the thread runnable again. If no thread is runnable while some
//! are parked, the execution reports a deadlock with each parked
//! thread's last instrumentation label. A global step limit converts
//! livelocks into failures as well.

use std::any::Any;
use std::cell::RefCell;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use medledger_node::sched::{self, SchedHook};

/// One recorded nondeterministic decision: which of `options`
/// alternatives ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// How many alternatives existed at this point.
    pub options: usize,
    /// The alternative taken.
    pub chosen: usize,
}

/// Supplies decisions during one execution. `idx` counts decisions from
/// 0; `options` is always ≥ 2. Implementations must be deterministic
/// functions of their own state for replay to work.
pub trait Strategy: Send {
    /// Picks one of `options` alternatives for decision `idx`.
    fn choose(&mut self, idx: usize, options: usize) -> usize;
}

/// Panic payload used to unwind model threads when an execution aborts
/// (failure elsewhere, or forced stop). Never reported as a failure
/// itself.
struct ModelAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    Running,
    Blocked,
    Done,
}

struct ExecState {
    threads: Vec<TState>,
    /// Wake arrived while the thread was not blocked; consume it at the
    /// thread's next park instead of losing it.
    pending_wake: Vec<bool>,
    /// Last instrumentation label each thread passed (deadlock
    /// diagnostics).
    last_label: Vec<&'static str>,
    strategy: Option<Box<dyn Strategy>>,
    decisions: Vec<Decision>,
    /// Decisions beyond this budget are not recorded (and DFS will not
    /// branch on them); they fall back to deterministic round-robin so
    /// every thread keeps progressing.
    decision_cap: usize,
    overflow: usize,
    steps: usize,
    step_limit: usize,
    failure: Option<String>,
    abort: bool,
    finished: usize,
}

impl ExecState {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn decide(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let idx = self.decisions.len();
        if idx >= self.decision_cap {
            let turn = self.overflow;
            self.overflow += 1;
            return turn % options;
        }
        let chosen = self
            .strategy
            .as_mut()
            .expect("strategy present during execution")
            .choose(idx, options)
            .min(options - 1);
        self.decisions.push(Decision { options, chosen });
        chosen
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }
}

pub(crate) struct Shared {
    mx: Mutex<ExecState>,
    cv: Condvar,
}

impl Shared {
    /// Hands the run token back to the scheduler. With `park` the
    /// calling thread blocks until woken (unless a wake is already
    /// pending); otherwise it stays runnable and may be re-picked
    /// immediately.
    fn switch(&self, me: usize, label: &'static str, park: bool) {
        let mut st = self.mx.lock().expect("model state lock");
        st.last_label[me] = label;
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.steps += 1;
        if st.steps > st.step_limit {
            let limit = st.step_limit;
            st.fail(format!(
                "livelock: exceeded {limit} scheduler steps without completing"
            ));
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if park && !st.pending_wake[me] {
            st.threads[me] = TState::Blocked;
        } else {
            st.pending_wake[me] = false;
            st.threads[me] = TState::Runnable;
        }
        let runnable = st.runnable();
        if runnable.is_empty() {
            // `me` just parked and every other thread is parked or done.
            // All wake sources are model threads, so nothing can ever
            // make progress again: deadlock.
            let parked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == TState::Blocked)
                .map(|(i, _)| format!("t{i}@{}", st.last_label[i]))
                .collect();
            st.fail(format!(
                "deadlock: no runnable thread; parked: [{}]",
                parked.join(", ")
            ));
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        let next = runnable[st.decide(runnable.len())];
        st.threads[next] = TState::Running;
        if next == me {
            return;
        }
        self.cv.notify_all();
        while st.threads[me] != TState::Running {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            st = self.cv.wait(st).expect("model state wait");
        }
    }

    /// Marks a wake for thread `id` (waker fired).
    fn wake(&self, id: usize) {
        let mut st = self.mx.lock().expect("model state lock");
        match st.threads[id] {
            TState::Blocked => st.threads[id] = TState::Runnable,
            TState::Done => {}
            _ => st.pending_wake[id] = true,
        }
    }

    /// Retires thread `me` with its body's result.
    fn finish(&self, me: usize, result: Result<(), Box<dyn Any + Send>>) {
        let mut st = self.mx.lock().expect("model state lock");
        st.threads[me] = TState::Done;
        st.finished += 1;
        if let Err(p) = result {
            if p.downcast_ref::<ModelAbort>().is_none() {
                st.fail(panic_message(p.as_ref()));
            }
        }
        if !st.abort {
            let runnable = st.runnable();
            if !runnable.is_empty() {
                let next = runnable[st.decide(runnable.len())];
                st.threads[next] = TState::Running;
            } else if st.threads.contains(&TState::Blocked) {
                let parked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == TState::Blocked)
                    .map(|(i, _)| format!("t{i}@{}", st.last_label[i]))
                    .collect();
                st.fail(format!(
                    "deadlock: last runnable thread finished; parked: [{}]",
                    parked.join(", ")
                ));
            }
        }
        self.cv.notify_all();
    }
}

struct ModelHook {
    shared: Arc<Shared>,
    id: usize,
}

impl SchedHook for ModelHook {
    fn point(&self, label: &'static str) {
        self.shared.switch(self.id, label, false);
    }

    fn choose(&self, label: &'static str, options: usize) -> usize {
        let mut st = self.shared.mx.lock().expect("model state lock");
        st.last_label[self.id] = label;
        if st.abort {
            // Don't unwind from here: the caller may hold primitive
            // locks. Return a fixed choice; the thread aborts cleanly
            // at its next switch point.
            return 0;
        }
        st.decide(options)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Waker handed to futures driven by [`block_on`]: waking marks the
/// owning model thread runnable at the scheduler.
struct MWaker {
    shared: Arc<Shared>,
    id: usize,
}

impl Wake for MWaker {
    fn wake(self: Arc<Self>) {
        self.shared.wake(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.wake(self.id);
    }
}

/// Drives `fut` to completion on the calling **model** thread, parking
/// at the model scheduler between polls. Panics when called outside a
/// scenario thread.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let (shared, id) = CURRENT
        .with(|c| c.borrow().clone())
        .expect("model::block_on called outside a model thread");
    let waker = Waker::from(Arc::new(MWaker {
        shared: Arc::clone(&shared),
        id,
    }));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => shared.switch(id, "block_on.park", true),
        }
    }
}

/// Installs (once, chained) a panic hook that silences panics from
/// model threads and quiet sections: expected-failure executions would
/// otherwise spam stderr thousands of times per exploration.
fn quiet_model_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let named_model = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("model-"));
            if named_model || QUIET.with(|q| q.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs `f` with the quiet-panic flag set on this thread (used for
/// finale assertions, which run outside model threads).
pub(crate) fn run_quiet<R>(f: impl FnOnce() -> R) -> R {
    quiet_model_panics();
    QUIET.with(|q| q.set(true));
    let r = f();
    QUIET.with(|q| q.set(false));
    r
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The result of one execution.
pub(crate) struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<String>,
    pub strategy: Box<dyn Strategy>,
}

/// Executes `bodies` once under `strategy`, returning the recorded
/// decision trace (the first `decision_cap` decisions), any failure,
/// and the strategy (so DFS can be advanced by the caller).
pub(crate) fn run_one(
    strategy: Box<dyn Strategy>,
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    decision_cap: usize,
) -> RunOutcome {
    quiet_model_panics();
    let n = bodies.len();
    assert!(n > 0, "scenario with no threads");
    let shared = Arc::new(Shared {
        mx: Mutex::new(ExecState {
            threads: vec![TState::Runnable; n],
            pending_wake: vec![false; n],
            last_label: vec!["start"; n],
            strategy: Some(strategy),
            decisions: Vec::new(),
            decision_cap,
            overflow: 0,
            steps: 0,
            step_limit: decision_cap.saturating_mul(8).saturating_add(10_000),
            failure: None,
            abort: false,
            finished: 0,
        }),
        cv: Condvar::new(),
    });
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("model-{i}"))
                .spawn(move || {
                    // Wait for the scheduler to hand this thread the
                    // token for the first time.
                    let started = {
                        let mut st = sh.mx.lock().expect("model state lock");
                        loop {
                            if st.threads[i] == TState::Running {
                                break true;
                            }
                            if st.abort {
                                break false;
                            }
                            st = sh.cv.wait(st).expect("model state wait");
                        }
                    };
                    if started {
                        sched::install(Arc::new(ModelHook {
                            shared: Arc::clone(&sh),
                            id: i,
                        }));
                        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sh), i)));
                        let r = catch_unwind(AssertUnwindSafe(body));
                        CURRENT.with(|c| *c.borrow_mut() = None);
                        sched::uninstall();
                        sh.finish(i, r);
                    } else {
                        sh.finish(i, Ok(()));
                    }
                })
                .expect("spawn model thread")
        })
        .collect();
    // Kick off: the first runner is itself a recorded decision.
    {
        let mut st = shared.mx.lock().expect("model state lock");
        let runnable = st.runnable();
        let first = runnable[st.decide(runnable.len())];
        st.threads[first] = TState::Running;
        shared.cv.notify_all();
    }
    {
        let mut st = shared.mx.lock().expect("model state lock");
        while st.finished < n {
            st = shared.cv.wait(st).expect("model state wait");
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let mut st = shared.mx.lock().expect("model state lock");
    RunOutcome {
        decisions: std::mem::take(&mut st.decisions),
        failure: st.failure.take(),
        strategy: st.strategy.take().expect("strategy returned"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Zeros;
    impl Strategy for Zeros {
        fn choose(&mut self, _idx: usize, _options: usize) -> usize {
            0
        }
    }

    #[test]
    fn threads_all_run_and_finish() {
        let hits = Arc::new(AtomicUsize::new(0));
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..3)
            .map(|_| {
                let h = Arc::clone(&hits);
                Box::new(move || {
                    sched::point("test.step");
                    h.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let out = run_one(Box::new(Zeros), bodies, 64);
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert!(!out.decisions.is_empty());
    }

    #[test]
    fn panics_become_failures() {
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| panic!("scenario invariant violated")),
            Box::new(|| sched::point("test.other")),
        ];
        let out = run_one(Box::new(Zeros), bodies, 64);
        let msg = out.failure.expect("failure recorded");
        assert!(msg.contains("scenario invariant violated"), "{msg}");
    }

    #[test]
    fn lost_wakeup_is_reported_as_deadlock() {
        // A future that parks without ever arranging a wake.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: std::pin::Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| block_on(Never))];
        let out = run_one(Box::new(Zeros), bodies, 64);
        let msg = out.failure.expect("deadlock detected");
        assert!(msg.contains("deadlock"), "{msg}");
    }
}
