//! The scenario library: small concurrent programs over the runtime's
//! real primitives whose invariants the model checker exhausts.
//!
//! Each scenario builds fresh state and returns closures that run as
//! model threads; assertions inside them (or in the post-run `finale`)
//! become checker failures with a replayable schedule. The [`broken`]
//! module carries intentionally-buggy doubles of two primitives — the
//! checker must find their bugs, which is what the regression tests
//! assert (including that replay from the printed seed is
//! deterministic).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use medledger_node::rt::probe::{ExecutorProbe, TaskHandle};
use medledger_node::sched;
use medledger_node::sync::{self, TryRecvError, TrySendError};
use medledger_node::wire;

use crate::model::block_on;

/// A named, rebuildable concurrent program for the checker.
pub struct Scenario {
    /// Stable name (CLI selector, failure reports).
    pub name: &'static str,
    /// Builds fresh state for one execution.
    pub build: fn() -> ScenarioRun,
}

/// One execution's worth of scenario state.
pub struct ScenarioRun {
    /// Model-thread bodies; assertions inside become failures.
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Runs on the host thread after all model threads finish (skipped
    /// if the run already failed); assertions here become failures too.
    pub finale: Option<Box<dyn FnOnce()>>,
}

/// Every production scenario (the `broken` doubles are separate).
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "oneshot-send-take",
            build: oneshot_send_take,
        },
        Scenario {
            name: "oneshot-drop-vs-poll",
            build: oneshot_drop_vs_poll,
        },
        Scenario {
            name: "mpsc-handoff",
            build: mpsc_handoff,
        },
        Scenario {
            name: "mpsc-try-send-vs-recv-drop",
            build: mpsc_try_send_vs_recv_drop,
        },
        Scenario {
            name: "notify-before-wait",
            build: notify_before_wait,
        },
        Scenario {
            name: "pipe-backpressure",
            build: pipe_backpressure,
        },
        Scenario {
            name: "rt-quiescence",
            build: rt_quiescence,
        },
        Scenario {
            name: "rt-wake-vs-park",
            build: rt_wake_vs_park,
        },
        Scenario {
            name: "rt-shutdown",
            build: rt_shutdown,
        },
        Scenario {
            name: "gateway-checkout",
            build: gateway_checkout,
        },
        Scenario {
            name: "telemetry-heatmap",
            build: telemetry_heatmap,
        },
    ]
}

/// Looks a scenario up by name, searching production scenarios first,
/// then the [`broken`] doubles.
pub fn by_name(name: &str) -> Option<Scenario> {
    all()
        .into_iter()
        .chain(broken::all())
        .find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------

/// The value sent through a oneshot arrives exactly once, whether the
/// receiver races in with `try_take` or parks in the future.
fn oneshot_send_take() -> ScenarioRun {
    let (tx, mut rx) = sync::oneshot::<u32>();
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    let got3 = Arc::clone(&got);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                tx.send(7).expect("receiver alive");
            }),
            Box::new(move || {
                let v = match rx.try_take() {
                    Some(v) => v,
                    None => block_on(rx).expect("sender completed before drop"),
                };
                got2.lock().expect("got lock").push(v);
            }),
        ],
        finale: Some(Box::new(move || {
            assert_eq!(
                *got3.lock().expect("got lock"),
                vec![7],
                "oneshot value must arrive exactly once"
            );
        })),
    }
}

/// Dropping the sender resolves a parked receiver with `None` instead
/// of leaving it parked forever.
fn oneshot_drop_vs_poll() -> ScenarioRun {
    let (tx, rx) = sync::oneshot::<u32>();
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                drop(tx);
            }),
            Box::new(move || {
                assert_eq!(block_on(rx), None, "dropped sender must yield None");
            }),
        ],
        finale: None,
    }
}

// ---------------------------------------------------------------------
// bounded mpsc
// ---------------------------------------------------------------------

/// Capacity-1 handoff: three values cross a full/empty boundary each.
/// A lost waker on either side surfaces as a model deadlock; reordering
/// or duplication trips the finale.
fn mpsc_handoff() -> ScenarioRun {
    let (tx, mut rx) = sync::channel::<u32>(1);
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    let got3 = Arc::clone(&got);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                for i in 0..3 {
                    block_on(tx.send(i)).expect("receiver alive");
                }
            }),
            Box::new(move || {
                while let Some(v) = block_on(rx.recv()) {
                    got2.lock().expect("got lock").push(v);
                }
            }),
        ],
        finale: Some(Box::new(move || {
            assert_eq!(
                *got3.lock().expect("got lock"),
                vec![0, 1, 2],
                "handoff must deliver every value in order"
            );
        })),
    }
}

/// `try_send` racing the receiver's drop: `Closed` must be terminal
/// (no `Ok` after it), and whatever the receiver took before dropping
/// must be an in-order prefix.
fn mpsc_try_send_vs_recv_drop() -> ScenarioRun {
    let (tx, mut rx) = sync::channel::<u32>(1);
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    let got3 = Arc::clone(&got);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                let mut closed = false;
                let mut sent = 0u32;
                for _ in 0..64 {
                    match tx.try_send(sent) {
                        Ok(()) => {
                            assert!(!closed, "Ok after Closed: channel came back to life");
                            sent += 1;
                            if sent == 3 {
                                break;
                            }
                        }
                        Err(TrySendError::Full(_)) => sched::point("scn.trysend.retry"),
                        Err(TrySendError::Closed(_)) => closed = true,
                    }
                }
            }),
            Box::new(move || {
                for _ in 0..2 {
                    match rx.try_recv() {
                        Ok(v) => got2.lock().expect("got lock").push(v),
                        Err(TryRecvError::Empty) => sched::point("scn.tryrecv.retry"),
                        Err(TryRecvError::Closed) => break,
                    }
                }
                drop(rx);
            }),
        ],
        finale: Some(Box::new(move || {
            let got = got3.lock().expect("got lock");
            let prefix: Vec<u32> = (0..got.len() as u32).collect();
            assert_eq!(*got, prefix, "receiver must see an in-order prefix");
        })),
    }
}

// ---------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------

/// The historical `Notify` bug class, driven through the canonical
/// create-future / check-condition / await pattern: because the
/// generation is captured at `notified()` (not at first poll), a notify
/// landing between the condition check and the await still resolves the
/// future. The [`broken::all`] double captures at first poll instead
/// and deadlocks under exactly that interleaving.
fn notify_before_wait() -> ScenarioRun {
    let n = sync::Notify::new();
    let n2 = n.clone();
    let ready = Arc::new(AtomicBool::new(false));
    let ready2 = Arc::clone(&ready);
    ScenarioRun {
        threads: vec![
            Box::new(move || loop {
                let fut = n.notified();
                sched::point("scn.notified.gap");
                if ready.load(Ordering::SeqCst) {
                    break;
                }
                block_on(fut);
            }),
            Box::new(move || {
                ready2.store(true, Ordering::SeqCst);
                n2.notify_waiters();
            }),
        ],
        finale: None,
    }
}

// ---------------------------------------------------------------------
// pipe
// ---------------------------------------------------------------------

/// A 16-byte write through a 4-byte pipe: backpressure forces repeated
/// park/wake handoffs in both directions; a lost waker deadlocks the
/// model, and the finale checks the bytes crossed intact.
fn pipe_backpressure() -> ScenarioRun {
    let (mut w, mut r) = wire::pipe(4);
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    let got3 = Arc::clone(&got);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                let data: Vec<u8> = (0..16).collect();
                block_on(w.write_all(&data)).expect("reader alive");
            }),
            Box::new(move || {
                let mut buf = [0u8; 16];
                assert!(
                    matches!(block_on(r.read_exact(&mut buf)), Ok(true)),
                    "full frame must arrive"
                );
                got2.lock().expect("got lock").extend_from_slice(&buf);
                let mut one = [0u8; 1];
                assert!(
                    matches!(block_on(r.read_exact(&mut one)), Ok(false)),
                    "writer drop must read as clean EOF"
                );
            }),
        ],
        finale: Some(Box::new(move || {
            let want: Vec<u8> = (0..16).collect();
            assert_eq!(
                *got3.lock().expect("got lock"),
                want,
                "bytes must cross intact"
            );
        })),
    }
}

// ---------------------------------------------------------------------
// executor (via rt::probe)
// ---------------------------------------------------------------------

/// Future that yields a switch point mid-poll, then records completion.
struct MidPoint {
    done: Arc<AtomicUsize>,
}

impl std::future::Future for MidPoint {
    type Output = ();
    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        // The window: the executor has dequeued this task (queue empty,
        // active == 1) but the completion below has not happened yet.
        sched::point("scn.task.mid");
        self.done.fetch_add(1, Ordering::SeqCst);
        std::task::Poll::Ready(())
    }
}

/// `is_quiescent()` must never report quiescence while a spawned task
/// is still mid-poll. This is the scenario that catches the seeded
/// `order-mutant` build: a `Relaxed` load of the `active` counter can
/// observe a stale zero inside `MidPoint`'s window.
fn rt_quiescence() -> ScenarioRun {
    let probe = Arc::new(ExecutorProbe::new());
    let probe2 = Arc::clone(&probe);
    let done = Arc::new(AtomicUsize::new(0));
    let done2 = Arc::clone(&done);
    let spawned = Arc::new(AtomicBool::new(false));
    let spawned2 = Arc::clone(&spawned);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                let _handle = probe.spawn(MidPoint { done });
                spawned.store(true, Ordering::SeqCst);
                probe.poll_task();
            }),
            Box::new(move || {
                for _ in 0..4 {
                    sched::point("scn.quiescence.check");
                    if spawned2.load(Ordering::SeqCst) && probe2.is_quiescent() {
                        assert!(
                            done2.load(Ordering::SeqCst) >= 1,
                            "quiescent while the spawned task is still mid-poll"
                        );
                    }
                }
            }),
        ],
        finale: None,
    }
}

/// Future that parks on a flag with the check/register/recheck protocol
/// (the recheck closes the set-flag-before-waker-stored race).
struct FlagFuture {
    flag: Arc<AtomicBool>,
}

impl std::future::Future for FlagFuture {
    type Output = ();
    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if self.flag.load(Ordering::SeqCst) {
            return std::task::Poll::Ready(());
        }
        // The executor's task state machine is the waker here: the
        // peer calls `TaskHandle::wake` after setting the flag, so a
        // RUNNING task re-enqueues via RESCHEDULED. The recheck covers
        // a flag set during this poll but before the wake.
        sched::point("scn.flag.recheck");
        if self.flag.load(Ordering::SeqCst) {
            return std::task::Poll::Ready(());
        }
        std::task::Poll::Pending
    }
}

/// A wake racing the task going idle must never be lost: afterwards the
/// task has either completed or is back on the queue.
fn rt_wake_vs_park() -> ScenarioRun {
    let probe = Arc::new(ExecutorProbe::new());
    let probe3 = Arc::clone(&probe);
    let flag = Arc::new(AtomicBool::new(false));
    let flag2 = Arc::clone(&flag);
    let handle: Arc<Mutex<Option<Arc<TaskHandle>>>> = Arc::new(Mutex::new(None));
    let handle2 = Arc::clone(&handle);
    let handle3 = Arc::clone(&handle);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                let h = Arc::new(probe.spawn(FlagFuture { flag }));
                *handle.lock().expect("handle lock") = Some(Arc::clone(&h));
                for _ in 0..6 {
                    if h.is_complete() {
                        break;
                    }
                    probe.poll_task();
                    sched::point("scn.poller.loop");
                }
            }),
            Box::new(move || {
                flag2.store(true, Ordering::SeqCst);
                sched::point("scn.waker.gap");
                let h = handle2.lock().expect("handle lock").clone();
                if let Some(h) = h {
                    h.wake();
                }
            }),
        ],
        finale: Some(Box::new(move || {
            let h = handle3.lock().expect("handle lock").clone();
            if let Some(h) = h {
                assert!(
                    h.is_complete() || probe3.queued() > 0,
                    "wake was lost: task neither complete nor queued"
                );
            }
        })),
    }
}

/// After shutdown is observed on a thread, that thread must never be
/// handed another task (the steal-vs-shutdown race).
fn rt_shutdown() -> ScenarioRun {
    let probe = Arc::new(ExecutorProbe::new());
    let probe2 = Arc::clone(&probe);
    let done = Arc::new(AtomicUsize::new(0));
    let done2 = Arc::clone(&done);
    let done3 = Arc::clone(&done);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                for _ in 0..2 {
                    let d = Arc::clone(&done);
                    probe.spawn(async move {
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                    sched::point("scn.spawner.loop");
                    probe.poll_task();
                }
            }),
            Box::new(move || {
                probe2.begin_shutdown();
                let before = done2.load(Ordering::SeqCst);
                assert!(
                    !probe2.poll_task(),
                    "task handed out after this thread initiated shutdown"
                );
                assert!(
                    done2.load(Ordering::SeqCst) >= before,
                    "completion count moved backwards"
                );
            }),
        ],
        finale: Some(Box::new(move || {
            assert!(
                done3.load(Ordering::SeqCst) <= 2,
                "more completions than spawned tasks"
            );
        })),
    }
}

// ---------------------------------------------------------------------
// gateway pump model
// ---------------------------------------------------------------------

/// The gateway's Checkout/Checkin pump in miniature: two peers request
/// a wave over a capacity-1 line, the pump serves one at a time and
/// acks over a oneshot. The lent flag asserts mutual exclusion across
/// the pump's switch point; lost wakers anywhere in the chain deadlock.
fn gateway_checkout() -> ScenarioRun {
    let (req_tx, mut req_rx) = sync::channel::<(u32, sync::OneSender<u32>)>(1);
    let req_tx2 = req_tx.clone();
    let served = Arc::new(AtomicUsize::new(0));
    let served2 = Arc::clone(&served);
    let served3 = Arc::clone(&served);
    let lent = Arc::new(AtomicBool::new(false));
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                for wave in 0..2u32 {
                    let (peer, ack) = block_on(req_rx.recv()).expect("peers alive");
                    assert!(
                        !lent.swap(true, Ordering::SeqCst),
                        "wave checked out twice concurrently"
                    );
                    sched::point("scn.gateway.lend");
                    lent.store(false, Ordering::SeqCst);
                    served2.fetch_add(1, Ordering::SeqCst);
                    let _ = peer;
                    let _ = ack.send(wave);
                }
            }),
            Box::new(move || {
                let (ack_tx, ack_rx) = sync::oneshot::<u32>();
                assert!(block_on(req_tx.send((0, ack_tx))).is_ok(), "pump alive");
                assert!(block_on(ack_rx).is_some(), "pump must ack peer 0");
            }),
            Box::new(move || {
                let (ack_tx, ack_rx) = sync::oneshot::<u32>();
                assert!(block_on(req_tx2.send((1, ack_tx))).is_ok(), "pump alive");
                assert!(block_on(ack_rx).is_some(), "pump must ack peer 1");
            }),
        ],
        finale: Some(Box::new(move || {
            assert_eq!(
                served3.load(Ordering::SeqCst),
                2,
                "pump must serve both peers"
            );
        })),
    }
}

// ---------------------------------------------------------------------
// telemetry heat-map slot claiming
// ---------------------------------------------------------------------

/// The telemetry heat map's claim protocol in miniature: two slots
/// whose owner tags are claimed once by CAS (0 → key tag), then counts
/// attributed with relaxed adds — the exact state machine of
/// `medledger_telemetry::HeatMap::record` (see the `heat-slot-tag` /
/// `heat-slot-claim` keys in ordering_policy.toml), rebuilt over traced
/// atomics so the checker owns every interleaving.
struct MiniHeat {
    tags: [sched::TracedAtomicU64; 2],
    counts: [sched::TracedAtomicU64; 2],
    overflow: sched::TracedAtomicU64,
}

impl MiniHeat {
    fn new() -> Self {
        MiniHeat {
            tags: [
                sched::TracedAtomicU64::new("scn.heat.tag0", 0),
                sched::TracedAtomicU64::new("scn.heat.tag1", 0),
            ],
            counts: [
                sched::TracedAtomicU64::new("scn.heat.count0", 0),
                sched::TracedAtomicU64::new("scn.heat.count1", 0),
            ],
            overflow: sched::TracedAtomicU64::new("scn.heat.overflow", 0),
        }
    }

    /// Mirrors the production probe/claim/attribute path: linear probe
    /// from the tag's home slot, claim an empty slot with an AcqRel
    /// CAS, recover from a lost race iff the winner was our own key,
    /// and tally loudly in `overflow` when every slot is foreign.
    fn record(&self, tag: u64, n: u64) {
        let start = (tag % self.tags.len() as u64) as usize;
        for probe in 0..self.tags.len() {
            let slot = (start + probe) % self.tags.len();
            sched::point("scn.heat.probe");
            let owner = self.tags[slot].load(Ordering::Acquire);
            let claimed = owner == tag
                || (owner == 0
                    && match self.tags[slot].compare_exchange(
                        0,
                        tag,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => true,
                        Err(actual) => actual == tag,
                    });
            if claimed {
                self.counts[slot].fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        self.overflow.fetch_add(n, Ordering::Relaxed);
    }
}

/// Two threads hammer three keys into the two-slot map, all claims
/// racing. Whatever the interleaving decides about who wins which
/// slot, the finale's invariants must hold: every recorded event is
/// conserved (slot tallies + overflow), each slot is owned by at most
/// one key, and no key owns two slots.
fn telemetry_heatmap() -> ScenarioRun {
    // Tags 1 and 3 share home slot 1; tag 2 homes at slot 0. With two
    // slots and three keys, one key's records must spill to overflow —
    // which one depends on the schedule, conservation never does.
    let map = Arc::new(MiniHeat::new());
    let map2 = Arc::clone(&map);
    let map3 = Arc::clone(&map);
    ScenarioRun {
        threads: vec![
            Box::new(move || {
                map.record(1, 2);
                map.record(2, 1);
            }),
            Box::new(move || {
                map2.record(2, 2);
                map2.record(3, 1);
            }),
        ],
        finale: Some(Box::new(move || {
            let tags = [
                map3.tags[0].load(Ordering::SeqCst),
                map3.tags[1].load(Ordering::SeqCst),
            ];
            let counts = [
                map3.counts[0].load(Ordering::SeqCst),
                map3.counts[1].load(Ordering::SeqCst),
            ];
            let overflow = map3.overflow.load(Ordering::SeqCst);
            assert_eq!(
                counts.iter().sum::<u64>() + overflow,
                6,
                "every recorded event lands in exactly one tally"
            );
            for (slot, &tag) in tags.iter().enumerate() {
                assert!(tag <= 3, "slot {slot} owned by unknown tag {tag}");
                // A claimed slot holds exactly its key's recorded total
                // (keys 1/2/3 record 2/3/1 events): slots never change
                // owner, and a key that owns a slot routed every one of
                // its records there. Misattribution — the bug an
                // overwriting non-CAS claim would introduce — breaks
                // this even when conservation holds.
                let expected = match tag {
                    0 => 0,
                    1 => 2,
                    2 => 3,
                    _ => 1,
                };
                assert_eq!(
                    counts[slot], expected,
                    "slot {slot} owned by tag {tag} must hold exactly \
                     that key's events"
                );
            }
            assert!(
                tags[0] == 0 || tags[0] != tags[1],
                "one key claimed both slots"
            );
        })),
    }
}

// ---------------------------------------------------------------------
// intentionally broken doubles
// ---------------------------------------------------------------------

/// Buggy primitive doubles the checker must catch. These back the
/// regression tests: each scenario here has a schedule the checker
/// finds (and replays deterministically from its printed seed/trace).
pub mod broken {
    use super::*;
    use std::pin::Pin;
    use std::task::{Context, Poll, Waker};

    /// Both broken scenarios.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "broken-notify",
                build: broken_notify,
            },
            Scenario {
                name: "broken-channel",
                build: broken_channel,
            },
        ]
    }

    struct BNotifyState {
        generation: u64,
        wakers: Vec<Waker>,
    }

    /// `Notify` double with the historical bug: the generation is
    /// captured at **first poll** instead of at `notified()`, so a
    /// notify landing in between is invisible and the waiter parks
    /// forever.
    #[derive(Clone)]
    struct BrokenNotify {
        state: Arc<Mutex<BNotifyState>>,
    }

    impl BrokenNotify {
        fn new() -> Self {
            BrokenNotify {
                state: Arc::new(Mutex::new(BNotifyState {
                    generation: 0,
                    wakers: Vec::new(),
                })),
            }
        }

        fn notified(&self) -> BrokenNotified {
            sched::point("scn.bnotify.notified");
            BrokenNotified {
                state: Arc::clone(&self.state),
                observed: None,
            }
        }

        fn notify_waiters(&self) {
            sched::point("scn.bnotify.notify");
            let wakers: Vec<Waker> = {
                let mut s = self.state.lock().expect("bnotify lock");
                s.generation += 1;
                s.wakers.drain(..).collect()
            };
            for w in wakers {
                w.wake();
            }
        }
    }

    struct BrokenNotified {
        state: Arc<Mutex<BNotifyState>>,
        observed: Option<u64>,
    }

    impl std::future::Future for BrokenNotified {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            sched::point("scn.bnotify.poll");
            let this = self.get_mut();
            let mut s = this.state.lock().expect("bnotify lock");
            // BUG: first poll adopts whatever generation exists *now*.
            let observed = *this.observed.get_or_insert(s.generation);
            if s.generation != observed {
                return Poll::Ready(());
            }
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }

    fn broken_notify() -> ScenarioRun {
        let n = BrokenNotify::new();
        let n2 = n.clone();
        let ready = Arc::new(AtomicBool::new(false));
        let ready2 = Arc::clone(&ready);
        ScenarioRun {
            threads: vec![
                Box::new(move || {
                    // Same canonical pattern as `notify-before-wait`;
                    // with first-poll capture the notify can land in
                    // the window between the `ready` check and the
                    // first poll, and the waiter parks forever.
                    loop {
                        let fut = n.notified();
                        sched::point("scn.bnotify.gap");
                        if ready.load(Ordering::SeqCst) {
                            break;
                        }
                        block_on(fut);
                    }
                }),
                Box::new(move || {
                    ready2.store(true, Ordering::SeqCst);
                    n2.notify_waiters();
                }),
            ],
            finale: None,
        }
    }

    struct BChanState {
        queue: Vec<u32>,
        capacity: usize,
        send_waker: Option<Waker>,
        receiver_alive: bool,
    }

    /// Bounded-channel double whose receiver drop forgets to wake a
    /// parked sender — the exact waker-loss class the real channel's
    /// `Drop` handles.
    struct BrokenChan {
        state: Arc<Mutex<BChanState>>,
    }

    struct BrokenReceiver {
        state: Arc<Mutex<BChanState>>,
    }

    impl Drop for BrokenReceiver {
        fn drop(&mut self) {
            sched::point("scn.bchan.recv.drop");
            let mut s = self.state.lock().expect("bchan lock");
            s.receiver_alive = false;
            // BUG: a parked sender's waker is left in place, never
            // fired: the sender stays parked forever.
        }
    }

    struct BSend<'a> {
        chan: &'a BrokenChan,
        value: u32,
    }

    impl std::future::Future for BSend<'_> {
        type Output = Result<(), u32>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<(), u32>> {
            sched::point("scn.bchan.send.poll");
            let mut s = self.chan.state.lock().expect("bchan lock");
            if !s.receiver_alive {
                return Poll::Ready(Err(self.value));
            }
            if s.queue.len() < s.capacity {
                let v = self.value;
                s.queue.push(v);
                return Poll::Ready(Ok(()));
            }
            s.send_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    fn broken_channel() -> ScenarioRun {
        let state = Arc::new(Mutex::new(BChanState {
            queue: Vec::new(),
            capacity: 1,
            send_waker: None,
            receiver_alive: true,
        }));
        let chan = BrokenChan {
            state: Arc::clone(&state),
        };
        let rx = BrokenReceiver { state };
        ScenarioRun {
            threads: vec![
                Box::new(move || {
                    // Second send parks once the capacity-1 queue is
                    // full; only the receiver (which never drains and
                    // then drops without waking) could release it.
                    let _ = block_on(BSend {
                        chan: &chan,
                        value: 1,
                    });
                    let _ = block_on(BSend {
                        chan: &chan,
                        value: 2,
                    });
                }),
                Box::new(move || {
                    sched::point("scn.bchan.drop.gap");
                    drop(rx);
                }),
            ],
            finale: None,
        }
    }
}
