//! Schedule exploration: bounded exhaustive DFS over decision traces,
//! topped up with seeded random sampling, plus deterministic replay of
//! a failing schedule from either its decision trace or its seed.

use std::collections::HashSet;
use std::fmt;

use crate::model::{self, Decision, Strategy};
use crate::rng::{mix, SplitMix64};
use crate::scenarios::Scenario;

/// DFS strategy: replays a fixed decision prefix, then takes choice 0
/// for every new decision. Backtracking happens between executions via
/// [`advance`].
struct Dfs {
    prefix: Vec<Decision>,
}

impl Strategy for Dfs {
    fn choose(&mut self, idx: usize, _options: usize) -> usize {
        self.prefix.get(idx).map_or(0, |d| d.chosen)
    }
}

/// Seeded random strategy.
struct RandomWalk {
    rng: SplitMix64,
}

impl Strategy for RandomWalk {
    fn choose(&mut self, _idx: usize, options: usize) -> usize {
        self.rng.below(options)
    }
}

/// Fixed-trace replay strategy (choice 0 beyond the trace, like DFS).
struct Replay {
    trace: Vec<usize>,
}

impl Strategy for Replay {
    fn choose(&mut self, idx: usize, _options: usize) -> usize {
        self.trace.get(idx).copied().unwrap_or(0)
    }
}

/// Advances a recorded decision trace to the lexicographically next
/// unexplored one: bump the last decision that still has an untried
/// alternative, drop everything after it. Returns `false` when the
/// space is exhausted.
fn advance(trace: &mut Vec<Decision>) -> bool {
    while let Some(last) = trace.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        trace.pop();
    }
    false
}

fn fingerprint(decisions: &[Decision]) -> u64 {
    let mut acc = 0xD1F0_5EED_u64;
    for d in decisions {
        acc = mix(acc, (d.options as u64) << 32 | d.chosen as u64);
    }
    acc
}

/// A failing schedule, replayable two ways.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Scenario that failed.
    pub scenario: &'static str,
    /// What went wrong (assertion message, deadlock report, livelock).
    pub message: String,
    /// The recorded decision trace (chosen indices, in order).
    pub trace: Vec<usize>,
    /// Seed that reproduces it via random walk, if found by sampling.
    pub seed: Option<u64>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario `{}` failed: {}", self.scenario, self.message)?;
        let trace = self
            .trace
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".");
        writeln!(
            f,
            "  trace: {}",
            if trace.is_empty() { "(empty)" } else { &trace }
        )?;
        if let Some(seed) = self.seed {
            writeln!(f, "  seed:  {seed:#x}")?;
            write!(
                f,
                "  replay: cargo run -p medledger-check --bin modelcheck -- \
                 --scenario {} --replay-seed {seed:#x}",
                self.scenario
            )
        } else {
            write!(
                f,
                "  replay: cargo run -p medledger-check --bin modelcheck -- \
                 --scenario {} --replay-trace {}",
                self.scenario,
                if trace.is_empty() { "0" } else { &trace }
            )
        }
    }
}

/// Exploration results for one scenario.
#[derive(Debug)]
pub struct Outcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// Executions actually run (DFS + random).
    pub executions: usize,
    /// Distinct decision traces observed (trace fingerprints).
    pub distinct: usize,
    /// Whether DFS exhausted the whole bounded space.
    pub exhausted: bool,
    /// First failure found, if any.
    pub failure: Option<Failure>,
}

/// Exploration budget and seed for one scenario.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    /// Max DFS executions before switching to sampling.
    pub max_dfs: usize,
    /// Random-walk executions after (or instead of) DFS.
    pub max_samples: usize,
    /// Decision budget per execution; later decisions use deterministic
    /// round-robin and are not branched on.
    pub max_decisions: usize,
    /// Base seed for the sampling phase.
    pub seed: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_dfs: 400,
            max_samples: 200,
            max_decisions: 40,
            seed: 0x1CDE_2019,
        }
    }
}

impl Checker {
    fn run_with(
        &self,
        sc: &Scenario,
        strategy: Box<dyn Strategy>,
    ) -> (Vec<Decision>, Option<String>, Box<dyn Strategy>) {
        let run = (sc.build)();
        let out = model::run_one(strategy, run.threads, self.max_decisions);
        let mut failure = out.failure;
        if failure.is_none() {
            if let Some(finale) = run.finale {
                let r = model::run_quiet(|| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(finale))
                });
                if let Err(p) = r {
                    failure = Some(format!("finale: {}", panic_text(p.as_ref())));
                }
            }
        }
        (out.decisions, failure, out.strategy)
    }

    /// Explores `sc`: bounded-exhaustive DFS first, then seeded random
    /// top-up. Stops at the first failure.
    pub fn check(&self, sc: &Scenario) -> Outcome {
        let mut fingerprints = HashSet::new();
        let mut executions = 0usize;
        let mut exhausted = false;

        // Phase 1: DFS over the bounded decision space.
        let mut prefix: Vec<Decision> = Vec::new();
        loop {
            if executions >= self.max_dfs {
                break;
            }
            let strategy = Box::new(Dfs {
                prefix: prefix.clone(),
            });
            let (decisions, failure, _) = self.run_with(sc, strategy);
            executions += 1;
            fingerprints.insert(fingerprint(&decisions));
            if let Some(message) = failure {
                return Outcome {
                    scenario: sc.name,
                    executions,
                    distinct: fingerprints.len(),
                    exhausted: false,
                    failure: Some(Failure {
                        scenario: sc.name,
                        message,
                        trace: decisions.iter().map(|d| d.chosen).collect(),
                        seed: None,
                    }),
                };
            }
            prefix = decisions;
            if !advance(&mut prefix) {
                exhausted = true;
                break;
            }
        }

        // Phase 2: seeded random sampling (skipped when DFS already
        // covered everything).
        if !exhausted {
            for k in 0..self.max_samples {
                let seed = mix(self.seed, k as u64);
                let strategy = Box::new(RandomWalk {
                    rng: SplitMix64::new(seed),
                });
                let (decisions, failure, _) = self.run_with(sc, strategy);
                executions += 1;
                fingerprints.insert(fingerprint(&decisions));
                if let Some(message) = failure {
                    return Outcome {
                        scenario: sc.name,
                        executions,
                        distinct: fingerprints.len(),
                        exhausted: false,
                        failure: Some(Failure {
                            scenario: sc.name,
                            message,
                            trace: decisions.iter().map(|d| d.chosen).collect(),
                            seed: Some(seed),
                        }),
                    };
                }
            }
        }

        Outcome {
            scenario: sc.name,
            executions,
            distinct: fingerprints.len(),
            exhausted,
            failure: None,
        }
    }

    /// Replays one execution from an explicit decision trace. Returns
    /// the failure, if the trace still produces one.
    pub fn replay_trace(&self, sc: &Scenario, trace: &[usize]) -> Option<Failure> {
        let strategy = Box::new(Replay {
            trace: trace.to_vec(),
        });
        let (decisions, failure, _) = self.run_with(sc, strategy);
        failure.map(|message| Failure {
            scenario: sc.name,
            message,
            trace: decisions.iter().map(|d| d.chosen).collect(),
            seed: None,
        })
    }

    /// Replays one execution from a sampling seed (the exact seed
    /// printed by a [`Failure`], not the base seed).
    pub fn replay_seed(&self, sc: &Scenario, seed: u64) -> Option<Failure> {
        let strategy = Box::new(RandomWalk {
            rng: SplitMix64::new(seed),
        });
        let (decisions, failure, _) = self.run_with(sc, strategy);
        failure.map(|message| Failure {
            scenario: sc.name,
            message,
            trace: decisions.iter().map(|d| d.chosen).collect(),
            seed: Some(seed),
        })
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_enumerates_lexicographically() {
        let mut t = vec![
            Decision {
                options: 2,
                chosen: 0,
            },
            Decision {
                options: 3,
                chosen: 2,
            },
        ];
        assert!(advance(&mut t));
        assert_eq!(
            t,
            vec![Decision {
                options: 2,
                chosen: 1
            }],
            "exhausted tail popped, previous decision bumped"
        );
        assert!(!advance(&mut vec![Decision {
            options: 2,
            chosen: 1
        }]));
    }

    #[test]
    fn fingerprint_distinguishes_traces() {
        let a = [Decision {
            options: 2,
            chosen: 0,
        }];
        let b = [Decision {
            options: 2,
            chosen: 1,
        }];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a));
    }
}
