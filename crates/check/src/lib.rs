//! Correctness tooling for the medledger workspace.
//!
//! Two instruments, one crate:
//!
//! 1. **A deterministic concurrency model checker** ([`model`],
//!    [`explore`], [`scenarios`]): runs small concurrent programs over
//!    the runtime's *real* primitives (`medledger_node::{rt, sync,
//!    wire}`) with exactly one thread running at a time, exploring
//!    interleavings by bounded-exhaustive DFS plus seeded random
//!    sampling. Failures print a decision trace and a seed; both replay
//!    the exact schedule. The `modelcheck` binary drives it in CI.
//!
//! 2. **A workspace lint engine** ([`lint`]): hand-rolled token
//!    scanning (no syntax-tree dependency) enforcing the rules the
//!    compiler can't — every `unsafe` block justifies itself with a
//!    `SAFETY:` comment, every `Ordering::` site in `crates/node` is
//!    registered in `ordering_policy.toml`, `unwrap`/`expect` stay out
//!    of non-test hot paths, and the wire protocol's `Message` enum is
//!    handled exhaustively at every dispatch. The `lint` binary drives
//!    it in CI.
//!
//! Both exist because the runtime is hand-rolled: no executor crate,
//! no atomics library, no fuzzer is watching these invariants for us.
//!
//! ```
//! use medledger_check::{explore::Checker, scenarios};
//!
//! let sc = scenarios::by_name("oneshot-drop-vs-poll").expect("known scenario");
//! let outcome = Checker {
//!     max_dfs: 50,
//!     max_samples: 0,
//!     max_decisions: 24,
//!     seed: 1,
//! }
//! .check(&sc);
//! assert!(outcome.failure.is_none());
//! assert!(outcome.executions > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod lint;
pub mod model;
pub mod rng;
pub mod scenarios;

pub use explore::{Checker, Failure, Outcome};
pub use scenarios::Scenario;
