//! Workspace lint CLI. Run from anywhere inside the repo:
//!
//! ```text
//! cargo run -p medledger-check --bin lint
//! ```
//!
//! Exits 0 when clean, 1 with one finding per line otherwise, 2 on
//! environment errors (unreadable files, malformed policy).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // The manifest dir is crates/check; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}

fn main() {
    let mut root = workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: lint [--root <workspace-root>]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    match medledger_check::lint::run_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: workspace clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    }
}
