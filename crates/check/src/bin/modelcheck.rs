//! Model-checker CLI.
//!
//! ```text
//! # explore every scenario with the default budget
//! cargo run --release -p medledger-check --bin modelcheck
//!
//! # one scenario, bigger budget, fail unless 500 distinct schedules
//! cargo run --release -p medledger-check --bin modelcheck -- \
//!     --scenario mpsc-handoff --max-exec 5000 --min-distinct 500
//!
//! # replay a failure exactly as the report printed it
//! cargo run -p medledger-check --bin modelcheck -- \
//!     --scenario broken-notify --replay-seed 0x1234
//! cargo run -p medledger-check --bin modelcheck -- \
//!     --scenario broken-notify --replay-trace 1.0.2
//! ```
//!
//! Exits 0 when every explored scenario holds, 1 on a failure (with
//! the replayable schedule), 2 on usage errors.

use medledger_check::explore::Checker;
use medledger_check::scenarios;

struct Cli {
    scenario: Option<String>,
    replay_seed: Option<u64>,
    replay_trace: Option<Vec<usize>>,
    max_exec: usize,
    sample: usize,
    max_decisions: usize,
    seed: u64,
    min_distinct: usize,
    list: bool,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("not a number: {s}"))
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        scenario: None,
        replay_seed: None,
        replay_trace: None,
        max_exec: 1500,
        sample: 600,
        max_decisions: 40,
        seed: 0x1CDE_2019,
        min_distinct: 0,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenario" => cli.scenario = Some(value("--scenario")?),
            "--replay-seed" => cli.replay_seed = Some(parse_u64(&value("--replay-seed")?)?),
            "--replay-trace" => {
                let t = value("--replay-trace")?;
                let trace: Result<Vec<usize>, _> =
                    t.split('.').map(|p| p.parse::<usize>()).collect();
                cli.replay_trace = Some(trace.map_err(|_| format!("bad trace: {t}"))?);
            }
            "--max-exec" => cli.max_exec = parse_u64(&value("--max-exec")?)? as usize,
            "--sample" => cli.sample = parse_u64(&value("--sample")?)? as usize,
            "--max-decisions" => {
                cli.max_decisions = parse_u64(&value("--max-decisions")?)? as usize
            }
            "--seed" => cli.seed = parse_u64(&value("--seed")?)?,
            "--min-distinct" => cli.min_distinct = parse_u64(&value("--min-distinct")?)? as usize,
            "--list" => cli.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: modelcheck [--scenario NAME] [--max-exec N] [--sample N] \
                     [--max-decisions N] [--seed N] [--min-distinct N] \
                     [--replay-seed N | --replay-trace a.b.c] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            std::process::exit(2);
        }
    };

    if cli.list {
        for s in scenarios::all() {
            println!("{}", s.name);
        }
        for s in scenarios::broken::all() {
            println!("{} (intentionally broken)", s.name);
        }
        return;
    }

    let checker = Checker {
        max_dfs: cli.max_exec,
        max_samples: cli.sample,
        max_decisions: cli.max_decisions,
        seed: cli.seed,
    };

    // Replay modes need one named scenario (broken ones allowed).
    if cli.replay_seed.is_some() || cli.replay_trace.is_some() {
        let Some(name) = &cli.scenario else {
            eprintln!("modelcheck: replay needs --scenario");
            std::process::exit(2);
        };
        let Some(sc) = scenarios::by_name(name) else {
            eprintln!("modelcheck: unknown scenario `{name}` (try --list)");
            std::process::exit(2);
        };
        let failure = if let Some(seed) = cli.replay_seed {
            checker.replay_seed(&sc, seed)
        } else {
            checker.replay_trace(&sc, cli.replay_trace.as_deref().unwrap_or(&[]))
        };
        match failure {
            Some(f) => {
                println!("{f}");
                std::process::exit(1);
            }
            None => {
                println!("replay: schedule passes (bug no longer reproduces)");
                return;
            }
        }
    }

    let selected: Vec<_> = match &cli.scenario {
        Some(name) => match scenarios::by_name(name) {
            Some(sc) => vec![sc],
            None => {
                eprintln!("modelcheck: unknown scenario `{name}` (try --list)");
                std::process::exit(2);
            }
        },
        None => scenarios::all(),
    };

    let mut total_exec = 0usize;
    let mut total_distinct = 0usize;
    let mut failed = false;
    for sc in &selected {
        let outcome = checker.check(sc);
        total_exec += outcome.executions;
        total_distinct += outcome.distinct;
        let status = match (&outcome.failure, outcome.exhausted) {
            (Some(_), _) => "FAIL",
            (None, true) => "ok (exhausted)",
            (None, false) => "ok",
        };
        println!(
            "{:<28} {:>6} executions, {:>6} distinct schedules  {status}",
            outcome.scenario, outcome.executions, outcome.distinct
        );
        if let Some(f) = outcome.failure {
            println!("{f}");
            failed = true;
        }
    }
    println!(
        "total: {total_exec} executions, {total_distinct} distinct schedules across {} scenario(s)",
        selected.len()
    );
    if cli.min_distinct > 0 && total_distinct < cli.min_distinct {
        eprintln!(
            "modelcheck: coverage below floor ({} distinct < {} required)",
            total_distinct, cli.min_distinct
        );
        std::process::exit(1);
    }
    if failed {
        std::process::exit(1);
    }
}
