//! SplitMix64: the small, vendored PRNG behind seeded random schedule
//! sampling. Chosen because the whole generator is one mixing function,
//! so a printed 64-bit seed fully determines a schedule — the property
//! deterministic replay rests on.

/// SplitMix64 generator (Steele, Lea & Flood 2014 mixing constants).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (n must be nonzero; bias is
    /// irrelevant for schedule sampling).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One-shot mix of two words — used to derive per-execution seeds from
/// a base seed and to fingerprint decision traces.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
