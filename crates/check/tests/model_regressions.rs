//! Model-checker regression suite: the production scenarios must hold
//! under a bounded exploration, the intentionally-broken doubles must
//! be caught, and a caught failure must replay deterministically from
//! both its decision trace and its sampling seed.

use medledger_check::explore::Checker;
use medledger_check::scenarios;

fn small_budget() -> Checker {
    Checker {
        max_dfs: 300,
        max_samples: 150,
        max_decisions: 40,
        seed: 0x1CDE_2019,
    }
}

#[test]
fn production_scenarios_hold() {
    let checker = small_budget();
    for sc in scenarios::all() {
        // Under the seeded wrong-ordering build, rt-quiescence is
        // SUPPOSED to fail; tests/mutant.rs asserts exactly that.
        if cfg!(feature = "order-mutant") && sc.name == "rt-quiescence" {
            continue;
        }
        let outcome = checker.check(&sc);
        assert!(
            outcome.failure.is_none(),
            "scenario `{}` failed:\n{}",
            sc.name,
            outcome.failure.expect("checked some")
        );
        assert!(outcome.executions > 0);
    }
}

#[test]
fn small_scenarios_are_exhausted() {
    let checker = small_budget();
    for name in [
        "oneshot-send-take",
        "oneshot-drop-vs-poll",
        "notify-before-wait",
    ] {
        let sc = scenarios::by_name(name).expect("known scenario");
        let outcome = checker.check(&sc);
        assert!(
            outcome.exhausted,
            "`{name}` should exhaust its bounded schedule space \
             ({} executions)",
            outcome.executions
        );
    }
}

#[test]
fn broken_notify_is_caught_and_trace_replays() {
    let sc = scenarios::by_name("broken-notify").expect("broken double");
    let checker = small_budget();
    let outcome = checker.check(&sc);
    let failure = outcome
        .failure
        .expect("notify-before-wait bug must be found");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock, got: {}",
        failure.message
    );
    // The decision trace replays to the same failure, twice.
    for _ in 0..2 {
        let again = checker
            .replay_trace(&sc, &failure.trace)
            .expect("trace must reproduce the failure");
        assert_eq!(again.message, failure.message);
        assert_eq!(again.trace, failure.trace);
    }
}

#[test]
fn broken_notify_seed_replay_is_deterministic() {
    let sc = scenarios::by_name("broken-notify").expect("broken double");
    // DFS disabled: force the sampling path so the failure carries a
    // seed.
    let checker = Checker {
        max_dfs: 0,
        max_samples: 400,
        max_decisions: 40,
        seed: 0xFEED_BEEF,
    };
    let outcome = checker.check(&sc);
    let failure = outcome.failure.expect("sampling must find the bug");
    let seed = failure.seed.expect("sampling failures carry a seed");
    let a = checker.replay_seed(&sc, seed).expect("seed reproduces");
    let b = checker
        .replay_seed(&sc, seed)
        .expect("seed reproduces again");
    assert_eq!(a.message, b.message);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.message, failure.message);
}

#[test]
fn broken_channel_recv_drop_race_is_caught() {
    let sc = scenarios::by_name("broken-channel").expect("broken double");
    let checker = small_budget();
    let outcome = checker.check(&sc);
    let failure = outcome
        .failure
        .expect("receiver-drop waker loss must be found");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock, got: {}",
        failure.message
    );
    let again = checker
        .replay_trace(&sc, &failure.trace)
        .expect("trace must reproduce the failure");
    assert_eq!(again.message, failure.message);
}

#[test]
fn distinct_schedule_counting_is_plausible() {
    let sc = scenarios::by_name("mpsc-handoff").expect("known scenario");
    let outcome = small_budget().check(&sc);
    assert!(
        outcome.distinct > 50,
        "capacity-1 handoff has a rich schedule space, saw {}",
        outcome.distinct
    );
    assert!(outcome.distinct <= outcome.executions);
}
