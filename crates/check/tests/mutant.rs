//! The ordering-mutant gate. CI runs this test twice:
//!
//! - default features: the runtime's quiescence load is `Acquire` and
//!   the `rt-quiescence` scenario must hold;
//! - `--features order-mutant`: the load is downgraded to `Relaxed`
//!   (the seeded wrong-ordering build) and the checker MUST catch it —
//!   proving the staleness model actually has teeth, not just green
//!   lights.

use medledger_check::explore::Checker;
use medledger_check::scenarios;

#[test]
fn quiescence_ordering_mutant_is_detected() {
    let sc = scenarios::by_name("rt-quiescence").expect("known scenario");
    let checker = Checker {
        max_dfs: 3000,
        max_samples: 1000,
        max_decisions: 40,
        seed: 0x0DD_0DD,
    };
    let outcome = checker.check(&sc);
    if cfg!(feature = "order-mutant") {
        let failure = outcome
            .failure
            .expect("the Relaxed quiescence load must be caught by the checker");
        assert!(
            failure.message.contains("mid-poll"),
            "expected the stale-zero quiescence violation, got: {}",
            failure.message
        );
        // The detection replays deterministically from its trace.
        let again = checker
            .replay_trace(&sc, &failure.trace)
            .expect("mutant failure must replay");
        assert_eq!(again.message, failure.message);
    } else {
        assert!(
            outcome.failure.is_none(),
            "unmutated build must pass rt-quiescence:\n{}",
            outcome.failure.expect("checked some")
        );
    }
}
