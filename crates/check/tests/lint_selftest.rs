//! Lint self-test: the real workspace must be clean, the rules must
//! still fire on synthetic violations (so a clean run means "checked
//! and passed", not "checker went blind"), and the wire-protocol
//! inventory must match the real sources.

use std::path::PathBuf;

use medledger_check::lint::{self, policy, rules, scan};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean() {
    let findings = lint::run_workspace(&workspace_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unsafe_rule_still_fires() {
    let lines = scan::scan("fn f() {\n    unsafe { deref(p) }\n}\n");
    assert_eq!(rules::unsafe_safety("x.rs", &lines).len(), 1);
    let ok =
        scan::scan("fn f() {\n    // SAFETY: p outlives the call\n    unsafe { deref(p) }\n}\n");
    assert!(rules::unsafe_safety("x.rs", &ok).is_empty());
}

#[test]
fn ordering_rule_still_fires() {
    let policy_src =
        std::fs::read_to_string(workspace_root().join("crates/check/ordering_policy.toml"))
            .expect("policy readable");
    let policy = policy::parse(&policy_src).expect("policy parses");

    // Unmarked site.
    let lines = scan::scan("let v = a.load(Ordering::Acquire);\n");
    let fs = rules::ordering_policy("x.rs", &lines, &policy);
    assert_eq!(fs.len(), 1, "{fs:?}");

    // Marked, but the key does not permit the variant.
    let lines = scan::scan("// ordering: timer-seq\nlet v = a.load(Ordering::SeqCst);\n");
    let fs = rules::ordering_policy("x.rs", &lines, &policy);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert!(fs[0].message.contains("not permitted"));

    // Marked with an unknown key.
    let lines = scan::scan("// ordering: no-such-key\nlet v = a.load(Ordering::Acquire);\n");
    let fs = rules::ordering_policy("x.rs", &lines, &policy);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert!(fs[0].message.contains("unknown policy key"));

    // Properly registered.
    let lines = scan::scan("// ordering: timer-seq\nlet v = a.fetch_add(1, Ordering::Relaxed);\n");
    assert!(rules::ordering_policy("x.rs", &lines, &policy).is_empty());
}

#[test]
fn unwrap_rule_still_fires() {
    let lines = scan::scan("fn f() {\n    let v = map.get(k).unwrap();\n}\n");
    assert_eq!(rules::unwrap_ban("x.rs", &lines).len(), 1);
    // Test code is exempt.
    let lines = scan::scan("#[cfg(test)]\nmod t {\n    fn f() { x.unwrap(); }\n}\n");
    assert!(rules::unwrap_ban("x.rs", &lines).is_empty());
}

#[test]
fn policy_file_documents_every_key() {
    let policy_src =
        std::fs::read_to_string(workspace_root().join("crates/check/ordering_policy.toml"))
            .expect("policy readable");
    let policy = policy::parse(&policy_src).expect("policy parses");
    for (key, entry) in &policy {
        assert!(
            entry.rationale.split_whitespace().count() >= 8,
            "policy key `{key}` needs a real rationale, not a stub"
        );
    }
    assert!(
        policy.contains_key("active-tasks-mutant"),
        "the seeded CI mutant must stay documented"
    );
}

#[test]
fn wire_inventory_matches_sources() {
    let root = workspace_root();
    let wire = scan::scan(
        &std::fs::read_to_string(root.join("crates/node/src/wire.rs")).expect("wire.rs"),
    );
    let messages = rules::enum_variants(&wire, "Message").expect("enum Message");
    assert!(
        messages.len() >= 10,
        "wire::Message should be a rich protocol, found {messages:?}"
    );
    let rejects = rules::enum_variants(&wire, "RejectKind").expect("enum RejectKind");
    assert_eq!(rejects.len(), 9, "found {rejects:?}");

    let facade = scan::scan(
        &std::fs::read_to_string(root.join("crates/core/src/facade.rs")).expect("facade.rs"),
    );
    let commit_errors = rules::enum_variants(&facade, "CommitError").expect("enum CommitError");
    assert_eq!(
        commit_errors.len(),
        rejects.len(),
        "every CommitError maps 1:1 onto a RejectKind"
    );
}

#[test]
fn exhaustiveness_rule_catches_a_missing_arm() {
    let src = "pub enum Kind { A, B }\nimpl Kind {\n    fn tag(self) -> u8 {\n        match self {\n            Kind::A => 0,\n            Kind::B => 1,\n        }\n    }\n    fn from_tag(t: u8) -> Kind {\n        match t {\n            0 => Kind::A,\n            _ => Kind::B,\n        }\n    }\n}\n";
    let lines = scan::scan(src);
    let variants = rules::enum_variants(&lines, "Kind").expect("enum Kind");
    assert_eq!(variants, vec!["A", "B"]);
    let impl_at = rules::impl_line(&lines, "Kind").expect("impl Kind");
    let tag = rules::fn_span(&lines, "tag", impl_at).expect("fn tag");
    assert!(rules::span_covers("x.rs", &lines, tag, "Kind", &variants, "tag").is_empty());
    // Drop the B arm: the rule must notice.
    let broken = src.replace("            Kind::B => 1,\n", "");
    let lines = scan::scan(&broken);
    let tag = rules::fn_span(&lines, "tag", 0).expect("fn tag");
    let fs = rules::span_covers("x.rs", &lines, tag, "Kind", &variants, "tag");
    assert_eq!(fs.len(), 1);
    assert!(fs[0].message.contains("Kind::B"));
}
