//! A hand-rolled multi-threaded async executor.
//!
//! The container this reproduction targets has no network access and no
//! async runtime crates, so the node runtime brings its own: a small
//! work queue of [`std::task::Wake`]-based tasks polled by a fixed pool
//! of worker threads, a timer thread driving [`Runtime::sleep`]
//! futures, and a [`Runtime::block_on`] entry point for synchronous
//! callers. One worker (`threads = 1`) gives a fully deterministic
//! single-lane schedule; more workers only change *where* a task polls,
//! never what the gateway commits (see the crate docs on determinism).
//!
//! The design is deliberately minimal — no I/O reactor (all I/O in this
//! crate is in-process [`crate::wire`] pipes that wake wakers directly),
//! no task priorities, no work stealing: a single injector queue behind
//! a mutex + condvar is plenty for thousands of mostly-parked session
//! tasks.
//!
//! The task state machine and quiescence accounting are traced through
//! [`crate::sched`] so the `medledger-check` model checker can explore
//! their interleavings; every `Ordering::` choice here is justified in
//! `crates/check/ordering_policy.toml` under the key named by the
//! `// ordering:` marker on the line.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::sched::{self, TracedAtomicBool, TracedAtomicU64, TracedAtomicU8};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

// Task lifecycle states. Transitions:
//   IDLE -(wake)-> SCHEDULED -(worker picks up)-> RUNNING
//   RUNNING -(poll Pending)-> IDLE
//   RUNNING -(wake during poll)-> RESCHEDULED -(poll ends)-> SCHEDULED
//   RUNNING -(poll Ready)-> COMPLETE
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const RESCHEDULED: u8 = 3;
const COMPLETE: u8 = 4;

struct Task {
    state: TracedAtomicU8,
    /// The future, present until completion. The mutex is never
    /// contended for polling (the state machine admits one runner), it
    /// only guards the drop-on-shutdown path.
    future: Mutex<Option<BoxFuture>>,
    core: Weak<Core>,
}

impl Task {
    fn new(fut: BoxFuture, core: &Arc<Core>) -> Arc<Self> {
        Arc::new(Task {
            state: TracedAtomicU8::new("rt.task.state", SCHEDULED),
            future: Mutex::new(Some(fut)),
            core: Arc::downgrade(core),
        })
    }

    /// Polls the task once; called by a worker after dequeueing.
    fn run(self: Arc<Self>) {
        sched::point("rt.task.run");
        // ordering: task-state
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().expect("task future lock");
        let Some(fut) = slot.as_mut() else {
            // ordering: task-state
            self.state.store(COMPLETE, Ordering::Release);
            return;
        };
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *slot = None;
                // ordering: task-state
                self.state.store(COMPLETE, Ordering::Release);
            }
            Poll::Pending => {
                drop(slot);
                // If a waker fired mid-poll the task goes straight back
                // on the queue; otherwise it parks as IDLE.
                if self
                    .state
                    // ordering: task-state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Must have been RESCHEDULED.
                    // ordering: task-state
                    self.state.store(SCHEDULED, Ordering::Release);
                    if let Some(core) = self.core.upgrade() {
                        core.enqueue(Arc::clone(&self));
                    }
                }
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        sched::point("rt.task.wake");
        loop {
            // ordering: task-state
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        // ordering: task-state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(core) = self.core.upgrade() {
                            core.enqueue(self);
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(
                            RUNNING,
                            RESCHEDULED,
                            // ordering: task-state
                            Ordering::AcqRel,
                            // ordering: task-state
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued (or finished): nothing to do.
                SCHEDULED | RESCHEDULED | COMPLETE => return,
                _ => unreachable!("invalid task state"),
            }
        }
    }
}

/// One pending [`Runtime::sleep`] registration.
struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Mutex<Option<Waker>>,
    fired: AtomicBool,
}

/// Heap adapter: earliest deadline first (ties broken by registration
/// order so firing is deterministic).
struct TimerRef(Arc<TimerEntry>);

impl PartialEq for TimerRef {
    fn eq(&self, other: &Self) -> bool {
        self.0.deadline == other.0.deadline && self.0.seq == other.0.seq
    }
}
impl Eq for TimerRef {}
impl PartialOrd for TimerRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min deadline.
        (other.0.deadline, other.0.seq).cmp(&(self.0.deadline, self.0.seq))
    }
}

struct Core {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: TracedAtomicBool,
    timers: Mutex<BinaryHeap<TimerRef>>,
    timer_wake: Condvar,
    timer_seq: AtomicU64,
    /// Tasks currently being polled by a worker; together with an empty
    /// run queue this defines quiescence (see [`Runtime::drain`]).
    active: TracedAtomicU64,
}

impl Core {
    fn new() -> Arc<Self> {
        Arc::new(Core {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: TracedAtomicBool::new("rt.shutdown", false),
            timers: Mutex::new(BinaryHeap::new()),
            timer_wake: Condvar::new(),
            timer_seq: AtomicU64::new(0),
            active: TracedAtomicU64::new("rt.active", 0),
        })
    }

    fn enqueue(&self, task: Arc<Task>) {
        sched::point("rt.enqueue");
        self.queue.lock().expect("run queue lock").push_back(task);
        self.available.notify_one();
    }

    /// Pops one queued task without blocking, counting it active while
    /// the queue lock is still held so [`Core::is_quiescent`] never
    /// observes "queue empty, nothing active" between the pop and the
    /// run. Returns `None` when shut down or empty. Shared by the
    /// worker loop and the model-checker [`probe`], so both drive the
    /// exact accounting the checker verifies.
    fn try_take(&self) -> Option<Arc<Task>> {
        sched::point("rt.pop");
        let mut q = self.queue.lock().expect("run queue lock");
        // ordering: run-queue-shutdown
        if self.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let t = q.pop_front()?;
        // ordering: active-tasks
        self.active.fetch_add(1, Ordering::AcqRel);
        Some(t)
    }

    /// Polls a taken task and retires its active count.
    fn finish_run(&self, task: Arc<Task>) {
        task.run();
        // ordering: active-tasks
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// True when no task is queued and none is mid-poll. Tasks parked
    /// on wakers don't count; they hold no scheduled work.
    fn is_quiescent(&self) -> bool {
        let queued = self.queue.lock().expect("run queue lock").len();
        // The gap between the two reads is where a racy implementation
        // would let `drain` return while a task is still mid-poll.
        sched::point("rt.quiescent.gap");
        if queued != 0 {
            return false;
        }
        #[cfg(not(feature = "order-mutant"))]
        // ordering: active-tasks
        let active = self.active.load(Ordering::Acquire);
        #[cfg(feature = "order-mutant")]
        // ordering: active-tasks-mutant
        let active = self.active.load(Ordering::Relaxed);
        active == 0
    }

    fn worker_loop(&self) {
        loop {
            // Fast path: grab work (same code the model-checker probe
            // drives).
            if let Some(task) = self.try_take() {
                self.finish_run(task);
                continue;
            }
            // Slow path: park on the condvar. `try_take` returning
            // `None` means "empty or shut down at that instant", so
            // re-check both under the lock before waiting — `enqueue`
            // and `shutdown` both touch the queue lock, which makes
            // this check/wait race-free.
            let q = self.queue.lock().expect("run queue lock");
            // ordering: run-queue-shutdown
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if !q.is_empty() {
                continue;
            }
            let _woken = self.available.wait(q).expect("run queue wait");
        }
    }

    fn timer_loop(&self) {
        let mut heap = self.timers.lock().expect("timer lock");
        loop {
            // ordering: run-queue-shutdown
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            // Fire everything due.
            while heap.peek().is_some_and(|t| t.0.deadline <= now) {
                let Some(TimerRef(entry)) = heap.pop() else {
                    break;
                };
                // ordering: timer-fired
                entry.fired.store(true, Ordering::Release);
                let waker = entry.waker.lock().expect("timer waker lock").take();
                if let Some(w) = waker {
                    w.wake();
                }
            }
            heap = match heap.peek().map(|t| t.0.deadline) {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    self.timer_wake
                        .wait_timeout(heap, timeout)
                        .expect("timer wait")
                        .0
                }
                None => self.timer_wake.wait(heap).expect("timer wait"),
            };
        }
    }
}

/// The executor: a worker pool plus a timer thread.
///
/// Dropping the runtime shuts it down: queued tasks are dropped,
/// workers joined. Tasks still owning resources release them through
/// their destructors.
pub struct Runtime {
    core: Arc<Core>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl Runtime {
    /// Starts a runtime with `workers` executor threads (clamped to at
    /// least one) plus one timer thread. `workers = 1` is the
    /// deterministic single-lane schedule.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let core = Core::new();
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let c = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("medledger-rt-{i}"))
                    .spawn(move || c.worker_loop())
                    // lint: allow(unwrap) — a runtime that cannot start its
                    // worker pool cannot run at all; construction aborts.
                    .expect("spawn worker"),
            );
        }
        let c = Arc::clone(&core);
        threads.push(
            std::thread::Builder::new()
                .name("medledger-rt-timer".into())
                .spawn(move || c.timer_loop())
                // lint: allow(unwrap) — same as worker spawn above.
                .expect("spawn timer thread"),
        );
        Runtime {
            core,
            threads: Mutex::new(threads),
            workers,
        }
    }

    /// The configured executor thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A cloneable handle for spawning from inside tasks.
    pub fn handle(&self) -> Handle {
        Handle {
            core: Arc::clone(&self.core),
        }
    }

    /// Spawns a future onto the worker pool; the [`JoinHandle`] resolves
    /// to its output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.handle().spawn(fut)
    }

    /// A future resolving after `dur` (driven by the timer thread).
    pub fn sleep(&self, dur: Duration) -> Sleep {
        self.handle().sleep(dur)
    }

    /// Runs `fut` to completion on the **caller's** thread, parking
    /// between polls. Spawned tasks keep running on the worker pool.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        struct Unparker {
            thread: std::thread::Thread,
            notified: AtomicBool,
        }
        impl Wake for Unparker {
            fn wake(self: Arc<Self>) {
                // ordering: block-on-park
                self.notified.store(true, Ordering::Release);
                self.thread.unpark();
            }
        }
        let unparker = Arc::new(Unparker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&unparker));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    // ordering: block-on-park
                    while !unparker.notified.swap(false, Ordering::AcqRel) {
                        std::thread::park();
                    }
                }
            }
        }
    }

    /// Waits (bounded by `timeout`) until the pool is quiescent: no
    /// task queued and none mid-poll. Used before [`Runtime::shutdown`]
    /// to let already-woken tasks — e.g. a session delivering a final
    /// outcome — finish instead of being dropped. Tasks parked on
    /// wakers (idle readers) don't count; they hold no scheduled work.
    /// Returns `true` if quiescence was reached.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.core.is_quiescent() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Stops workers and the timer thread, dropping queued tasks. Also
    /// runs on [`Drop`].
    pub fn shutdown(&self) {
        // Store the flag while holding the queue lock: a worker either
        // checks the flag before we take the lock (then its condvar
        // wait is entered before our notify and is woken by it), or
        // after (and sees `true`). Storing without the lock loses the
        // wakeup when the store lands between a worker's check and its
        // wait — a shutdown-time hang the model checker's
        // `rt-shutdown` scenario guards against.
        {
            let _q = self.core.queue.lock().expect("run queue lock");
            // ordering: run-queue-shutdown
            self.core.shutdown.store(true, Ordering::Release);
        }
        self.core.available.notify_all();
        // Same fence for the timer thread: its loop checks the flag
        // with the timer lock held, so an empty critical section orders
        // our store before its next check-or-wait.
        drop(self.core.timers.lock().expect("timer lock"));
        self.core.timer_wake.notify_all();
        let mut threads = self.threads.lock().expect("thread registry lock");
        for t in threads.drain(..) {
            let _ = t.join();
        }
        // Release queued tasks' resources deterministically.
        self.core.queue.lock().expect("run queue lock").clear();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cloneable spawn/sleep handle onto a [`Runtime`].
#[derive(Clone)]
pub struct Handle {
    core: Arc<Core>,
}

impl Handle {
    /// See [`Runtime::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = crate::sync::oneshot();
        let task = Task::new(
            Box::pin(async move {
                let _ = tx.send(fut.await);
            }),
            &self.core,
        );
        self.core.enqueue(task);
        JoinHandle { rx }
    }

    /// See [`Runtime::sleep`].
    pub fn sleep(&self, dur: Duration) -> Sleep {
        Sleep {
            deadline: Instant::now() + dur,
            entry: None,
            core: Arc::downgrade(&self.core),
        }
    }
}

/// Resolves to the spawned task's output.
///
/// Panics if awaited after the runtime shut down underneath the task
/// (the only way the output can be lost).
pub struct JoinHandle<T> {
    rx: crate::sync::OneReceiver<T>,
}

impl<T> JoinHandle<T> {
    /// The task's output if it already completed, without waiting —
    /// usable even after the runtime stopped (the value survives in
    /// the completion slot).
    pub fn try_join(&mut self) -> Option<T> {
        self.rx.try_take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(v)) => Poll::Ready(v),
            Poll::Ready(None) => panic!("task dropped before completion (runtime shut down?)"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future returned by [`Runtime::sleep`].
pub struct Sleep {
    deadline: Instant,
    entry: Option<Arc<TimerEntry>>,
    core: Weak<Core>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        if let Some(entry) = &self.entry {
            // ordering: timer-fired
            if entry.fired.load(Ordering::Acquire) {
                return Poll::Ready(());
            }
            // Keep the registered waker current across task migrations.
            *entry.waker.lock().expect("timer waker lock") = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let Some(core) = self.core.upgrade() else {
            // Runtime gone: resolve immediately rather than hang.
            return Poll::Ready(());
        };
        let entry = Arc::new(TimerEntry {
            deadline: self.deadline,
            // ordering: timer-seq
            seq: core.timer_seq.fetch_add(1, Ordering::Relaxed),
            waker: Mutex::new(Some(cx.waker().clone())),
            fired: AtomicBool::new(false),
        });
        core.timers
            .lock()
            .expect("timer lock")
            .push(TimerRef(Arc::clone(&entry)));
        core.timer_wake.notify_all();
        self.entry = Some(entry);
        Poll::Pending
    }
}

/// Cooperative yield: reschedules the current task behind everything
/// already queued and resolves on its next poll.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[doc(hidden)]
pub mod probe {
    //! Model-checker window onto the executor internals.
    //!
    //! Exposes the worker fast path ([`ExecutorProbe::poll_task`]), the
    //! quiescence predicate, and shutdown flagging as directly drivable
    //! steps, sharing the executor `Core`'s real code paths without
    //! spawning any OS worker threads — the `medledger-check` harness
    //! provides the "threads" and interleaves these calls. Hidden from
    //! docs because it is an internal testing contract, not runtime API.

    use super::*;

    /// Drives the executor core's queue, task state machine, and
    /// quiescence accounting one step at a time.
    pub struct ExecutorProbe {
        core: Arc<Core>,
    }

    impl Default for ExecutorProbe {
        fn default() -> Self {
            Self::new()
        }
    }

    impl ExecutorProbe {
        /// A core with no OS threads attached.
        pub fn new() -> Self {
            ExecutorProbe { core: Core::new() }
        }

        /// Spawns `fut` onto the probe's queue, returning an external
        /// wake handle for it.
        pub fn spawn<F>(&self, fut: F) -> TaskHandle
        where
            F: Future<Output = ()> + std::marker::Send + 'static,
        {
            let task = Task::new(Box::pin(fut), &self.core);
            self.core.enqueue(Arc::clone(&task));
            TaskHandle { task }
        }

        /// Pops and polls one queued task — the worker fast path.
        /// Returns `false` when the queue was empty or the core is
        /// shut down.
        pub fn poll_task(&self) -> bool {
            match self.core.try_take() {
                Some(t) => {
                    self.core.finish_run(t);
                    true
                }
                None => false,
            }
        }

        /// The [`Runtime::drain`] predicate: queue empty and no task
        /// mid-poll.
        pub fn is_quiescent(&self) -> bool {
            self.core.is_quiescent()
        }

        /// Tasks currently queued.
        pub fn queued(&self) -> usize {
            self.core.queue.lock().expect("run queue lock").len()
        }

        /// Flags shutdown exactly like [`Runtime::shutdown`] does
        /// (store under the queue lock), without joining any threads.
        pub fn begin_shutdown(&self) {
            let _q = self.core.queue.lock().expect("run queue lock");
            // ordering: run-queue-shutdown
            self.core.shutdown.store(true, Ordering::Release);
        }
    }

    /// External waker for a probe-spawned task.
    pub struct TaskHandle {
        task: Arc<Task>,
    }

    impl TaskHandle {
        /// Wakes the task exactly as a stored [`Waker`] would.
        pub fn wake(&self) {
            Wake::wake(Arc::clone(&self.task));
        }

        /// Whether the task has polled to completion.
        pub fn is_complete(&self) -> bool {
            // ordering: task-state
            self.task.state.load(Ordering::Acquire) == COMPLETE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new(2);
        let h = rt.spawn(async { 2 + 2 });
        assert_eq!(rt.block_on(h), 4);
    }

    #[test]
    fn tasks_run_concurrently_across_workers() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        rt.block_on(async {
            for h in handles {
                h.await;
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn sleep_resolves_and_orders() {
        let rt = Runtime::new(1);
        let start = Instant::now();
        rt.block_on(rt.sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn yield_now_round_trips() {
        let rt = Runtime::new(1);
        rt.block_on(async {
            yield_now().await;
            yield_now().await;
        });
    }

    #[test]
    fn self_waking_task_makes_progress() {
        // A future that wakes itself from inside poll must be
        // rescheduled (RUNNING -> RESCHEDULED path), not lost.
        struct SelfWake {
            polls: usize,
        }
        impl Future for SelfWake {
            type Output = usize;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
                self.polls += 1;
                if self.polls >= 5 {
                    Poll::Ready(self.polls)
                } else {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let rt = Runtime::new(2);
        let h = rt.spawn(SelfWake { polls: 0 });
        assert_eq!(rt.block_on(h), 5);
    }

    #[test]
    fn probe_drives_spawn_run_wake_cycle() {
        struct TwoPoll {
            polls: usize,
        }
        impl Future for TwoPoll {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                self.polls += 1;
                if self.polls >= 2 {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
        let p = probe::ExecutorProbe::new();
        let h = p.spawn(TwoPoll { polls: 0 });
        assert!(!p.is_quiescent());
        assert!(p.poll_task());
        // First poll returned Pending with no waker stored: parked.
        assert!(p.is_quiescent());
        h.wake();
        assert!(!p.is_quiescent());
        assert!(p.poll_task());
        assert!(h.is_complete());
        p.begin_shutdown();
        assert!(!p.poll_task());
    }
}
