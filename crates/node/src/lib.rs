//! Async multi-node runtime for the medledger reproduction: per-peer
//! event loops, a length-prefixed wire protocol, and a concurrent
//! gateway front door over the ticketed commit pipeline.
//!
//! The rest of the workspace models the paper's stakeholders as structs
//! inside one `System`. This crate gives the deployment *processes*:
//! each peer's state lives in its own event loop, control-plane traffic
//! travels as framed bytes on the [`medledger_storage`] binary codec,
//! and clients talk to a single concurrent **gateway** instead of
//! holding `&mut` on the whole world. Everything is built on a
//! hand-rolled executor — no external async dependencies.
//!
//! ## Architecture
//!
//! ```text
//!  GatewayClient ──frames──▶ session reader ─┐
//!  GatewayClient ──frames──▶ session reader ─┤   events    ┌──────────┐
//!      ⋮                         ⋮           ├───────────▶ │   Pump   │
//!  session writer ◀──outbox── replies ◀──────┘             │ (owns    │
//!                                                          │ Ledger-  │
//!  peer loop (Patient)  ◀──Checkout/FanOut/Checkin──▶      │ Service) │
//!  peer loop (Doctor)   ◀──Checkout/FanOut/Checkin──▶      └──────────┘
//!  peer loop (Researcher)◀─Checkout/FanOut/Checkin──▶
//! ```
//!
//! - [`rt`] — the executor: a work queue over N worker threads, a timer
//!   thread, `block_on`, and quiescence-aware [`Runtime::drain`].
//! - [`sync`] — oneshot, bounded/unbounded mpsc channels, and
//!   [`sync::Notify`], all usable from any future on the executor.
//! - [`wire`] — `[u32 len][version][corr][Message]` frames over bounded
//!   in-process byte [`wire::pipe`]s with genuine backpressure; every
//!   payload round-trips through the storage codec.
//! - [`peer_loop`] — one loop per stakeholder **owning** its
//!   [`PeerNode`](medledger_core::PeerNode) between waves; the pump
//!   borrows the node for a wave via a `Checkout`/`Checkin` handshake
//!   and streams `FanOut`/`AckSealed`/`ConsensusSealed` notifications
//!   back after each commit.
//! - [`gateway`] — the front door: thousands of client sessions
//!   multiplex submissions into waves of the existing
//!   [`LedgerService`](medledger_engine::LedgerService) `tick()`;
//!   tickets resolve by async notification (no polling); admission is
//!   bounded, shedding load with a typed `Overloaded { retry_after_ms }`
//!   reply; shutdown drains in-flight waves before the store closes.
//!
//! Determinism is preserved by construction: exactly one pump task ever
//! touches the `LedgerService`, so for a fixed submission arrival order
//! the committed bytes are identical to a serial run regardless of the
//! executor thread count (property-tested in
//! `tests/gateway_concurrency.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use medledger_bx::LensSpec;
//! use medledger_core::MedLedger;
//! use medledger_engine::LedgerService;
//! use medledger_node::wire::WireWrite;
//! use medledger_node::{Deployment, GatewayConfig, SubmitReply};
//! use medledger_relational::{row, Column, Schema, Table, Value, ValueType, WriteOp};
//!
//! // A two-stakeholder ledger: Doctor shares a ward table with Patient.
//! let mut ledger = MedLedger::builder().seed("node-docs").build().unwrap();
//! let doctor = ledger.add_peer("Doctor").unwrap();
//! let patient = ledger.add_peer("Patient").unwrap();
//! let schema = Schema::new(
//!     vec![
//!         Column::new("patient_id", ValueType::Int),
//!         Column::new("dosage", ValueType::Text),
//!     ],
//!     &["patient_id"],
//! )
//! .unwrap();
//! let mut table = Table::new(schema);
//! table.insert(row![188i64, "10 mg"]).unwrap();
//! let lens = LensSpec::project(&["patient_id", "dosage"], &["patient_id"]);
//! ledger.session(doctor).load_source("D", table.clone()).unwrap();
//! ledger.session(patient).load_source("P", table).unwrap();
//! ledger
//!     .session(doctor)
//!     .share("ward")
//!     .bind("D", lens.clone())
//!     .with(patient, "P", lens)
//!     .writers("patient_id", &[doctor])
//!     .writers("dosage", &[doctor])
//!     .create()
//!     .unwrap();
//!
//! // Serve it: peers move into their event loops, the gateway opens.
//! let dep = Deployment::start(LedgerService::new(ledger), GatewayConfig::default()).unwrap();
//!
//! // A client session submits a dosage update over the wire and awaits
//! // the commit notification.
//! let mut client = dep.connect();
//! let commit = dep.block_on(async move {
//!     let op = WriteOp::Update {
//!         key: vec![Value::Int(188)],
//!         assignments: vec![("dosage".into(), Value::text("5 mg"))],
//!     };
//!     let reply = client
//!         .submit("Doctor", "ward", vec![WireWrite::Shared(op)])
//!         .await
//!         .unwrap();
//!     let SubmitReply::Accepted { ticket } = reply else {
//!         panic!("admission failed: {reply:?}");
//!     };
//!     client.wait(ticket).await.unwrap().unwrap()
//! });
//! assert_eq!(commit.version, 1);
//! assert!(!commit.receipts.is_empty());
//!
//! // Drain the deployment and get the ledger back, fully re-attached.
//! let service = dep.shutdown().unwrap();
//! assert_eq!(service.ledger().peers().len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod gateway;
pub mod peer_loop;
pub mod rt;
pub mod sched;
pub mod sync;
pub mod wire;

pub use gateway::{Deployment, GatewayClient, GatewayConfig, GatewayStats, SubmitReply};
pub use peer_loop::{PeerTelemetry, TelemetryCounts};
pub use rt::Runtime;
