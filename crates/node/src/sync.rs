//! Waker-based async synchronization primitives.
//!
//! Channels ([`channel`], [`unbounded`]), one-shot rendezvous
//! ([`oneshot`]) and a broadcast [`Notify`]. None of them know about the
//! executor — they park wakers and wake them — so they compose with
//! [`crate::rt::Runtime`], with `block_on` on a plain thread, or with
//! any other future-driving loop.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use crate::sched;

// ---------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------

struct OneState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Sends the single value of a [`oneshot`] pair.
pub struct OneSender<T> {
    inner: Arc<Mutex<OneState<T>>>,
}

/// Receives the single value of a [`oneshot`] pair; a future resolving
/// to `Some(value)` or `None` when the sender dropped without sending.
pub struct OneReceiver<T> {
    inner: Arc<Mutex<OneState<T>>>,
}

/// Creates a single-use value rendezvous.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let inner = Arc::new(Mutex::new(OneState {
        value: None,
        waker: None,
        sender_alive: true,
        receiver_alive: true,
    }));
    (
        OneSender {
            inner: Arc::clone(&inner),
        },
        OneReceiver { inner },
    )
}

impl<T> OneSender<T> {
    /// Delivers the value; `Err(v)` when the receiver is gone.
    pub fn send(self, v: T) -> Result<(), T> {
        sched::point("oneshot.send");
        let mut s = self.inner.lock().expect("oneshot lock");
        if !s.receiver_alive {
            return Err(v);
        }
        s.value = Some(v);
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        sched::point("oneshot.send.drop");
        let mut s = self.inner.lock().expect("oneshot lock");
        s.sender_alive = false;
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
    }
}

impl<T> OneReceiver<T> {
    /// Takes the value if it was already sent, without waiting.
    pub fn try_take(&mut self) -> Option<T> {
        sched::point("oneshot.try_take");
        self.inner.lock().expect("oneshot lock").value.take()
    }
}

impl<T> Future for OneReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        sched::point("oneshot.recv.poll");
        let mut s = self.inner.lock().expect("oneshot lock");
        if let Some(v) = s.value.take() {
            return Poll::Ready(Some(v));
        }
        if !s.sender_alive {
            return Poll::Ready(None);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for OneReceiver<T> {
    fn drop(&mut self) {
        sched::point("oneshot.recv.drop");
        self.inner.lock().expect("oneshot lock").receiver_alive = false;
    }
}

// ---------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------

struct ChanState<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receiver_alive: bool,
    recv_waker: Option<Waker>,
    send_wakers: VecDeque<Waker>,
}

struct ChanInner<T> {
    state: Mutex<ChanState<T>>,
}

/// Sending half of an mpsc channel (cloneable).
pub struct Sender<T> {
    inner: Arc<ChanInner<T>>,
}

/// Receiving half of an mpsc channel.
pub struct Receiver<T> {
    inner: Arc<ChanInner<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the undelivered value.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// The receiver is gone.
    Closed(T),
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No value currently queued.
    Empty,
    /// Every sender is gone and the queue is drained.
    Closed,
}

/// Creates a bounded mpsc channel: `send` applies backpressure once
/// `capacity` values are queued.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    new_chan(Some(capacity.max(1)))
}

/// Creates an unbounded mpsc channel (`send` never waits).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

fn new_chan<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(ChanInner {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receiver_alive: true,
            recv_waker: None,
            send_wakers: VecDeque::new(),
        }),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("chan lock").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        sched::point("mpsc.send.drop");
        let mut s = self.inner.state.lock().expect("chan lock");
        s.senders -= 1;
        if s.senders == 0 {
            if let Some(w) = s.recv_waker.take() {
                drop(s);
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Queues `v`, waiting for space on a bounded channel.
    pub fn send(&self, v: T) -> Send<'_, T> {
        Send {
            chan: self,
            value: Some(v),
        }
    }

    /// Queues `v` without waiting.
    pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
        sched::point("mpsc.try_send");
        let mut s = self.inner.state.lock().expect("chan lock");
        if !s.receiver_alive {
            return Err(TrySendError::Closed(v));
        }
        if s.capacity.is_some_and(|cap| s.queue.len() >= cap) {
            return Err(TrySendError::Full(v));
        }
        s.queue.push_back(v);
        if let Some(w) = s.recv_waker.take() {
            drop(s);
            w.wake();
        }
        Ok(())
    }
}

/// Future returned by [`Sender::send`].
pub struct Send<'a, T> {
    chan: &'a Sender<T>,
    value: Option<T>,
}

// `Send` holds a shared reference and an owned `Option<T>` — no
// self-references, nothing whose address the future relies on — so
// pinning it guarantees nothing and the impl is unconditionally sound.
// (The auto-impl would require `T: Unpin`; this lifts that bound so the
// projection below can use the safe `Pin::get_mut`.)
impl<T> Unpin for Send<'_, T> {}

impl<T> Future for Send<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        sched::point("mpsc.send.poll");
        let this = self.get_mut();
        let v = this
            .value
            .take()
            // lint: allow(unwrap) — contract: a `Send` future must not be
            // polled again after it returned `Ready`; the panic is the
            // diagnostic for that caller bug, not a recoverable state.
            .expect("polled after completion");
        let mut s = this.chan.inner.state.lock().expect("chan lock");
        if !s.receiver_alive {
            return Poll::Ready(Err(SendError(v)));
        }
        if s.capacity.is_some_and(|cap| s.queue.len() >= cap) {
            this.value = Some(v);
            s.send_wakers.push_back(cx.waker().clone());
            return Poll::Pending;
        }
        s.queue.push_back(v);
        if let Some(w) = s.recv_waker.take() {
            drop(s);
            w.wake();
        }
        Poll::Ready(Ok(()))
    }
}

impl<T> Receiver<T> {
    /// Awaits the next value; `None` once every sender dropped and the
    /// queue drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { chan: self }
    }

    /// Pops a queued value without waiting.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        sched::point("mpsc.try_recv");
        let mut s = self.inner.state.lock().expect("chan lock");
        match s.queue.pop_front() {
            Some(v) => {
                if let Some(w) = s.send_wakers.pop_front() {
                    drop(s);
                    w.wake();
                }
                Ok(v)
            }
            None if s.senders == 0 => Err(TryRecvError::Closed),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        sched::point("mpsc.recv.drop");
        let mut s = self.inner.state.lock().expect("chan lock");
        s.receiver_alive = false;
        s.queue.clear();
        let wakers: Vec<Waker> = s.send_wakers.drain(..).collect();
        drop(s);
        for w in wakers {
            w.wake();
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    chan: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        sched::point("mpsc.recv.poll");
        // `Recv` is just a mutable borrow (always `Unpin`), so the safe
        // projection suffices.
        let this = self.get_mut();
        let mut s = this.chan.inner.state.lock().expect("chan lock");
        if let Some(v) = s.queue.pop_front() {
            if let Some(w) = s.send_wakers.pop_front() {
                drop(s);
                w.wake();
            }
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------

struct NotifyState {
    generation: u64,
    wakers: Vec<Waker>,
}

/// A broadcast wake-up: waiters capture the current generation and
/// resolve once [`Notify::notify_waiters`] advances it. The gateway uses
/// one per ticket table to turn "outcome arrived" into an event-driven
/// wake instead of a poll loop.
#[derive(Clone)]
pub struct Notify {
    state: Arc<Mutex<NotifyState>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates an un-notified instance.
    pub fn new() -> Self {
        Notify {
            state: Arc::new(Mutex::new(NotifyState {
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// A future resolving at the next [`Notify::notify_waiters`] call
    /// after this one.
    pub fn notified(&self) -> Notified {
        // The generation is captured *here*, not at first poll: a
        // notify landing between this call and the first poll must
        // still resolve the future (the checker's `notify` scenarios
        // pin this down).
        sched::point("notify.notified");
        let g = self.state.lock().expect("notify lock").generation;
        Notified {
            state: Arc::clone(&self.state),
            observed: g,
        }
    }

    /// Wakes every current waiter.
    pub fn notify_waiters(&self) {
        sched::point("notify.notify");
        let wakers: Vec<Waker> = {
            let mut s = self.state.lock().expect("notify lock");
            s.generation += 1;
            s.wakers.drain(..).collect()
        };
        for w in wakers {
            w.wake();
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Arc<Mutex<NotifyState>>,
    observed: u64,
}

impl Future for Notified {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        sched::point("notify.poll");
        let mut s = self.state.lock().expect("notify lock");
        if s.generation != self.observed {
            return Poll::Ready(());
        }
        s.wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Runtime;

    #[test]
    fn oneshot_round_trips() {
        let rt = Runtime::new(1);
        let (tx, rx) = oneshot();
        rt.spawn(async move {
            tx.send(7u32).expect("receiver alive");
        });
        assert_eq!(rt.block_on(rx), Some(7));
    }

    #[test]
    fn oneshot_reports_dropped_sender() {
        let rt = Runtime::new(1);
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        assert_eq!(rt.block_on(rx), None);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let rt = Runtime::new(2);
        let (tx, mut rx) = channel::<u32>(2);
        let producer = rt.spawn(async move {
            for i in 0..10 {
                tx.send(i).await.expect("receiver alive");
            }
        });
        let consumer = rt.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        rt.block_on(producer);
        assert_eq!(rt.block_on(consumer), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, mut rx) = channel::<u32>(1);
        tx.try_send(1).expect("space");
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Ok(1));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Closed(3))));
    }

    #[test]
    fn recv_sees_closed_after_senders_drop() {
        let rt = Runtime::new(1);
        let (tx, mut rx) = unbounded::<u32>();
        tx.try_send(1).expect("unbounded");
        drop(tx);
        rt.block_on(async {
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn notify_wakes_parked_waiters() {
        let rt = Runtime::new(2);
        let n = Notify::new();
        let waiter = {
            let n = n.clone();
            rt.spawn(async move {
                n.notified().await;
                42u32
            })
        };
        // Give the waiter a moment to park, then notify.
        std::thread::sleep(std::time::Duration::from_millis(10));
        n.notify_waiters();
        assert_eq!(rt.block_on(waiter), 42);
    }
}
