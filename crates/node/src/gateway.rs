//! The concurrent gateway front door over `LedgerService`.
//!
//! A [`Deployment`] splits a ledger into one pump task plus one event
//! loop per peer (see [`crate::peer_loop`]), then accepts any number of
//! client sessions ([`Deployment::connect`]). Sessions speak the
//! [`crate::wire`] protocol; their submissions are multiplexed into
//! waves by the pump — the existing `tick()`/`drain()` scheduler *is*
//! the wave pump, which is what keeps the concurrent path byte-identical
//! to serial `LedgerService` use — and tickets resolve by async
//! notification: a parked [`Message::Poll`] is answered the moment the
//! wave that commits the submission drains its outcomes, with no poll
//! loop on either side.
//!
//! Backpressure: admission is bounded at
//! [`GatewayConfig::queue_depth`] queued submissions; past that, new
//! submissions are rejected with [`Message::Overloaded`] carrying a
//! retry-after hint, and the client is expected to back off and retry.
//!
//! Determinism: exactly one task (the pump) ever touches the
//! `LedgerService`, and waves compose submissions in arrival order, so
//! a fixed arrival order produces byte-identical state, receipts, and
//! audit history to the serial path — regardless of executor thread
//! count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use medledger_core::{CommitError, CommitOutcome, CoreError, PeerId, PeerNode};
use medledger_engine::{CommitTicket, LedgerService, WaveReport};
use medledger_telemetry::Recorder;

use crate::peer_loop::{self, PeerTelemetry};
use crate::rt::Runtime;
use crate::sync::{self, OneSender};
use crate::wire::{
    duplex_metered, ByteMeter, Envelope, Message, RejectKind, WireCommit, WireConn, WireError,
    WireReject, WireWrite,
};

// ---------------------------------------------------------------------
// Configuration & stats
// ---------------------------------------------------------------------

/// Knobs for a [`Deployment`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Executor worker threads. `1` gives a single-lane deterministic
    /// schedule; more overlaps sessions and peer loops.
    pub threads: usize,
    /// Bound on queued (admitted but not yet waved) submissions; the
    /// admission queue. Past it, submissions get
    /// [`Message::Overloaded`].
    pub queue_depth: usize,
    /// Retry hint carried on [`Message::Overloaded`].
    pub retry_after_ms: u64,
    /// Byte capacity per wire-pipe direction.
    pub pipe_capacity: usize,
    /// Run a wave automatically whenever the event queue goes idle with
    /// work pending. Disable ([`GatewayConfig::manual_pump`]) to drive
    /// waves explicitly via [`Deployment::pump`] — tests use this to
    /// pin wave composition.
    pub auto_pump: bool,
    /// Live-telemetry recorder. Disabled by default; install one
    /// ([`GatewayConfig::recorder`]) and the deployment feeds it
    /// gateway counters, ticket-wait histograms, per-peer wire-byte
    /// gauges, and — via [`medledger_core::System::set_recorder`] —
    /// the core's per-wave phase timings and shard heat map.
    pub telemetry: Recorder,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            threads: 2,
            queue_depth: 1024,
            retry_after_ms: 5,
            pipe_capacity: crate::wire::DEFAULT_PIPE_CAPACITY,
            auto_pump: true,
            telemetry: Recorder::disabled(),
        }
    }
}

impl GatewayConfig {
    /// Sets the executor thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the admission-queue bound.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Sets the [`Message::Overloaded`] retry hint.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Disables automatic waves; drive them with [`Deployment::pump`].
    pub fn manual_pump(mut self) -> Self {
        self.auto_pump = false;
        self
    }

    /// Installs a live-telemetry recorder on the deployment.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }
}

/// Deterministic counters the pump maintains.
#[derive(Clone, Copy, Debug, Default)]
pub struct GatewayStats {
    /// Waves committed (mirrors `LedgerService::waves`).
    pub waves: u64,
    /// Submissions admitted into the queue.
    pub submissions: u64,
    /// Submissions rejected with [`Message::Overloaded`].
    pub overloaded: u64,
    /// Tickets resolved (commits and typed rejections both).
    pub resolved: u64,
    /// High-water mark of the admission queue.
    pub queue_high_water: usize,
    /// Most sessions open at once.
    pub sessions_peak: usize,
}

// ---------------------------------------------------------------------
// Pump internals
// ---------------------------------------------------------------------

enum PumpEvent {
    NewSession {
        id: u64,
        outbox: sync::Sender<Envelope>,
    },
    Frame {
        session: u64,
        env: Envelope,
    },
    SessionClosed {
        id: u64,
    },
    Pump {
        done: OneSender<medledger_core::Result<WaveReport>>,
    },
    Stats {
        reply: OneSender<GatewayStats>,
    },
    Shutdown {
        done: OneSender<medledger_core::Result<LedgerService>>,
    },
}

struct PeerHandle {
    id: PeerId,
    name: String,
    conn: WireConn,
    to_loop: sync::Sender<Box<PeerNode>>,
    from_loop: sync::Receiver<Box<PeerNode>>,
    /// `applied_versions` as of the last scatter — diffed after a wave
    /// to decide which fan-out notifications this peer gets.
    applied_baseline: std::collections::BTreeMap<String, u64>,
    /// This peer's wire-byte tally (chained into the deployment-wide
    /// meter), exported as the `wire.peer.<Name>.bytes` gauge.
    meter: ByteMeter,
}

struct TicketEntry {
    session: u64,
    /// Correlation id of a parked `Poll`, answered at resolution.
    parked: Option<u64>,
    /// Outcome that resolved before anyone asked.
    outcome: Option<Result<WireCommit, WireReject>>,
    /// Admission time, kept only while a recorder is installed — feeds
    /// the `gateway.ticket_wait_us` histogram at resolution.
    submitted: Option<std::time::Instant>,
}

struct Pump {
    service: LedgerService,
    peers: Vec<PeerHandle>,
    sessions: BTreeMap<u64, sync::Sender<Envelope>>,
    tickets: BTreeMap<u64, TicketEntry>,
    engine_map: BTreeMap<CommitTicket, u64>,
    next_ticket: u64,
    stats: GatewayStats,
    cfg: GatewayConfig,
}

fn wire_err(context: &str, e: WireError) -> CoreError {
    CoreError::BadAgreement(format!("{context}: {e}"))
}

/// Flattens an engine outcome into its wire form.
#[allow(clippy::result_large_err)]
fn to_wire_outcome(res: Result<CommitOutcome, CommitError>) -> Result<WireCommit, WireReject> {
    match res {
        Ok(o) => Ok(WireCommit {
            version: o.version(),
            changed_attrs: o.changed_attrs().to_vec(),
            cascades: o.cascades().len() as u64,
            visibility_latency_ms: o.visibility_latency_ms(),
            sync_latency_ms: o.sync_latency_ms(),
            receipts: o.receipts,
        }),
        Err(e) => Err(to_wire_reject(&e)),
    }
}

fn to_wire_reject(e: &CommitError) -> WireReject {
    let (kind, reason, table_id, receipt) = match e {
        CommitError::PermissionDenied { reason, receipt } => (
            RejectKind::PermissionDenied,
            reason.clone(),
            String::new(),
            receipt.clone(),
        ),
        CommitError::Barrier { reason, receipt } => (
            RejectKind::Barrier,
            reason.clone(),
            String::new(),
            receipt.clone(),
        ),
        CommitError::Reverted {
            reason, receipt, ..
        } => (
            RejectKind::Reverted,
            reason.clone(),
            String::new(),
            receipt.clone(),
        ),
        CommitError::NoChange { table_id } => (
            RejectKind::NoChange,
            "no observable change of the shared view".into(),
            table_id.clone(),
            None,
        ),
        CommitError::EmptyBatch { table_id } => (
            RejectKind::EmptyBatch,
            "no staged writes".into(),
            table_id.clone(),
            None,
        ),
        CommitError::Conflicted { table_id } => (
            RejectKind::Conflicted,
            "table already claimed by a queued update".into(),
            table_id.clone(),
            None,
        ),
        CommitError::Untranslatable { reason } => (
            RejectKind::Untranslatable,
            reason.clone(),
            String::new(),
            None,
        ),
        CommitError::Engine(e) => (RejectKind::Engine, e.to_string(), String::new(), None),
        CommitError::AfterCommit { source } => {
            let inner = to_wire_reject(source);
            (
                RejectKind::AfterCommit,
                format!("post-commit step failed: {}", inner.reason),
                inner.table_id,
                inner.receipt,
            )
        }
    };
    WireReject {
        kind,
        reason,
        table_id,
        receipt,
    }
}

impl Pump {
    async fn run(mut self, mut events: sync::Receiver<PumpEvent>) {
        loop {
            let event = match events.try_recv() {
                Ok(e) => e,
                Err(sync::TryRecvError::Empty) => {
                    if self.cfg.auto_pump && self.service.has_work() {
                        // The queue went idle with work pending: every
                        // submission that arrived during the previous
                        // wave rides the next one together.
                        let _ = self.run_wave().await;
                        continue;
                    }
                    match events.recv().await {
                        Some(e) => e,
                        None => return,
                    }
                }
                Err(sync::TryRecvError::Closed) => return,
            };
            match event {
                PumpEvent::NewSession { id, outbox } => {
                    self.sessions.insert(id, outbox);
                    self.stats.sessions_peak = self.stats.sessions_peak.max(self.sessions.len());
                    self.cfg
                        .telemetry
                        .set_max("gateway.sessions_peak", self.sessions.len() as u64);
                }
                PumpEvent::SessionClosed { id } => {
                    self.sessions.remove(&id);
                    self.tickets.retain(|_, t| t.session != id);
                }
                PumpEvent::Frame { session, env } => self.handle_frame(session, env),
                PumpEvent::Pump { done } => {
                    let report = self.run_wave().await;
                    let _ = done.send(report);
                }
                PumpEvent::Stats { reply } => {
                    let _ = reply.send(self.stats);
                }
                PumpEvent::Shutdown { done } => {
                    let _ = done.send(self.shutdown().await);
                    return;
                }
            }
        }
    }

    fn reply(&self, session: u64, corr: u64, body: Message) {
        if let Some(outbox) = self.sessions.get(&session) {
            let _ = outbox.try_send(Envelope { corr, body });
        }
    }

    fn handle_frame(&mut self, session: u64, env: Envelope) {
        let corr = env.corr;
        match env.body {
            Message::Submit {
                peer,
                table,
                writes,
            } => {
                if self.service.pending_submissions() >= self.cfg.queue_depth {
                    self.stats.overloaded += 1;
                    self.cfg.telemetry.add("gateway.overloaded", 1);
                    self.reply(
                        session,
                        corr,
                        Message::Overloaded {
                            retry_after_ms: self.cfg.retry_after_ms,
                        },
                    );
                    return;
                }
                let wire_ticket = self.next_ticket;
                self.next_ticket += 1;
                let result = self.enqueue(&peer, table, writes);
                match result {
                    Ok(engine_ticket) => {
                        self.engine_map.insert(engine_ticket, wire_ticket);
                        self.tickets.insert(
                            wire_ticket,
                            TicketEntry {
                                session,
                                parked: None,
                                outcome: None,
                                submitted: self
                                    .cfg
                                    .telemetry
                                    .is_enabled()
                                    .then(std::time::Instant::now),
                            },
                        );
                        self.stats.submissions += 1;
                        self.stats.queue_high_water = self
                            .stats
                            .queue_high_water
                            .max(self.service.pending_submissions());
                        self.cfg.telemetry.add("gateway.submissions", 1);
                        self.cfg.telemetry.set_max(
                            "gateway.queue_high_water",
                            self.service.pending_submissions() as u64,
                        );
                        self.reply(
                            session,
                            corr,
                            Message::Accepted {
                                ticket: wire_ticket,
                            },
                        );
                    }
                    Err(reject) => self.reply(
                        session,
                        corr,
                        Message::Outcome {
                            ticket: wire_ticket,
                            result: Err(reject),
                        },
                    ),
                }
            }
            Message::Poll { ticket, park } => {
                let Some(entry) = self.tickets.get_mut(&ticket) else {
                    self.reply(
                        session,
                        corr,
                        Message::Outcome {
                            ticket,
                            result: Err(WireReject {
                                kind: RejectKind::Engine,
                                reason: format!("ticket {ticket} is unknown or already taken"),
                                table_id: String::new(),
                                receipt: None,
                            }),
                        },
                    );
                    return;
                };
                if let Some(result) = entry.outcome.take() {
                    self.tickets.remove(&ticket);
                    self.reply(session, corr, Message::Outcome { ticket, result });
                } else if park {
                    entry.parked = Some(corr);
                } else {
                    self.reply(session, corr, Message::Pending { ticket });
                }
            }
            Message::StatsRequest => {
                let json = self.stats_json();
                self.reply(session, corr, Message::Stats { json });
            }
            Message::Close => self.reply(session, corr, Message::Closed),
            _ => {}
        }
    }

    /// Renders the deterministic gateway counters — plus, when a
    /// telemetry registry is installed, the full metric registry
    /// snapshot — as one JSON document for [`Message::Stats`].
    fn stats_json(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "{{\"waves\":{},\"submissions\":{},\"overloaded\":{},\
             \"resolved\":{},\"queue_high_water\":{},\"sessions_peak\":{}",
            s.waves, s.submissions, s.overloaded, s.resolved, s.queue_high_water, s.sessions_peak
        );
        if let Some(registry) = self.cfg.telemetry.registry() {
            out.push_str(",\"registry\":");
            out.push_str(&registry.snapshot().render_json());
        }
        out.push('}');
        out
    }

    #[allow(clippy::result_large_err)]
    fn enqueue(
        &mut self,
        peer: &str,
        table: String,
        writes: Vec<WireWrite>,
    ) -> Result<CommitTicket, WireReject> {
        let peer_id = self
            .service
            .ledger()
            .system()
            .peer_id(peer)
            .map_err(|e| WireReject {
                kind: RejectKind::Engine,
                reason: e.to_string(),
                table_id: table.clone(),
                receipt: None,
            })?;
        let mut sub = self.service.submit(peer_id, table);
        for w in writes {
            sub = match w {
                WireWrite::Shared(op) => sub.write(op),
                WireWrite::Source { table, op } => sub.write_source(table, op),
            };
        }
        sub.submit().map_err(|e| to_wire_reject(&e))
    }

    /// Gathers every peer, runs one wave, scatters peers back with the
    /// wave's notifications, and routes resolved outcomes to their
    /// sessions (answering parked polls).
    async fn run_wave(&mut self) -> medledger_core::Result<WaveReport> {
        if !self.service.has_work() {
            return Ok(WaveReport::default());
        }
        let wave = self.service.waves() + 1;
        self.gather(wave).await?;
        let tick_result = self.service.tick();
        let resolved = self.service.take_resolved();
        self.scatter(wave, tick_result.as_ref().ok().copied())
            .await?;
        for (engine_ticket, result) in resolved {
            self.route(engine_ticket, to_wire_outcome(result));
        }
        let report = tick_result?;
        self.stats.waves = self.service.waves();
        if self.cfg.telemetry.is_enabled() {
            for ph in &self.peers {
                self.cfg
                    .telemetry
                    .set(&format!("wire.peer.{}.bytes", ph.name), ph.meter.bytes());
            }
        }
        Ok(report)
    }

    /// Checks every peer's state out of its event loop and attaches it
    /// to the system (tick and durable flush both require the full peer
    /// set present).
    async fn gather(&mut self, wave: u64) -> medledger_core::Result<()> {
        for ph in &mut self.peers {
            ph.conn
                .send(&Envelope {
                    corr: wave,
                    body: Message::Checkout {
                        peer: ph.name.clone(),
                        wave,
                    },
                })
                .await
                .map_err(|e| wire_err("checkout send", e))?;
            match ph
                .conn
                .recv()
                .await
                .map_err(|e| wire_err("checkout ack", e))?
            {
                Some(Envelope {
                    body: Message::CheckoutAck { .. },
                    ..
                }) => {}
                other => {
                    return Err(CoreError::BadAgreement(format!(
                        "peer `{}` answered checkout with {other:?}",
                        ph.name
                    )))
                }
            }
            let node = ph.from_loop.recv().await.ok_or_else(|| {
                CoreError::BadAgreement(format!("peer `{}` loop died mid-checkout", ph.name))
            })?;
            self.service.ledger_mut().system_mut().attach_peer(*node)?;
        }
        Ok(())
    }

    /// Detaches every peer and returns it to its event loop, carrying
    /// the wave's fan-out / seal notifications when the wave committed.
    async fn scatter(
        &mut self,
        wave: u64,
        report: Option<WaveReport>,
    ) -> medledger_core::Result<()> {
        for ph in &mut self.peers {
            let before = ph.applied_baseline.clone();
            let node = self.service.ledger_mut().system_mut().detach_peer(ph.id)?;
            if let Some(report) = report {
                for (table, version) in &node.applied_versions {
                    if before.get(table) != Some(version) {
                        ph.conn
                            .send(&Envelope {
                                corr: 0,
                                body: Message::FanOut {
                                    wave,
                                    table: table.clone(),
                                    version: *version,
                                },
                            })
                            .await
                            .map_err(|e| wire_err("fan-out", e))?;
                    }
                }
                // One aggregated threshold ack per wave member seals
                // the ack round; the same members ride the wave's one
                // consensus block.
                ph.conn
                    .send(&Envelope {
                        corr: 0,
                        body: Message::AckSealed {
                            wave,
                            acks: report.members as u64,
                        },
                    })
                    .await
                    .map_err(|e| wire_err("ack-sealed", e))?;
                ph.conn
                    .send(&Envelope {
                        corr: 0,
                        body: Message::ConsensusSealed {
                            wave,
                            commits: report.members as u64,
                        },
                    })
                    .await
                    .map_err(|e| wire_err("consensus-sealed", e))?;
            }
            ph.applied_baseline = node.applied_versions.clone();
            let _ = ph.to_loop.try_send(Box::new(node));
            ph.conn
                .send(&Envelope {
                    corr: wave,
                    body: Message::Checkin {
                        peer: ph.name.clone(),
                        wave,
                    },
                })
                .await
                .map_err(|e| wire_err("checkin", e))?;
        }
        Ok(())
    }

    fn route(&mut self, engine_ticket: CommitTicket, result: Result<WireCommit, WireReject>) {
        self.stats.resolved += 1;
        self.cfg.telemetry.add("gateway.resolved", 1);
        let Some(wire_ticket) = self.engine_map.remove(&engine_ticket) else {
            return;
        };
        let Some(entry) = self.tickets.get_mut(&wire_ticket) else {
            return;
        };
        if let Some(submitted) = entry.submitted.take() {
            self.cfg.telemetry.record(
                "gateway.ticket_wait_us",
                submitted.elapsed().as_micros() as u64,
            );
        }
        if let Some(corr) = entry.parked.take() {
            let session = entry.session;
            self.tickets.remove(&wire_ticket);
            self.reply(
                session,
                corr,
                Message::Outcome {
                    ticket: wire_ticket,
                    result,
                },
            );
        } else {
            entry.outcome = Some(result);
        }
    }

    /// Drains every queued submission, pushes any still-unclaimed
    /// outcomes to their sessions, recalls every peer's state, stops
    /// the loops, and hands the (fully re-attached) service back.
    async fn shutdown(mut self) -> medledger_core::Result<LedgerService> {
        while self.service.has_work() {
            self.run_wave().await?;
        }
        // Unclaimed outcomes: push proactively (corr 0) so a client
        // mid-`wait` still gets its resolution before the `Closed`.
        let tickets = std::mem::take(&mut self.tickets);
        for (wire_ticket, entry) in tickets {
            if let Some(result) = entry.outcome {
                self.reply(
                    entry.session,
                    0,
                    Message::Outcome {
                        ticket: wire_ticket,
                        result,
                    },
                );
            }
        }
        let final_wave = self.service.waves() + 1;
        for ph in &mut self.peers {
            ph.conn
                .send(&Envelope {
                    corr: final_wave,
                    body: Message::Checkout {
                        peer: ph.name.clone(),
                        wave: final_wave,
                    },
                })
                .await
                .map_err(|e| wire_err("final checkout", e))?;
            match ph
                .conn
                .recv()
                .await
                .map_err(|e| wire_err("final checkout ack", e))?
            {
                Some(Envelope {
                    body: Message::CheckoutAck { .. },
                    ..
                }) => {}
                other => {
                    return Err(CoreError::BadAgreement(format!(
                        "peer `{}` answered final checkout with {other:?}",
                        ph.name
                    )))
                }
            }
            let node = ph.from_loop.recv().await.ok_or_else(|| {
                CoreError::BadAgreement(format!("peer `{}` loop died at shutdown", ph.name))
            })?;
            self.service.ledger_mut().system_mut().attach_peer(*node)?;
            ph.conn
                .send(&Envelope {
                    corr: final_wave,
                    body: Message::Close,
                })
                .await
                .map_err(|e| wire_err("loop close", e))?;
            // The loop replies `Closed` and exits; tolerate it dying
            // without the courtesy frame.
            let _ = ph.conn.recv().await;
        }
        for outbox in self.sessions.values() {
            let _ = outbox.try_send(Envelope {
                corr: 0,
                body: Message::Closed,
            });
        }
        Ok(self.service)
    }
}

// ---------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------

/// A running multi-node deployment: one pump task owning the
/// [`LedgerService`], one event loop per peer, and a front door for
/// client sessions.
pub struct Deployment {
    rt: Runtime,
    events: sync::Sender<PumpEvent>,
    meter: ByteMeter,
    next_session: Arc<AtomicU64>,
    telemetry: Vec<(String, PeerTelemetry)>,
    pipe_capacity: usize,
}

impl Deployment {
    /// Splits `service` into per-peer event loops plus a pump task and
    /// starts serving. Every registered peer's state is detached from
    /// the system and moved into its own loop.
    pub fn start(
        mut service: LedgerService,
        cfg: GatewayConfig,
    ) -> medledger_core::Result<Deployment> {
        let rt = Runtime::new(cfg.threads);
        let meter = ByteMeter::new();
        if cfg.telemetry.is_enabled() {
            // Install the recorder while every peer is still attached,
            // so each one's sharded mirrors wire into the heat map.
            service
                .ledger_mut()
                .system_mut()
                .set_recorder(cfg.telemetry.clone());
        }
        let peer_ids = service.ledger().peers();
        let mut peers = Vec::with_capacity(peer_ids.len());
        let mut telemetry = Vec::with_capacity(peer_ids.len());
        for id in peer_ids {
            let name = service.ledger().peer_name(id)?;
            let node = service.ledger_mut().system_mut().detach_peer(id)?;
            let baseline = node.applied_versions.clone();
            let peer_meter = meter.chained();
            let (pump_conn, loop_conn) = duplex_metered(cfg.pipe_capacity, &peer_meter);
            let (to_loop, loop_inbox) = sync::unbounded();
            let (loop_outbox, from_loop) = sync::unbounded();
            let tele = PeerTelemetry::default();
            telemetry.push((name.clone(), tele.clone()));
            rt.spawn(peer_loop::run(
                loop_conn,
                Box::new(node),
                loop_inbox,
                loop_outbox,
                tele,
            ));
            peers.push(PeerHandle {
                id,
                name,
                conn: pump_conn,
                to_loop,
                from_loop,
                applied_baseline: baseline,
                meter: peer_meter,
            });
        }
        let (events, inbox) = sync::unbounded();
        let pipe_capacity = cfg.pipe_capacity;
        let pump = Pump {
            service,
            peers,
            sessions: BTreeMap::new(),
            tickets: BTreeMap::new(),
            engine_map: BTreeMap::new(),
            next_ticket: 1,
            stats: GatewayStats::default(),
            cfg,
        };
        rt.spawn(pump.run(inbox));
        Ok(Deployment {
            rt,
            events,
            meter,
            next_session: Arc::new(AtomicU64::new(1)),
            telemetry,
            pipe_capacity,
        })
    }

    /// Opens a client session. The returned client owns one end of a
    /// framed duplex conn; a reader task and a writer task serve the
    /// other end, so thousands of sessions can be open at once.
    pub fn connect(&self) -> GatewayClient {
        // ordering: session-id
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let (client_conn, server_conn) = duplex_metered(self.pipe_capacity, &self.meter);
        let (mut srv_tx, mut srv_rx) = server_conn.split();
        let (outbox, mut outbox_rx) = sync::unbounded::<Envelope>();
        let _ = self.events.try_send(PumpEvent::NewSession { id, outbox });
        self.rt.spawn(async move {
            while let Some(env) = outbox_rx.recv().await {
                if srv_tx.send(&env).await.is_err() {
                    break;
                }
            }
        });
        let events = self.events.clone();
        self.rt.spawn(async move {
            while let Ok(Some(env)) = srv_rx.recv().await {
                if events
                    .try_send(PumpEvent::Frame { session: id, env })
                    .is_err()
                {
                    break;
                }
            }
            let _ = events.try_send(PumpEvent::SessionClosed { id });
        });
        GatewayClient {
            conn: client_conn,
            next_corr: 1,
            pushed: BTreeMap::new(),
        }
    }

    /// Runs one wave now (manual-pump mode; harmless no-op when no work
    /// is queued).
    pub fn pump(&self) -> medledger_core::Result<WaveReport> {
        let (tx, rx) = sync::oneshot();
        self.events
            .try_send(PumpEvent::Pump { done: tx })
            .map_err(|_| CoreError::BadAgreement("pump is gone".into()))?;
        self.rt
            .block_on(rx)
            .ok_or_else(|| CoreError::BadAgreement("pump dropped the wave request".into()))?
    }

    /// The pump's deterministic counters.
    pub fn stats(&self) -> GatewayStats {
        let (tx, rx) = sync::oneshot();
        if self
            .events
            .try_send(PumpEvent::Stats { reply: tx })
            .is_err()
        {
            return GatewayStats::default();
        }
        self.rt.block_on(rx).unwrap_or_default()
    }

    /// Total bytes pushed through every wire pipe of this deployment
    /// (frames to/from sessions and peer loops alike).
    pub fn wire_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// Per-peer event-loop telemetry, in peer account order.
    pub fn telemetry(&self) -> Vec<(String, crate::peer_loop::TelemetryCounts)> {
        self.telemetry
            .iter()
            .map(|(n, t)| (n.clone(), t.snapshot()))
            .collect()
    }

    /// Blocks on a future using the deployment's runtime — how
    /// synchronous callers drive a [`GatewayClient`].
    pub fn block_on<F: std::future::Future>(&self, fut: F) -> F::Output {
        self.rt.block_on(fut)
    }

    /// Spawns a future onto the deployment's executor (e.g. a client
    /// driven concurrently with the caller).
    pub fn spawn<F>(&self, fut: F) -> crate::rt::JoinHandle<F::Output>
    where
        F: std::future::Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.rt.spawn(fut)
    }

    /// A cloneable handle onto the deployment's executor.
    pub fn handle(&self) -> crate::rt::Handle {
        self.rt.handle()
    }

    /// Drains every queued submission, stops loops and sessions, and
    /// returns the service with all peers re-attached (state intact,
    /// nothing flushed or consumed — callers inspect or keep using it).
    pub fn shutdown(self) -> medledger_core::Result<LedgerService> {
        let (tx, rx) = sync::oneshot();
        self.events
            .try_send(PumpEvent::Shutdown { done: tx })
            .map_err(|_| CoreError::BadAgreement("pump is gone".into()))?;
        let service = self
            .rt
            .block_on(rx)
            .ok_or_else(|| CoreError::BadAgreement("pump dropped the shutdown request".into()))??;
        // Let in-flight deliveries (final outcomes, Closed frames)
        // reach their sessions before stopping the workers.
        self.rt.drain(std::time::Duration::from_secs(5));
        self.rt.shutdown();
        Ok(service)
    }

    /// Full graceful stop: [`Deployment::shutdown`] then
    /// [`LedgerService::close`] (drains, then flushes durable state).
    pub fn close(self) -> medledger_core::Result<()> {
        self.shutdown()?.close()
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Reply to a [`GatewayClient::submit`].
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitReply {
    /// Admitted; the outcome will resolve under `ticket`.
    Accepted {
        /// Ticket to [`GatewayClient::wait`] on.
        ticket: u64,
    },
    /// The admission queue is full; back off and retry.
    Overloaded {
        /// Suggested backoff.
        retry_after_ms: u64,
    },
    /// Rejected before admission (unknown peer, empty batch, …).
    Rejected(WireReject),
}

/// One client session against a [`Deployment`]'s gateway.
pub struct GatewayClient {
    conn: WireConn,
    next_corr: u64,
    /// Outcomes pushed out-of-band (shutdown flush) before we asked.
    pushed: BTreeMap<u64, Result<WireCommit, WireReject>>,
}

impl GatewayClient {
    fn corr(&mut self) -> u64 {
        let c = self.next_corr;
        self.next_corr += 1;
        c
    }

    /// Submits staged writes by `peer` against shared `table`.
    pub async fn submit(
        &mut self,
        peer: &str,
        table: &str,
        writes: Vec<WireWrite>,
    ) -> Result<SubmitReply, WireError> {
        let corr = self.corr();
        self.conn
            .send(&Envelope {
                corr,
                body: Message::Submit {
                    peer: peer.into(),
                    table: table.into(),
                    writes,
                },
            })
            .await?;
        loop {
            let env = self.conn.recv().await?.ok_or(WireError::Closed)?;
            if env.corr != corr {
                self.stash(env);
                continue;
            }
            return Ok(match env.body {
                Message::Accepted { ticket } => SubmitReply::Accepted { ticket },
                Message::Overloaded { retry_after_ms } => {
                    SubmitReply::Overloaded { retry_after_ms }
                }
                Message::Outcome {
                    result: Err(reject),
                    ..
                } => SubmitReply::Rejected(reject),
                other => {
                    return Err(WireError::Codec(medledger_storage::StorageError::Codec(
                        format!("unexpected submit reply {other:?}"),
                    )))
                }
            });
        }
    }

    /// Waits (event-driven — a parked poll, no retry loop) until
    /// `ticket` resolves and takes its outcome.
    pub async fn wait(&mut self, ticket: u64) -> Result<Result<WireCommit, WireReject>, WireError> {
        if let Some(result) = self.pushed.remove(&ticket) {
            return Ok(result);
        }
        let corr = self.corr();
        self.conn
            .send(&Envelope {
                corr,
                body: Message::Poll { ticket, park: true },
            })
            .await?;
        loop {
            let env = self.conn.recv().await?.ok_or(WireError::Closed)?;
            match env.body {
                Message::Outcome {
                    ticket: got,
                    result,
                } if got == ticket => return Ok(result),
                _ => self.stash(env),
            }
            if let Some(result) = self.pushed.remove(&ticket) {
                return Ok(result);
            }
        }
    }

    /// Asks once whether `ticket` has resolved, without parking.
    pub async fn poll(
        &mut self,
        ticket: u64,
    ) -> Result<Option<Result<WireCommit, WireReject>>, WireError> {
        if let Some(result) = self.pushed.remove(&ticket) {
            return Ok(Some(result));
        }
        let corr = self.corr();
        self.conn
            .send(&Envelope {
                corr,
                body: Message::Poll {
                    ticket,
                    park: false,
                },
            })
            .await?;
        loop {
            let env = self.conn.recv().await?.ok_or(WireError::Closed)?;
            if env.corr != corr {
                self.stash(env);
                continue;
            }
            return Ok(match env.body {
                Message::Pending { .. } => None,
                Message::Outcome { result, .. } => Some(result),
                _ => None,
            });
        }
    }

    /// Asks the gateway for a live statistics snapshot: the JSON body
    /// of the [`Message::Stats`] reply (deterministic gateway counters
    /// plus the telemetry registry when one is installed).
    pub async fn stats(&mut self) -> Result<String, WireError> {
        let corr = self.corr();
        self.conn
            .send(&Envelope {
                corr,
                body: Message::StatsRequest,
            })
            .await?;
        loop {
            let env = self.conn.recv().await?.ok_or(WireError::Closed)?;
            if env.corr != corr {
                self.stash(env);
                continue;
            }
            return match env.body {
                Message::Stats { json } => Ok(json),
                other => Err(WireError::Codec(medledger_storage::StorageError::Codec(
                    format!("unexpected stats reply {other:?}"),
                ))),
            };
        }
    }

    /// Orderly goodbye; the session's tasks wind down on EOF.
    pub async fn close(mut self) -> Result<(), WireError> {
        let corr = self.corr();
        self.conn
            .send(&Envelope {
                corr,
                body: Message::Close,
            })
            .await?;
        loop {
            match self.conn.recv().await {
                Ok(Some(env)) if env.body == Message::Closed => return Ok(()),
                Ok(Some(env)) => self.stash(env),
                Ok(None) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn stash(&mut self, env: Envelope) {
        if let Message::Outcome { ticket, result } = env.body {
            self.pushed.insert(ticket, result);
        }
    }
}
