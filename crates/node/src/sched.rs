//! Scheduler shim: instrumentation points for deterministic model
//! checking.
//!
//! The runtime and its synchronization primitives call [`point`] at the
//! places where a concurrency bug could hide — entry to a send, the gap
//! between reading a queue length and reading a counter, the instant
//! before a waker is parked. In production no hook is installed and a
//! `point` is a single thread-local read: effectively free, always
//! compiled in, never feature-gated (so the shipped binary is the
//! checked binary).
//!
//! Under the `medledger-check` model checker each model thread installs
//! a [`SchedHook`]. `point` then hands control to the checker's
//! scheduler, which explores every interleaving of the instrumented
//! threads (bounded DFS or seeded random sampling). The traced atomics
//! ([`TracedAtomicU8`], [`TracedAtomicU64`], [`TracedAtomicBool`])
//! additionally model *weak-memory staleness*: a `Relaxed` load may
//! return any value the atomic held since the loading thread's last
//! synchronizing access to it — each such choice is a decision the
//! checker enumerates and replays.
//!
//! # Placement rules (load-bearing)
//!
//! A [`point`] suspends the calling model thread and may run another
//! one, so a `point` **must never be placed while a lock is held**: the
//! other thread could block on that lock while the suspended holder is
//! not scheduled, deadlocking the host process (not the model). Traced
//! atomic operations are safe anywhere — they only record a *value
//! choice* (no thread switch), which is why the executor can trace its
//! `active` counter while holding the run-queue lock.
//!
//! # Memory-model simplification
//!
//! The staleness model is per-location coherence only:
//! - `Relaxed` loads may observe any value at or after the thread's
//!   coherence floor for that atomic (the floor advances to whatever
//!   index the load picked, so a single thread never sees a location
//!   move backwards).
//! - `Acquire`/`SeqCst` loads observe the latest value and advance the
//!   floor to it.
//! - Read-modify-writes (`fetch_add`, `compare_exchange`, ...) always
//!   operate on the latest value, as real hardware does.
//!
//! Crucially, mutex-induced happens-before is **not** credited: a value
//! published under a lock and read via a `Relaxed` load on another
//! thread still shows up stale. That is stricter than the C++ model,
//! and it is the basis of the ordering policy in
//! `crates/check/ordering_policy.toml` — every atomic protocol in this
//! crate must be correct from its own orderings alone, without leaning
//! on incidental lock synchronization.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Checker-side scheduler interface. Installed per model thread by the
/// `medledger-check` harness; production threads never install one.
pub trait SchedHook {
    /// A potential thread switch. The hook may suspend the calling
    /// thread and run any other runnable model thread before returning.
    /// Must only be called while the caller holds no locks.
    fn point(&self, label: &'static str);

    /// A nondeterministic choice among `options` alternatives (used for
    /// weak-memory value selection). Must **not** switch threads — it
    /// is called from inside lock-held regions.
    fn choose(&self, label: &'static str, options: usize) -> usize;
}

thread_local! {
    static HOOK: RefCell<Option<Arc<dyn SchedHook>>> = const { RefCell::new(None) };
    /// Per-(thread, atomic) coherence floor: index into the atomic's
    /// value history below which this thread can no longer read.
    static FLOORS: RefCell<HashMap<usize, usize>> = RefCell::new(HashMap::new());
}

/// Installs `hook` for the calling thread and resets its coherence
/// floors. Called by the model-checker harness at model-thread start.
pub fn install(hook: Arc<dyn SchedHook>) {
    FLOORS.with(|f| f.borrow_mut().clear());
    HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Removes the calling thread's hook (model-thread teardown).
pub fn uninstall() {
    HOOK.with(|h| *h.borrow_mut() = None);
    FLOORS.with(|f| f.borrow_mut().clear());
}

/// Whether the calling thread is running under a model-checker hook.
pub fn hooked() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

/// Declares a potential thread-switch point. No-op in production and
/// while panicking (so destructors running during a model-abort unwind
/// cannot re-enter the scheduler).
#[inline]
pub fn point(label: &'static str) {
    if std::thread::panicking() {
        return;
    }
    let hook = HOOK.with(|h| h.borrow().clone());
    if let Some(h) = hook {
        h.point(label);
    }
}

/// Asks the hook to pick one of `options` alternatives; `None` when
/// unhooked or only one option exists.
fn choose(label: &'static str, options: usize) -> Option<usize> {
    if options <= 1 || std::thread::panicking() {
        return None;
    }
    let hook = HOOK.with(|h| h.borrow().clone());
    hook.map(|h| h.choose(label, options).min(options - 1))
}

fn floor_of(key: usize) -> usize {
    FLOORS.with(|f| f.borrow().get(&key).copied().unwrap_or(0))
}

fn set_floor(key: usize, v: usize) {
    FLOORS.with(|f| {
        f.borrow_mut().insert(key, v);
    });
}

macro_rules! traced_atomic {
    ($(#[$doc:meta])* $name:ident, $atomic:ty, $value:ty) => {
        $(#[$doc])*
        pub struct $name {
            label: &'static str,
            inner: $atomic,
            /// Every value the atomic has held, oldest first. Only
            /// populated under a hook; empty (and untouched) in
            /// production.
            hist: Mutex<Vec<$value>>,
        }

        impl $name {
            /// Creates the atomic with an initial value. `label` names
            /// the site in checker decision traces.
            pub fn new(label: &'static str, v: $value) -> Self {
                $name {
                    label,
                    inner: <$atomic>::new(v),
                    hist: Mutex::new(Vec::new()),
                }
            }

            fn key(&self) -> usize {
                self as *const _ as usize
            }

            /// Appends the latest inner value if the history is empty
            /// (first hooked access) and returns the locked history.
            fn hist_mut(&self) -> std::sync::MutexGuard<'_, Vec<$value>> {
                let mut h = self.hist.lock().expect("traced atomic history lock");
                if h.is_empty() {
                    // ordering: traced-passthrough
                    h.push(self.inner.load(Ordering::SeqCst));
                }
                h
            }

            /// Loads the value. Under a hook, a `Relaxed` load may
            /// return any value at or after the calling thread's
            /// coherence floor — a checker decision.
            pub fn load(&self, ord: Ordering) -> $value {
                if !hooked() {
                    return self.inner.load(ord);
                }
                let h = self.hist_mut();
                let latest = h.len() - 1;
                let idx = match ord {
                    // ordering: traced-passthrough
                    Ordering::Relaxed => {
                        let floor = floor_of(self.key()).min(latest);
                        floor + choose(self.label, latest - floor + 1).unwrap_or(0)
                    }
                    _ => latest,
                };
                set_floor(self.key(), idx);
                h[idx]
            }

            /// Stores `v` (always the latest value in the history).
            pub fn store(&self, v: $value, ord: Ordering) {
                if !hooked() {
                    return self.inner.store(v, ord);
                }
                let mut h = self.hist_mut();
                // ordering: traced-passthrough
                self.inner.store(v, Ordering::SeqCst);
                h.push(v);
                set_floor(self.key(), h.len() - 1);
            }

            /// Compare-exchange on the latest value (RMWs never act on
            /// stale values, matching hardware).
            pub fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                if !hooked() {
                    return self.inner.compare_exchange(current, new, success, failure);
                }
                let mut h = self.hist_mut();
                let r = self
                    .inner
                    // ordering: traced-passthrough
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                if r.is_ok() {
                    h.push(new);
                }
                set_floor(self.key(), h.len() - 1);
                r
            }
        }
    };
}

traced_atomic!(
    /// Shim over [`AtomicU8`] with hook-visible value history.
    TracedAtomicU8,
    AtomicU8,
    u8
);
traced_atomic!(
    /// Shim over [`AtomicU64`] with hook-visible value history.
    TracedAtomicU64,
    AtomicU64,
    u64
);
traced_atomic!(
    /// Shim over [`AtomicBool`] with hook-visible value history.
    TracedAtomicBool,
    AtomicBool,
    bool
);

impl TracedAtomicU64 {
    /// Adds `delta` to the latest value, returning the previous value.
    pub fn fetch_add(&self, delta: u64, ord: Ordering) -> u64 {
        if !hooked() {
            return self.inner.fetch_add(delta, ord);
        }
        let mut h = self.hist_mut();
        // ordering: traced-passthrough
        let prev = self.inner.fetch_add(delta, Ordering::SeqCst);
        h.push(prev.wrapping_add(delta));
        set_floor(self.key(), h.len() - 1);
        prev
    }

    /// Subtracts `delta` from the latest value, returning the previous
    /// value.
    pub fn fetch_sub(&self, delta: u64, ord: Ordering) -> u64 {
        if !hooked() {
            return self.inner.fetch_sub(delta, ord);
        }
        let mut h = self.hist_mut();
        // ordering: traced-passthrough
        let prev = self.inner.fetch_sub(delta, Ordering::SeqCst);
        h.push(prev.wrapping_sub(delta));
        set_floor(self.key(), h.len() - 1);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hook that always picks the oldest (most stale) permitted value.
    struct Stalest;
    impl SchedHook for Stalest {
        fn point(&self, _label: &'static str) {}
        fn choose(&self, _label: &'static str, _options: usize) -> usize {
            0
        }
    }

    #[test]
    fn unhooked_atomics_pass_through() {
        let a = TracedAtomicU64::new("t", 1);
        assert_eq!(a.load(Ordering::Relaxed), 1);
        a.store(5, Ordering::Release);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert!(a.hist.lock().expect("hist").is_empty());
    }

    #[test]
    fn hooked_relaxed_load_can_be_stale_but_coherent() {
        install(Arc::new(Stalest));
        let a = TracedAtomicU64::new("t", 0);
        assert_eq!(a.load(Ordering::Relaxed), 0);
        a.inner.store(9, Ordering::SeqCst); // simulate another thread
        a.hist.lock().expect("hist").push(9);
        // Stalest hook picks the floor: still sees 0.
        assert_eq!(a.load(Ordering::Relaxed), 0);
        // An Acquire load advances the floor to the latest...
        assert_eq!(a.load(Ordering::Acquire), 9);
        // ...after which Relaxed can no longer go backwards.
        assert_eq!(a.load(Ordering::Relaxed), 9);
        uninstall();
    }

    #[test]
    fn hooked_rmw_acts_on_latest() {
        install(Arc::new(Stalest));
        let a = TracedAtomicU64::new("t", 3);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 3);
        assert_eq!(a.load(Ordering::Relaxed), 4);
        uninstall();
    }
}
