//! Per-peer event loops: each registered peer's node state lives in its
//! own async task, not inside the shared `System`.
//!
//! Between waves the loop task *owns* its `Box<PeerNode>` — the
//! gateway's `System` holds no peers at all — so reads and telemetry
//! against one peer never contend with another. When the wave pump
//! forms a wave it checks every peer out over the wire
//! ([`Message::Checkout`] / [`Message::CheckoutAck`]) and receives the
//! state itself over the deployment's typed state channel (the
//! in-process stand-in for state staying on the node while the
//! coordinator drives it), ticks the ledger service, and checks the
//! updated state back in ([`Message::Checkin`]) together with the
//! wave's oneway notifications ([`Message::FanOut`],
//! [`Message::AckSealed`], [`Message::ConsensusSealed`]).

use std::sync::{Arc, Mutex};

use medledger_core::PeerNode;

use crate::sync;
use crate::wire::{Envelope, Message, WireConn};

/// Counters a peer's event loop maintains from the notifications it
/// receives; a cheap stand-in for the read traffic a deployed node
/// would serve from its owned state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryCounts {
    /// Times the pump checked this peer's state out for a wave.
    pub checkouts: u64,
    /// Times the state came back after a wave.
    pub checkins: u64,
    /// Fan-out notifications: waves whose committed update changed a
    /// shared table this peer materializes (Fig. 5 step 5).
    pub fan_outs: u64,
    /// Waves whose aggregated threshold-ack transaction sealed.
    pub acks_sealed: u64,
    /// Waves whose consensus round sealed a block.
    pub consensus_sealed: u64,
}

/// Shared handle onto one peer loop's [`TelemetryCounts`].
#[derive(Clone, Default)]
pub struct PeerTelemetry {
    inner: Arc<Mutex<TelemetryCounts>>,
}

impl PeerTelemetry {
    /// The counts as of now.
    pub fn snapshot(&self) -> TelemetryCounts {
        *self.inner.lock().expect("telemetry lock")
    }

    fn update(&self, f: impl FnOnce(&mut TelemetryCounts)) {
        f(&mut self.inner.lock().expect("telemetry lock"));
    }
}

/// Drives one peer's event loop until the pump sends
/// [`Message::Close`] or hangs up.
pub(crate) async fn run(
    mut conn: WireConn,
    node: Box<PeerNode>,
    mut from_pump: sync::Receiver<Box<PeerNode>>,
    to_pump: sync::Sender<Box<PeerNode>>,
    telemetry: PeerTelemetry,
) {
    let mut node = Some(node);
    while let Ok(Some(env)) = conn.recv().await {
        match env.body {
            Message::Checkout { peer, .. } => {
                if let Some(n) = node.take() {
                    if to_pump.try_send(n).is_err() {
                        break;
                    }
                    telemetry.update(|t| t.checkouts += 1);
                    if conn
                        .send(&Envelope {
                            corr: env.corr,
                            body: Message::CheckoutAck { peer },
                        })
                        .await
                        .is_err()
                    {
                        break;
                    }
                }
            }
            Message::Checkin { .. } => match from_pump.recv().await {
                Some(n) => {
                    node = Some(n);
                    telemetry.update(|t| t.checkins += 1);
                }
                None => break,
            },
            Message::FanOut { .. } => telemetry.update(|t| t.fan_outs += 1),
            Message::AckSealed { .. } => telemetry.update(|t| t.acks_sealed += 1),
            Message::ConsensusSealed { .. } => telemetry.update(|t| t.consensus_sealed += 1),
            Message::Close => {
                let _ = conn
                    .send(&Envelope {
                        corr: env.corr,
                        body: Message::Closed,
                    })
                    .await;
                break;
            }
            _ => {}
        }
    }
}
