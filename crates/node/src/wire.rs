//! Length-prefixed wire protocol over in-process byte pipes.
//!
//! Every conversation between a client session, the gateway pump, and a
//! per-peer event loop is serialized through this module: an
//! [`Envelope`] (correlation id + [`Message`]) is encoded with the
//! `medledger-storage` binary codec, prefixed with a big-endian `u32`
//! length, and pushed through a bounded byte [`pipe`] — the in-process
//! stand-in for a socket. Nothing crosses a conn except bytes, so the
//! protocol is exactly what a TCP transport would carry; swapping the
//! pipe for a real stream is a transport change, not a protocol change.
//!
//! Frames open with [`WIRE_VERSION`]; a peer speaking a different
//! version is rejected with [`WireError::Version`] instead of being
//! mis-decoded. Frame payloads decode strictly ([`Decode::decode`]
//! rejects trailing bytes), which the length prefix makes safe.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use medledger_ledger::Receipt;
use medledger_relational::WriteOp;
use medledger_storage::codec::{put_seq, put_varint, take_seq, Reader};
use medledger_storage::{Decode, Encode, StorageError};

/// Protocol version stamped on every frame.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as stream corruption rather than honored with a giant
/// allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Default byte capacity of one pipe direction.
pub const DEFAULT_PIPE_CAPACITY: usize = 64 << 10;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Transport- and protocol-level failures.
#[derive(Debug)]
pub enum WireError {
    /// The other end of the conn hung up mid-frame (a clean close at a
    /// frame boundary is reported as `Ok(None)` from `recv`, not this).
    Closed,
    /// The frame declared a version this build does not speak.
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The frame length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        len: usize,
    },
    /// The payload failed to decode as an [`Envelope`].
    Codec(StorageError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed mid-frame"),
            WireError::Version { got } => {
                write!(f, "wire version mismatch: got {got}, want {WIRE_VERSION}")
            }
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Codec(e) => write!(f, "frame payload failed to decode: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for WireError {
    fn from(e: StorageError) -> Self {
        WireError::Codec(e)
    }
}

// ---------------------------------------------------------------------
// Byte pipes
// ---------------------------------------------------------------------

/// Shared tally of bytes pushed through pipes created with it; the
/// bench uses one to report wire bytes per commit.
///
/// Meters can be [chained](ByteMeter::chained): a child meter keeps its
/// own tally *and* forwards every byte to its parent, which is how the
/// gateway gets per-peer wire-byte telemetry while the deployment-wide
/// total keeps working.
#[derive(Clone, Default)]
pub struct ByteMeter {
    count: Arc<std::sync::atomic::AtomicU64>,
    parent: Option<Arc<ByteMeter>>,
}

impl ByteMeter {
    /// A fresh zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child meter: bytes added to it count on both the child and
    /// this meter.
    pub fn chained(&self) -> ByteMeter {
        ByteMeter {
            count: Arc::default(),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Total bytes written through metered pipes so far (this meter and
    /// its children).
    pub fn bytes(&self) -> u64 {
        // ordering: byte-meter
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn add(&self, n: usize) {
        self.count
            // ordering: byte-meter
            .fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.add(n);
        }
    }
}

struct PipeState {
    buf: VecDeque<u8>,
    capacity: usize,
    writer_alive: bool,
    reader_alive: bool,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
    meter: Option<ByteMeter>,
}

impl PipeState {
    fn wake_reader(&mut self) -> Option<Waker> {
        self.read_waker.take()
    }

    fn wake_writer(&mut self) -> Option<Waker> {
        self.write_waker.take()
    }
}

/// Write half of a unidirectional in-process byte stream.
pub struct PipeWriter {
    state: Arc<Mutex<PipeState>>,
}

/// Read half of a unidirectional in-process byte stream.
pub struct PipeReader {
    state: Arc<Mutex<PipeState>>,
}

/// Creates a bounded unidirectional byte stream. Writes beyond
/// `capacity` un-read bytes wait until the reader drains — the
/// transport-level backpressure a real socket's send buffer provides.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    pipe_with(capacity, None)
}

fn pipe_with(capacity: usize, meter: Option<ByteMeter>) -> (PipeWriter, PipeReader) {
    let state = Arc::new(Mutex::new(PipeState {
        buf: VecDeque::new(),
        capacity: capacity.max(1),
        writer_alive: true,
        reader_alive: true,
        read_waker: None,
        write_waker: None,
        meter,
    }));
    (
        PipeWriter {
            state: Arc::clone(&state),
        },
        PipeReader { state },
    )
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        crate::sched::point("pipe.write.drop");
        let mut s = self.state.lock().expect("pipe lock");
        s.writer_alive = false;
        let w = s.wake_reader();
        drop(s);
        if let Some(w) = w {
            w.wake();
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        crate::sched::point("pipe.read.drop");
        let mut s = self.state.lock().expect("pipe lock");
        s.reader_alive = false;
        let w = s.wake_writer();
        drop(s);
        if let Some(w) = w {
            w.wake();
        }
    }
}

impl PipeWriter {
    /// Writes the whole buffer, waiting for capacity as needed. Fails
    /// with [`WireError::Closed`] when the reader is gone.
    pub fn write_all<'a>(&'a mut self, bytes: &'a [u8]) -> WriteAll<'a> {
        WriteAll {
            state: &self.state,
            bytes,
            off: 0,
        }
    }
}

/// Future returned by [`PipeWriter::write_all`].
pub struct WriteAll<'a> {
    state: &'a Mutex<PipeState>,
    bytes: &'a [u8],
    off: usize,
}

impl Future for WriteAll<'_> {
    type Output = Result<(), WireError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        crate::sched::point("pipe.write.poll");
        // All fields are references or plain integers, so `WriteAll` is
        // `Unpin` and the safe projection suffices.
        let this = self.get_mut();
        // The reader's waker (if any) fires only after the pipe lock is
        // released: waking under the lock would make the woken side
        // contend immediately, and a model-thread switch while holding
        // a lock is forbidden (see `crate::sched`).
        let (out, wake) = {
            let mut s = this.state.lock().expect("pipe lock");
            let mut wake = None;
            let out = loop {
                if !s.reader_alive {
                    break Poll::Ready(Err(WireError::Closed));
                }
                let room = s.capacity.saturating_sub(s.buf.len());
                let want = this.bytes.len() - this.off;
                let n = room.min(want);
                if n > 0 {
                    let off = this.off;
                    s.buf.extend(&this.bytes[off..off + n]);
                    this.off += n;
                    if let Some(m) = &s.meter {
                        m.add(n);
                    }
                    if let Some(w) = s.wake_reader() {
                        wake = Some(w);
                    }
                }
                if this.off == this.bytes.len() {
                    break Poll::Ready(Ok(()));
                }
                if n == 0 {
                    s.write_waker = Some(cx.waker().clone());
                    break Poll::Pending;
                }
            };
            (out, wake)
        };
        if let Some(w) = wake {
            w.wake();
        }
        out
    }
}

impl PipeReader {
    /// Fills the whole buffer. Resolves `Ok(true)` on success,
    /// `Ok(false)` on a clean close before the first byte, and
    /// [`WireError::Closed`] on a close mid-buffer.
    pub fn read_exact<'a>(&'a mut self, into: &'a mut [u8]) -> ReadExact<'a> {
        ReadExact {
            state: &self.state,
            into,
            off: 0,
        }
    }
}

/// Future returned by [`PipeReader::read_exact`].
pub struct ReadExact<'a> {
    state: &'a Mutex<PipeState>,
    into: &'a mut [u8],
    off: usize,
}

impl Future for ReadExact<'_> {
    type Output = Result<bool, WireError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        crate::sched::point("pipe.read.poll");
        // `ReadExact` holds no self-references (references + an
        // offset), so it is `Unpin` and the safe projection suffices.
        let this = self.get_mut();
        // As in `WriteAll::poll`, the writer's waker fires only after
        // the pipe lock is released.
        let (out, wake) = {
            let mut s = this.state.lock().expect("pipe lock");
            let mut wake = None;
            let out = loop {
                let want = this.into.len() - this.off;
                let avail = s.buf.len().min(want);
                for (dst, src) in this.into[this.off..this.off + avail]
                    .iter_mut()
                    .zip(s.buf.drain(..avail))
                {
                    *dst = src;
                }
                if avail > 0 {
                    this.off += avail;
                    if let Some(w) = s.wake_writer() {
                        wake = Some(w);
                    }
                }
                if this.off == this.into.len() {
                    break Poll::Ready(Ok(true));
                }
                if !s.writer_alive {
                    break Poll::Ready(if this.off == 0 {
                        Ok(false)
                    } else {
                        Err(WireError::Closed)
                    });
                }
                if avail == 0 {
                    s.read_waker = Some(cx.waker().clone());
                    break Poll::Pending;
                }
            };
            (out, wake)
        };
        if let Some(w) = wake {
            w.wake();
        }
        out
    }
}

// ---------------------------------------------------------------------
// Framed connection
// ---------------------------------------------------------------------

/// One end of a duplex framed connection: an outbound pipe writer plus
/// an inbound pipe reader, speaking length-prefixed [`Envelope`]s.
pub struct WireConn {
    writer: PipeWriter,
    reader: PipeReader,
}

/// Creates a connected pair of framed duplex conns, each direction
/// bounded at `capacity` bytes.
pub fn duplex(capacity: usize) -> (WireConn, WireConn) {
    duplex_with(capacity, None)
}

/// [`duplex`], with every byte either side writes tallied on `meter`.
pub fn duplex_metered(capacity: usize, meter: &ByteMeter) -> (WireConn, WireConn) {
    duplex_with(capacity, Some(meter.clone()))
}

fn duplex_with(capacity: usize, meter: Option<ByteMeter>) -> (WireConn, WireConn) {
    let (aw, br) = pipe_with(capacity, meter.clone());
    let (bw, ar) = pipe_with(capacity, meter);
    (
        WireConn {
            writer: aw,
            reader: ar,
        },
        WireConn {
            writer: bw,
            reader: br,
        },
    )
}

impl WireConn {
    /// Sends one envelope as a single frame.
    pub async fn send(&mut self, env: &Envelope) -> Result<(), WireError> {
        send_frame(&mut self.writer, env).await
    }

    /// Receives one envelope; `Ok(None)` when the peer closed cleanly
    /// at a frame boundary.
    pub async fn recv(&mut self) -> Result<Option<Envelope>, WireError> {
        recv_frame(&mut self.reader).await
    }

    /// Splits the conn into independently-owned halves so a writer task
    /// and a reader task can serve the same connection concurrently.
    pub fn split(self) -> (WireSender, WireReceiver) {
        (
            WireSender {
                writer: self.writer,
            },
            WireReceiver {
                reader: self.reader,
            },
        )
    }

    /// Closes the conn; the other end sees a clean EOF at the next
    /// frame boundary.
    pub fn close(self) {
        drop(self);
    }
}

/// Outbound half of a split [`WireConn`].
pub struct WireSender {
    writer: PipeWriter,
}

impl WireSender {
    /// Sends one envelope as a single frame.
    pub async fn send(&mut self, env: &Envelope) -> Result<(), WireError> {
        send_frame(&mut self.writer, env).await
    }
}

/// Inbound half of a split [`WireConn`].
pub struct WireReceiver {
    reader: PipeReader,
}

impl WireReceiver {
    /// Receives one envelope; `Ok(None)` on clean close.
    pub async fn recv(&mut self) -> Result<Option<Envelope>, WireError> {
        recv_frame(&mut self.reader).await
    }
}

async fn send_frame(writer: &mut PipeWriter, env: &Envelope) -> Result<(), WireError> {
    let payload = env.encoded();
    debug_assert!(payload.len() <= MAX_FRAME, "outbound frame oversized");
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    writer.write_all(&frame).await
}

async fn recv_frame(reader: &mut PipeReader) -> Result<Option<Envelope>, WireError> {
    let mut len_buf = [0u8; 4];
    if !reader.read_exact(&mut len_buf).await? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    if !reader.read_exact(&mut payload).await? {
        return Err(WireError::Closed);
    }
    Envelope::from_frame(&payload)
}

// ---------------------------------------------------------------------
// Envelope + messages
// ---------------------------------------------------------------------

/// One framed unit: a correlation id (echoed on replies so requesters
/// can match responses to requests) and the message body.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Correlation id; replies echo the request's.
    pub corr: u64,
    /// The payload.
    pub body: Message,
}

impl Envelope {
    /// Encodes the envelope (with its version byte) as a frame payload.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(WIRE_VERSION);
        put_varint(&mut out, self.corr);
        self.body.encode_into(&mut out);
        out
    }

    /// Strictly decodes a frame payload, checking the version byte.
    pub fn from_frame(payload: &[u8]) -> Result<Option<Envelope>, WireError> {
        let mut r = Reader::new(payload);
        let version = r.take_u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::Version { got: version });
        }
        let corr = r.take_varint()?;
        let body = Message::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(Some(Envelope { corr, body }))
    }
}

/// One staged write travelling over the wire; mirrors the engine's
/// submission builder (shared-table ops vs. lens-translated source-table
/// ops).
#[derive(Clone, Debug, PartialEq)]
pub enum WireWrite {
    /// A write against the shared table itself.
    Shared(WriteOp),
    /// A write against one of the submitting peer's source tables,
    /// translated through the lens at wave time.
    Source {
        /// The peer-local source table.
        table: String,
        /// The operation.
        op: WriteOp,
    },
}

/// Flattened success outcome returned to wire clients. Receipts travel
/// verbatim (they are the auditable artifact and the determinism
/// fixture); the rest is the client-relevant summary of the in-process
/// `CommitOutcome`.
#[derive(Clone, Debug, PartialEq)]
pub struct WireCommit {
    /// Receipts of every transaction the commit produced, in commit
    /// order (request, acks, then cascades').
    pub receipts: Vec<Receipt>,
    /// The committed contract version of the table.
    pub version: u64,
    /// Attributes the contract permission-checked.
    pub changed_attrs: Vec<String>,
    /// Number of cascaded updates the Step-6 dependency check ran.
    pub cascades: u64,
    /// End-to-end latency until all peers saw the data (virtual ms).
    pub visibility_latency_ms: u64,
    /// Latency until the table unlocked for the next update (virtual ms).
    pub sync_latency_ms: u64,
}

/// Classification of a rejected submission, mirroring the engine's
/// `CommitError` taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The contract denied the write.
    PermissionDenied,
    /// The table still awaits acks for the previous version.
    Barrier,
    /// Any other on-chain revert.
    Reverted,
    /// The staged writes produced no observable shared-view change.
    NoChange,
    /// The submission carried no staged writes.
    EmptyBatch,
    /// Another queued update already claims the table.
    Conflicted,
    /// A sharing peer could not translate the new view into its source.
    Untranslatable,
    /// Any other engine failure.
    Engine,
    /// Committed on chain, but a post-commit step failed.
    AfterCommit,
}

impl RejectKind {
    fn tag(self) -> u8 {
        match self {
            RejectKind::PermissionDenied => 0,
            RejectKind::Barrier => 1,
            RejectKind::Reverted => 2,
            RejectKind::NoChange => 3,
            RejectKind::EmptyBatch => 4,
            RejectKind::Conflicted => 5,
            RejectKind::Untranslatable => 6,
            RejectKind::Engine => 7,
            RejectKind::AfterCommit => 8,
        }
    }

    fn from_tag(t: u8) -> Result<Self, StorageError> {
        Ok(match t {
            0 => RejectKind::PermissionDenied,
            1 => RejectKind::Barrier,
            2 => RejectKind::Reverted,
            3 => RejectKind::NoChange,
            4 => RejectKind::EmptyBatch,
            5 => RejectKind::Conflicted,
            6 => RejectKind::Untranslatable,
            7 => RejectKind::Engine,
            8 => RejectKind::AfterCommit,
            t => return Err(StorageError::Codec(format!("invalid reject kind {t}"))),
        })
    }
}

/// Flattened rejection returned to wire clients.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReject {
    /// The error class.
    pub kind: RejectKind,
    /// Human-readable reason.
    pub reason: String,
    /// The table the submission targeted (empty when not applicable).
    pub table_id: String,
    /// The reverted on-chain receipt, when one exists.
    pub receipt: Option<Receipt>,
}

impl fmt::Display for WireReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.reason)
    }
}

/// The protocol. Requests flow client → gateway and pump → peer loop;
/// replies echo the request's correlation id; `FanOut` / `AckSealed` /
/// `ConsensusSealed` are oneway notifications (corr 0).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → gateway: stage `writes` against `table` as `peer`.
    Submit {
        /// Submitting peer, by registered name.
        peer: String,
        /// Target shared table.
        table: String,
        /// The staged writes, in order.
        writes: Vec<WireWrite>,
    },
    /// Client → gateway: ask after a ticket. With `park` set the reply
    /// is deferred until the ticket resolves (the event-driven wait);
    /// without it the gateway answers immediately (`Pending` or
    /// `Outcome`).
    Poll {
        /// The ticket under question.
        ticket: u64,
        /// Defer the reply until resolution instead of answering now.
        park: bool,
    },
    /// Gateway → client: the submission is admitted under `ticket`.
    Accepted {
        /// Ticket the outcome will resolve under.
        ticket: u64,
    },
    /// Gateway → client: the admission queue is full; try again after
    /// the suggested backoff.
    Overloaded {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// Gateway → client: the ticket resolved.
    Outcome {
        /// The resolved ticket.
        ticket: u64,
        /// Commit summary or typed rejection.
        result: Result<WireCommit, WireReject>,
    },
    /// Gateway → client: the ticket has not resolved yet.
    Pending {
        /// The still-open ticket.
        ticket: u64,
    },
    /// Pump → peer loop: surrender your peer state for wave `wave`
    /// (the state itself moves over the deployment's state channel; the
    /// wire carries the control handshake).
    Checkout {
        /// The peer being gathered.
        peer: String,
        /// The wave it is gathered for.
        wave: u64,
    },
    /// Peer loop → pump: state surrendered.
    CheckoutAck {
        /// The surrendered peer.
        peer: String,
    },
    /// Pump → peer loop (oneway): your peer was updated by the wave's
    /// fan-out (Fig. 5 step 5 — new view pushed to sharing peers).
    FanOut {
        /// The sealing wave.
        wave: u64,
        /// The table whose update reached this peer.
        table: String,
        /// The committed contract version.
        version: u64,
    },
    /// Pump → peer loop (oneway): the wave's ack round sealed.
    AckSealed {
        /// The sealing wave.
        wave: u64,
        /// Acks aggregated into the threshold transaction.
        acks: u64,
    },
    /// Pump → peer loop (oneway): consensus sealed the wave's block.
    ConsensusSealed {
        /// The sealed wave.
        wave: u64,
        /// Commits in the wave.
        commits: u64,
    },
    /// Pump → peer loop: your (possibly updated) peer state is coming
    /// back on the state channel.
    Checkin {
        /// The returned peer.
        peer: String,
        /// The wave that just ran.
        wave: u64,
    },
    /// Orderly shutdown request.
    Close,
    /// Orderly shutdown acknowledged; no further frames follow.
    Closed,
    /// Client → gateway: ask for a live statistics snapshot.
    StatsRequest,
    /// Gateway → client: the snapshot, as the JSON rendering of the
    /// gateway's deterministic counters plus (when a telemetry registry
    /// is installed) the full metric registry — the same `Snapshot`
    /// shape the bench `report` binary renders.
    Stats {
        /// JSON document; schema documented in `docs/OBSERVABILITY.md`.
        json: String,
    },
}

impl Message {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Message::Submit {
                peer,
                table,
                writes,
            } => {
                out.push(0);
                peer.encode_into(out);
                table.encode_into(out);
                put_varint(out, writes.len() as u64);
                for w in writes {
                    match w {
                        WireWrite::Shared(op) => {
                            out.push(0);
                            op.encode_into(out);
                        }
                        WireWrite::Source { table, op } => {
                            out.push(1);
                            table.encode_into(out);
                            op.encode_into(out);
                        }
                    }
                }
            }
            Message::Poll { ticket, park } => {
                out.push(1);
                put_varint(out, *ticket);
                park.encode_into(out);
            }
            Message::Accepted { ticket } => {
                out.push(2);
                put_varint(out, *ticket);
            }
            Message::Overloaded { retry_after_ms } => {
                out.push(3);
                put_varint(out, *retry_after_ms);
            }
            Message::Outcome { ticket, result } => {
                out.push(4);
                put_varint(out, *ticket);
                match result {
                    Ok(commit) => {
                        out.push(0);
                        put_seq(out, &commit.receipts);
                        put_varint(out, commit.version);
                        put_seq(out, &commit.changed_attrs);
                        put_varint(out, commit.cascades);
                        put_varint(out, commit.visibility_latency_ms);
                        put_varint(out, commit.sync_latency_ms);
                    }
                    Err(reject) => {
                        out.push(1);
                        out.push(reject.kind.tag());
                        reject.reason.encode_into(out);
                        reject.table_id.encode_into(out);
                        reject.receipt.encode_into(out);
                    }
                }
            }
            Message::Pending { ticket } => {
                out.push(5);
                put_varint(out, *ticket);
            }
            Message::Checkout { peer, wave } => {
                out.push(6);
                peer.encode_into(out);
                put_varint(out, *wave);
            }
            Message::CheckoutAck { peer } => {
                out.push(7);
                peer.encode_into(out);
            }
            Message::FanOut {
                wave,
                table,
                version,
            } => {
                out.push(8);
                put_varint(out, *wave);
                table.encode_into(out);
                put_varint(out, *version);
            }
            Message::AckSealed { wave, acks } => {
                out.push(9);
                put_varint(out, *wave);
                put_varint(out, *acks);
            }
            Message::ConsensusSealed { wave, commits } => {
                out.push(10);
                put_varint(out, *wave);
                put_varint(out, *commits);
            }
            Message::Checkin { peer, wave } => {
                out.push(11);
                peer.encode_into(out);
                put_varint(out, *wave);
            }
            Message::Close => out.push(12),
            Message::Closed => out.push(13),
            Message::StatsRequest => out.push(14),
            Message::Stats { json } => {
                out.push(15);
                json.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(match r.take_u8()? {
            0 => {
                let peer = String::decode_from(r)?;
                let table = String::decode_from(r)?;
                let len = r.take_len()?;
                let mut writes = Vec::with_capacity(len);
                for _ in 0..len {
                    writes.push(match r.take_u8()? {
                        0 => WireWrite::Shared(WriteOp::decode_from(r)?),
                        1 => WireWrite::Source {
                            table: String::decode_from(r)?,
                            op: WriteOp::decode_from(r)?,
                        },
                        t => {
                            return Err(StorageError::Codec(format!("invalid wire-write tag {t}")))
                        }
                    });
                }
                Message::Submit {
                    peer,
                    table,
                    writes,
                }
            }
            1 => Message::Poll {
                ticket: r.take_varint()?,
                park: bool::decode_from(r)?,
            },
            2 => Message::Accepted {
                ticket: r.take_varint()?,
            },
            3 => Message::Overloaded {
                retry_after_ms: r.take_varint()?,
            },
            4 => {
                let ticket = r.take_varint()?;
                let result = match r.take_u8()? {
                    0 => Ok(WireCommit {
                        receipts: take_seq(r)?,
                        version: r.take_varint()?,
                        changed_attrs: take_seq(r)?,
                        cascades: r.take_varint()?,
                        visibility_latency_ms: r.take_varint()?,
                        sync_latency_ms: r.take_varint()?,
                    }),
                    1 => Err(WireReject {
                        kind: RejectKind::from_tag(r.take_u8()?)?,
                        reason: String::decode_from(r)?,
                        table_id: String::decode_from(r)?,
                        receipt: Option::decode_from(r)?,
                    }),
                    t => return Err(StorageError::Codec(format!("invalid outcome tag {t}"))),
                };
                Message::Outcome { ticket, result }
            }
            5 => Message::Pending {
                ticket: r.take_varint()?,
            },
            6 => Message::Checkout {
                peer: String::decode_from(r)?,
                wave: r.take_varint()?,
            },
            7 => Message::CheckoutAck {
                peer: String::decode_from(r)?,
            },
            8 => Message::FanOut {
                wave: r.take_varint()?,
                table: String::decode_from(r)?,
                version: r.take_varint()?,
            },
            9 => Message::AckSealed {
                wave: r.take_varint()?,
                acks: r.take_varint()?,
            },
            10 => Message::ConsensusSealed {
                wave: r.take_varint()?,
                commits: r.take_varint()?,
            },
            11 => Message::Checkin {
                peer: String::decode_from(r)?,
                wave: r.take_varint()?,
            },
            12 => Message::Close,
            13 => Message::Closed,
            14 => Message::StatsRequest,
            15 => Message::Stats {
                json: String::decode_from(r)?,
            },
            t => return Err(StorageError::Codec(format!("invalid message tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Runtime;
    use medledger_ledger::TxStatus;
    use medledger_relational::{Row, Value};

    fn sample_receipt() -> Receipt {
        Receipt {
            tx_id: medledger_crypto::sha256(b"wire test"),
            status: TxStatus::Success,
            gas_used: 42,
            logs: Vec::new(),
        }
    }

    fn round_trip(env: &Envelope) {
        let bytes = env.encoded();
        let back = Envelope::from_frame(&bytes)
            .expect("decodes")
            .expect("some");
        assert_eq!(&back, env);
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Submit {
                peer: "patient".into(),
                table: "clinical_data".into(),
                writes: vec![
                    WireWrite::Shared(WriteOp::Insert {
                        row: Row(vec![Value::Int(1), Value::text("x")]),
                    }),
                    WireWrite::Source {
                        table: "D13".into(),
                        op: WriteOp::Update {
                            key: vec![Value::Int(1)],
                            assignments: vec![("dosage".into(), Value::text("20mg"))],
                        },
                    },
                ],
            },
            Message::Poll {
                ticket: 7,
                park: true,
            },
            Message::Accepted { ticket: 7 },
            Message::Overloaded { retry_after_ms: 25 },
            Message::Outcome {
                ticket: 7,
                result: Ok(WireCommit {
                    receipts: vec![sample_receipt()],
                    version: 3,
                    changed_attrs: vec!["dosage".into()],
                    cascades: 1,
                    visibility_latency_ms: 12,
                    sync_latency_ms: 9,
                }),
            },
            Message::Outcome {
                ticket: 8,
                result: Err(WireReject {
                    kind: RejectKind::Barrier,
                    reason: "awaiting acks".into(),
                    table_id: "clinical_data".into(),
                    receipt: Some(sample_receipt()),
                }),
            },
            Message::Pending { ticket: 9 },
            Message::Checkout {
                peer: "doctor".into(),
                wave: 4,
            },
            Message::CheckoutAck {
                peer: "doctor".into(),
            },
            Message::FanOut {
                wave: 4,
                table: "clinical_data".into(),
                version: 3,
            },
            Message::AckSealed { wave: 4, acks: 2 },
            Message::ConsensusSealed {
                wave: 4,
                commits: 1,
            },
            Message::Checkin {
                peer: "doctor".into(),
                wave: 4,
            },
            Message::Close,
            Message::Closed,
            Message::StatsRequest,
            Message::Stats {
                json: r#"{"counters":{"chain.waves":4}}"#.into(),
            },
        ];
        for (i, body) in messages.into_iter().enumerate() {
            round_trip(&Envelope {
                corr: i as u64,
                body,
            });
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Envelope {
            corr: 1,
            body: Message::Close,
        }
        .encoded();
        bytes[0] = WIRE_VERSION + 1;
        assert!(matches!(
            Envelope::from_frame(&bytes),
            Err(WireError::Version { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Envelope {
            corr: 1,
            body: Message::Close,
        }
        .encoded();
        bytes.push(0xFF);
        assert!(matches!(
            Envelope::from_frame(&bytes),
            Err(WireError::Codec(_))
        ));
    }

    #[test]
    fn framed_conns_exchange_envelopes() {
        let rt = Runtime::new(2);
        let (mut a, mut b) = duplex(DEFAULT_PIPE_CAPACITY);
        let server = rt.spawn(async move {
            let mut seen = Vec::new();
            while let Some(env) = b.recv().await.expect("recv") {
                let done = env.body == Message::Close;
                seen.push(env.body);
                if done {
                    break;
                }
            }
            seen
        });
        rt.block_on(async move {
            for body in [
                Message::Accepted { ticket: 1 },
                Message::Pending { ticket: 1 },
                Message::Close,
            ] {
                a.send(&Envelope { corr: 0, body }).await.expect("send");
            }
        });
        let seen = rt.block_on(server);
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], Message::Close);
    }

    #[test]
    fn small_pipes_apply_backpressure_without_deadlock() {
        // A frame much larger than the pipe: the writer must make
        // progress only as the reader drains.
        let rt = Runtime::new(2);
        let (mut a, mut b) = duplex(16);
        let big = Message::Submit {
            peer: "patient".into(),
            table: "clinical_data".into(),
            writes: (0..64)
                .map(|i| {
                    WireWrite::Shared(WriteOp::Insert {
                        row: Row(vec![Value::Int(i), Value::text("payload payload")]),
                    })
                })
                .collect(),
        };
        let expect = big.clone();
        let reader = rt.spawn(async move { b.recv().await.expect("recv").expect("frame") });
        rt.block_on(async move {
            a.send(&Envelope { corr: 9, body: big })
                .await
                .expect("send");
        });
        let got = rt.block_on(reader);
        assert_eq!(got.corr, 9);
        assert_eq!(got.body, expect);
    }

    #[test]
    fn dropped_writer_is_clean_eof_at_frame_boundary() {
        let rt = Runtime::new(1);
        let (a, mut b) = duplex(64);
        drop(a);
        let got = rt.block_on(async move { b.recv().await });
        assert!(matches!(got, Ok(None)));
    }
}
