//! The `node` binary: boots a deployment from a durable store, serves
//! the gateway front door, runs a small multi-session workload against
//! it, and drains cleanly on shutdown.
//!
//! Usage:
//!
//! ```text
//! node [--data DIR] [--threads N] [--sessions N] [--updates N]
//! ```
//!
//! On a fresh `--data` directory the Fig. 1 scenario (Patient / Doctor /
//! Researcher sharing medical records) is bootstrapped; on an existing
//! one the previous deployment is *recovered* — WALs replayed onto the
//! latest snapshot, Merkle subroots re-verified — and the gateway
//! resumes with wave numbering continuing where it left off.

use std::process::ExitCode;

use medledger_core::scenario::{self, SHARE_PD};
use medledger_core::MedLedger;
use medledger_engine::LedgerService;
use medledger_node::wire::WireWrite;
use medledger_node::{Deployment, GatewayConfig, SubmitReply};
use medledger_relational::{Value, WriteOp};
use medledger_telemetry::{Recorder, Registry};

struct Args {
    data: String,
    threads: usize,
    sessions: usize,
    updates: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: "medledger-node-data".into(),
        threads: 2,
        sessions: 4,
        updates: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| it.next().ok_or_else(|| format!("{what} expects a value"));
        match flag.as_str() {
            "--data" => args.data = take("--data")?,
            "--threads" => {
                args.threads = take("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--sessions" => {
                args.sessions = take("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--updates" => {
                args.updates = take("--updates")?
                    .parse()
                    .map_err(|e| format!("--updates: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: node [--data DIR] [--threads N] [--sessions N] [--updates N]".into(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    // Boot (or recover) the durable ledger. Sharded mirrors (4 key
    // ranges per shared table) give the telemetry heat map per-shard
    // apply attribution to report.
    let ledger = MedLedger::builder()
        .seed("node-boot")
        .shards_per_table(4)
        .durable(&args.data)
        .snapshot_every(4)
        .build()
        .map_err(|e| format!("boot failed: {e}"))?;
    let fresh = ledger.peers().is_empty();
    let ledger = if fresh {
        println!(
            "node: fresh store at `{}`, bootstrapping Fig. 1 scenario",
            args.data
        );
        scenario::populate(ledger)
            .map_err(|e| format!("bootstrap failed: {e}"))?
            .ledger
    } else {
        println!(
            "node: recovered deployment from `{}` ({} peers, {} blocks)",
            args.data,
            ledger.peers().len(),
            ledger.stats().blocks
        );
        ledger
    };
    let boot_mark = ledger.stats().blocks;

    // Serve the gateway with live telemetry: a shared registry the
    // deployment records into, drained by a periodic printer thread.
    let registry = Registry::shared();
    let recorder = Recorder::new(&registry);
    let service = LedgerService::new(ledger);
    let dep = Deployment::start(
        service,
        GatewayConfig::default()
            .threads(args.threads)
            .recorder(recorder),
    )
    .map_err(|e| format!("deployment failed: {e}"))?;
    println!(
        "node: gateway up — {} executor threads, {} peer event loops",
        args.threads,
        dep.telemetry().len()
    );

    // Periodic snapshot line (wave-phase p50/p95, chain counters, shard
    // heat) until the workload finishes. A dropped sender stops the
    // printer — no atomics, no polling protocol.
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let printer = std::thread::spawn({
        let registry = registry.clone();
        move || loop {
            match stop_rx.recv_timeout(std::time::Duration::from_millis(500)) {
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let snap = registry.snapshot();
                    if !snap.is_empty() {
                        println!("telemetry: {}", snap.render_line());
                    }
                }
                _ => return,
            }
        }
    });

    // A small concurrent workload: `sessions` clients alternate Doctor
    // dosage updates and Patient clinical notes on the shared record.
    // Values carry the boot mark so re-runs against the same store
    // write fresh data instead of no-ops.
    let mut workers = Vec::new();
    for s in 0..args.sessions {
        let mut client = dep.connect();
        let updates = args.updates;
        workers.push(dep.spawn(async move {
            let mut committed = 0u64;
            let mut retried = 0u64;
            for u in 0..updates {
                let n = s * updates + u;
                let (peer, attr, value) = if n.is_multiple_of(2) {
                    ("Doctor", "dosage", format!("{}.{n} mg", boot_mark))
                } else {
                    ("Patient", "clinical_data", format!("note {boot_mark}.{n}"))
                };
                let op = WriteOp::Update {
                    key: vec![Value::Int(188)],
                    assignments: vec![(attr.into(), Value::text(value))],
                };
                let ticket = loop {
                    match client
                        .submit(peer, SHARE_PD, vec![WireWrite::Shared(op.clone())])
                        .await
                    {
                        Ok(SubmitReply::Accepted { ticket }) => break Some(ticket),
                        Ok(SubmitReply::Overloaded { .. }) => retried += 1,
                        Ok(SubmitReply::Rejected(rej)) => {
                            eprintln!("session {s}: rejected: {rej}");
                            break None;
                        }
                        Err(e) => {
                            eprintln!("session {s}: wire error: {e}");
                            break None;
                        }
                    }
                };
                let Some(ticket) = ticket else { continue };
                match client.wait(ticket).await {
                    Ok(Ok(_)) => committed += 1,
                    Ok(Err(rej)) => eprintln!("session {s}: update rejected: {rej}"),
                    Err(e) => eprintln!("session {s}: wait failed: {e}"),
                }
            }
            let _ = client.close().await;
            (committed, retried)
        }));
    }
    let mut committed = 0u64;
    let mut retried = 0u64;
    for w in workers {
        let (c, r) = dep.block_on(w);
        committed += c;
        retried += r;
    }

    drop(stop_tx);
    let _ = printer.join();

    let stats = dep.stats();
    let wire_bytes = dep.wire_bytes();
    println!(
        "node: {} commits over {} waves ({} sessions peak, {} overload retries, {} wire bytes)",
        committed, stats.waves, stats.sessions_peak, retried, wire_bytes
    );
    // The full registry rendering — same `Snapshot` type the bench
    // `report` binary consumes.
    print!("{}", registry.snapshot().render_text());

    // Orderly drain: outstanding waves run, peers re-attach, durable
    // state flushes.
    dep.close().map_err(|e| format!("close failed: {e}"))?;
    println!("node: drained and closed cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
