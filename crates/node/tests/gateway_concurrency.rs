//! Gateway acceptance: N concurrent client sessions through the
//! async multi-node runtime are **byte-identical** (receipts, database
//! fingerprints, committed table hashes, chain shape) to the same
//! submissions through a serial `LedgerService`, for any executor
//! thread count; plus backpressure (`Overloaded` + successful retry)
//! and a shutdown drain of in-flight tickets.

#![allow(clippy::result_large_err)]

use medledger_bx::LensSpec;
use medledger_core::{ConsensusKind, MedLedger, PeerId, PropagationMode};
use medledger_engine::LedgerService;
use medledger_node::wire::{WireCommit, WireReject, WireWrite};
use medledger_node::{Deployment, GatewayConfig, SubmitReply};
use medledger_relational::{row, Column, Schema, Table, Value, ValueType, WriteOp};
use medledger_storage::Encode;
use proptest::prelude::*;

const WARD: &str = "ward";

// ---------------------------------------------------------------------
// Scenario: Doctor and Patient share `ward` (Fig. 3 writer split:
// doctor writes `dosage`, patient writes `clinical`).
// ---------------------------------------------------------------------

fn ward_table() -> Table {
    let schema = Schema::new(
        vec![
            Column::new("patient_id", ValueType::Int),
            Column::new("dosage", ValueType::Text),
            Column::new("clinical", ValueType::Text),
        ],
        &["patient_id"],
    )
    .expect("schema");
    let mut t = Table::new(schema);
    for pid in 1..=3i64 {
        t.insert(row![pid, "10 mg", "stable"]).expect("seed");
    }
    t
}

fn clinic(seed: &str) -> (LedgerService, PeerId, PeerId) {
    let mut ledger = MedLedger::builder()
        .seed(seed)
        .consensus(ConsensusKind::PrivatePbft {
            block_interval_ms: 100,
        })
        .propagation(PropagationMode::Delta)
        .peer_key_capacity(64)
        .build()
        .expect("ledger boots");
    let doctor = ledger.add_peer("Doctor").expect("doctor");
    let patient = ledger.add_peer("Patient").expect("patient");
    let lens = LensSpec::project(&["patient_id", "dosage", "clinical"], &["patient_id"]);
    ledger
        .session(doctor)
        .load_source("D-ward", ward_table())
        .expect("doctor source");
    ledger
        .session(patient)
        .load_source("P-ward", ward_table())
        .expect("patient source");
    ledger
        .session(doctor)
        .share(WARD)
        .bind("D-ward", lens.clone())
        .with(patient, "P-ward", lens)
        .writers("patient_id", &[doctor])
        .writers("dosage", &[doctor])
        .writers("clinical", &[patient])
        .create()
        .expect("share");
    (LedgerService::new(ledger), doctor, patient)
}

/// One planned submission: which peer writes which attr on which key.
#[derive(Clone, Debug)]
struct PlannedWrite {
    doctor: bool,
    key: i64,
    value: String,
}

impl PlannedWrite {
    fn attr(&self) -> &'static str {
        if self.doctor {
            "dosage"
        } else {
            "clinical"
        }
    }

    fn op(&self) -> WriteOp {
        WriteOp::Update {
            key: vec![Value::Int(self.key)],
            assignments: vec![(self.attr().into(), Value::text(self.value.clone()))],
        }
    }
}

/// `plan[i]` submits before `plan[i+1]`; `pump_after[i]` runs a wave
/// right after submission `i`. A trailing drain resolves the rest.
#[derive(Clone, Debug)]
struct Plan {
    writes: Vec<PlannedWrite>,
    pump_after: Vec<bool>,
}

/// What one run produces, all in comparable (encoded) form.
#[derive(Debug, PartialEq)]
struct RunDigest {
    /// Per submission: Ok(encoded receipts ++ version) or Err(kind+reason).
    outcomes: Vec<Result<(Vec<u8>, u64), String>>,
    waves: u64,
    blocks: u64,
    /// Per peer (account order): database fingerprint.
    fingerprints: Vec<String>,
    /// Per peer: committed hash of the shared table.
    committed: Vec<String>,
}

fn digest_state(service: &LedgerService) -> (u64, Vec<String>, Vec<String>) {
    let ledger = service.ledger();
    let blocks = ledger.stats().blocks;
    let mut fingerprints = Vec::new();
    let mut committed = Vec::new();
    for id in ledger.peers() {
        let peer = ledger.system().peer(id).expect("peer attached");
        fingerprints.push(format!("{:?}", peer.db.fingerprint()));
        committed.push(format!("{:?}", peer.committed_hash(WARD)));
    }
    (blocks, fingerprints, committed)
}

/// The baseline: same plan, straight through a serial `LedgerService`.
fn run_serial(seed: &str, plan: &Plan) -> RunDigest {
    let (mut service, doctor, patient) = clinic(seed);
    let mut tickets = Vec::new();
    for (i, w) in plan.writes.iter().enumerate() {
        let peer = if w.doctor { doctor } else { patient };
        let ticket = service
            .submit(peer, WARD)
            .write(w.op())
            .submit()
            .expect("serial submit");
        tickets.push(ticket);
        if plan.pump_after[i] {
            service.tick().expect("serial wave");
        }
    }
    service.drain().expect("serial drain");
    let outcomes = tickets
        .into_iter()
        .map(|t| {
            service
                .take(t)
                .expect("resolved")
                .map(|o| {
                    let mut bytes = Vec::new();
                    for r in &o.receipts {
                        r.encode_into(&mut bytes);
                    }
                    (bytes, o.version())
                })
                .map_err(|e| {
                    format!("{e:?}")
                        .split('{')
                        .next()
                        .unwrap_or("")
                        .trim()
                        .to_string()
                })
        })
        .collect();
    let waves = service.waves();
    let (blocks, fingerprints, committed) = digest_state(&service);
    RunDigest {
        outcomes,
        waves,
        blocks,
        fingerprints,
        committed,
    }
}

fn encode_wire_outcome(result: &Result<WireCommit, WireReject>) -> Result<(Vec<u8>, u64), String> {
    match result {
        Ok(c) => {
            let mut bytes = Vec::new();
            for r in &c.receipts {
                r.encode_into(&mut bytes);
            }
            Ok((bytes, c.version))
        }
        Err(rej) => Err(format!("{:?}", rej.kind)),
    }
}

/// The same plan through the gateway: one client session per
/// submission, arrival order pinned by the submit/Accepted turnstile,
/// waves driven manually at the same boundaries.
fn run_gateway(seed: &str, plan: &Plan, threads: usize) -> RunDigest {
    let (service, _, _) = clinic(seed);
    let dep = Deployment::start(
        service,
        GatewayConfig::default().threads(threads).manual_pump(),
    )
    .expect("deployment starts");

    let mut clients = Vec::new();
    let mut tickets = Vec::new();
    for (i, w) in plan.writes.iter().enumerate() {
        let mut client = dep.connect();
        let peer = if w.doctor { "Doctor" } else { "Patient" };
        let reply = dep
            .block_on(client.submit(peer, WARD, vec![WireWrite::Shared(w.op())]))
            .expect("gateway submit");
        let SubmitReply::Accepted { ticket } = reply else {
            panic!("submission {i} not accepted: {reply:?}");
        };
        clients.push(client);
        tickets.push(ticket);
        if plan.pump_after[i] {
            dep.pump().expect("gateway wave");
        }
    }
    // Event-driven waits: all sessions park concurrently; draining
    // pumps resolve them.
    let waiters: Vec<_> = clients
        .into_iter()
        .zip(tickets)
        .map(|(mut client, ticket)| dep.spawn(async move { client.wait(ticket).await }))
        .collect();
    while dep.pump().expect("drain wave").members > 0 {}
    let outcomes = waiters
        .into_iter()
        .map(|w| encode_wire_outcome(&dep.block_on(w).expect("wait succeeds")))
        .collect();

    let stats = dep.stats();
    let service = dep.shutdown().expect("shutdown returns service");
    assert!(!service.has_work(), "shutdown drained everything");
    let waves = service.waves();
    assert_eq!(stats.waves, waves);
    let (blocks, fingerprints, committed) = digest_state(&service);
    RunDigest {
        outcomes,
        waves,
        blocks,
        fingerprints,
        committed,
    }
}

fn fixed_plan() -> Plan {
    let writes = vec![
        PlannedWrite {
            doctor: true,
            key: 1,
            value: "20 mg".into(),
        },
        PlannedWrite {
            doctor: false,
            key: 1,
            value: "improving".into(),
        },
        PlannedWrite {
            doctor: true,
            key: 2,
            value: "5 mg".into(),
        },
        PlannedWrite {
            doctor: false,
            key: 3,
            value: "worsening".into(),
        },
        PlannedWrite {
            doctor: true,
            key: 3,
            value: "40 mg".into(),
        },
        PlannedWrite {
            doctor: false,
            key: 2,
            value: "stable".into(),
        },
    ];
    let pump_after = vec![false, false, true, false, false, false];
    Plan { writes, pump_after }
}

#[test]
fn gateway_sessions_match_serial_waves_byte_for_byte() {
    let plan = fixed_plan();
    let serial = run_serial("gw-equiv", &plan);
    for threads in [1, 4] {
        let gateway = run_gateway("gw-equiv", &plan, threads);
        assert_eq!(
            gateway, serial,
            "gateway ({threads} threads) diverged from serial"
        );
    }
}

#[test]
fn peer_loops_own_state_and_see_wave_notifications() {
    let plan = fixed_plan();
    let (service, _, _) = clinic("gw-telemetry");
    let dep = Deployment::start(service, GatewayConfig::default().manual_pump())
        .expect("deployment starts");
    let mut client = dep.connect();
    for w in &plan.writes {
        let peer = if w.doctor { "Doctor" } else { "Patient" };
        let reply = dep
            .block_on(client.submit(peer, WARD, vec![WireWrite::Shared(w.op())]))
            .expect("submit");
        assert!(matches!(reply, SubmitReply::Accepted { .. }));
    }
    let report = dep.pump().expect("wave");
    assert!(report.members > 0);
    let waves = report.wave;
    for (name, counts) in dep.telemetry() {
        assert_eq!(
            counts.checkouts, waves,
            "peer `{name}` was gathered for every wave"
        );
        assert_eq!(counts.checkins, waves, "and returned after each");
        assert_eq!(counts.consensus_sealed, waves);
        assert_eq!(counts.acks_sealed, waves);
        assert!(
            counts.fan_outs > 0,
            "peer `{name}` saw the committed update fan out"
        );
    }
    dep.shutdown().expect("shutdown");
}

#[test]
fn admission_queue_overloads_then_recovers() {
    let (service, _, _) = clinic("gw-backpressure");
    let dep = Deployment::start(
        service,
        GatewayConfig::default()
            .queue_depth(2)
            .retry_after_ms(7)
            .manual_pump(),
    )
    .expect("deployment starts");
    let mut client = dep.connect();

    let submit = |client: &mut medledger_node::GatewayClient, key: i64, value: &str| {
        let op = WriteOp::Update {
            key: vec![Value::Int(key)],
            assignments: vec![("dosage".into(), Value::text(value))],
        };
        dep.block_on(client.submit("Doctor", WARD, vec![WireWrite::Shared(op)]))
            .expect("submit")
    };

    let mut tickets = Vec::new();
    for key in [1i64, 2] {
        match submit(&mut client, key, "20 mg") {
            SubmitReply::Accepted { ticket } => tickets.push(ticket),
            other => panic!("expected admission, got {other:?}"),
        }
    }
    // Queue full: typed rejection with the configured retry hint.
    match submit(&mut client, 3, "30 mg") {
        SubmitReply::Overloaded { retry_after_ms } => assert_eq!(retry_after_ms, 7),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // A wave drains the queue; the retry is admitted.
    dep.pump().expect("wave");
    match submit(&mut client, 3, "30 mg") {
        SubmitReply::Accepted { ticket } => tickets.push(ticket),
        other => panic!("retry should be admitted, got {other:?}"),
    }
    dep.pump().expect("wave");
    for ticket in tickets {
        let outcome = dep.block_on(client.wait(ticket)).expect("wait");
        assert!(outcome.is_ok(), "commit failed: {outcome:?}");
    }
    let stats = dep.stats();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.submissions, 3);
    assert_eq!(stats.queue_high_water, 2);
    dep.shutdown().expect("shutdown");
}

#[test]
fn shutdown_drains_in_flight_tickets() {
    let (service, _, _) = clinic("gw-shutdown");
    let dep = Deployment::start(service, GatewayConfig::default().manual_pump())
        .expect("deployment starts");

    // Two sessions submit and park on their tickets; nothing has been
    // pumped when shutdown begins.
    let mut waiters = Vec::new();
    for (peer, attr, value) in [
        ("Doctor", "dosage", "20 mg"),
        ("Patient", "clinical", "improving"),
    ] {
        let mut client = dep.connect();
        let op = WriteOp::Update {
            key: vec![Value::Int(1)],
            assignments: vec![(attr.into(), Value::text(value))],
        };
        let reply = dep
            .block_on(client.submit(peer, WARD, vec![WireWrite::Shared(op)]))
            .expect("submit");
        let SubmitReply::Accepted { ticket } = reply else {
            panic!("not accepted: {reply:?}");
        };
        waiters.push(dep.spawn(async move { client.wait(ticket).await }));
    }

    let service = dep.shutdown().expect("shutdown drains");
    assert!(!service.has_work());
    assert_eq!(service.waves(), 1, "the drain ran the queued wave");
    for mut w in waiters {
        let outcome = w
            .try_join()
            .expect("waiter finished before the executor stopped")
            .expect("wire ok");
        assert!(outcome.is_ok(), "in-flight ticket failed: {outcome:?}");
    }
}

// ---------------------------------------------------------------------
// Property: arbitrary plans, serial vs gateway at 1 and 4 threads.
// ---------------------------------------------------------------------

fn arb_write() -> impl Strategy<Value = PlannedWrite> {
    const VALUES: [&str; 4] = ["a", "bb", "ccc", "dddd"];
    (any::<bool>(), 1..4i64, 0..VALUES.len()).prop_map(|(doctor, key, v)| PlannedWrite {
        doctor,
        key,
        value: VALUES[v].to_string(),
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    proptest::collection::vec((arb_write(), any::<bool>()), 1..8).prop_map(|steps| {
        let (writes, pump_after): (Vec<_>, Vec<_>) = steps.into_iter().unzip();
        Plan { writes, pump_after }
    })
}

proptest! {
    // Few cases: each runs three whole deployments (serial + two
    // threaded gateways) through multiple waves.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn gateway_is_deterministic_for_any_thread_count(plan in arb_plan()) {
        let serial = run_serial("gw-prop", &plan);
        for threads in [1usize, 4] {
            let gateway = run_gateway("gw-prop", &plan, threads);
            prop_assert!(
                gateway == serial,
                "gateway ({} threads) diverged from serial: {:?} vs {:?}",
                threads,
                gateway,
                serial
            );
        }
    }
}
